#!/usr/bin/env python3
"""Fail on broken intra-repo markdown and HTML links.

Scans every ``*.md`` file in the repository for inline links and
images (``[text](target)`` / ``![alt](target)``) and every ``*.html``
file for ``href``/``src`` attributes, skips external targets
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``),
and verifies that every remaining target resolves to an existing file
or directory relative to the source file (or to the scan root for
absolute ``/``-prefixed targets).  Anchors on file targets
(``foo.md#section``) are checked for file existence only.

Usage::

    python tools/check_links.py [root]

Exits 1 listing every broken link, 0 when the docs are sound.  Run by
the CI docs job so documentation cannot rot silently, and by the
campaign smoke job against rendered ``repro-campaign`` HTML reports.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: capture the (non-empty) target.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: HTML link/asset attribute: capture the quoted target.
HTML_RE = re.compile(r"""(?:href|src)\s*=\s*["']([^"']+)["']""")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
#: Reference dumps quoting external repos/papers verbatim: links in
#: quoted material point into *those* trees, not this one.
SKIP_FILES = {"SNIPPETS.md", "PAPERS.md"}


def iter_sources(root: Path):
    for pattern in ("*.md", "*.html"):
        for path in sorted(root.rglob(pattern)):
            if path.name in SKIP_FILES and path.parent == root:
                continue
            if not SKIP_DIRS.intersection(part for part in path.parts):
                yield path


#: Back-compat alias (pre-HTML name).
iter_markdown = iter_sources


def check_file(root: Path, md: Path) -> list:
    broken = []
    pattern = HTML_RE if md.suffix == ".html" else LINK_RE
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        for match in pattern.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md.parent / path_part
            if not resolved.exists():
                broken.append((md.relative_to(root), lineno, target))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    broken = []
    checked = 0
    for md in iter_sources(root):
        checked += 1
        broken.extend(check_file(root, md))
    if broken:
        print(f"{len(broken)} broken intra-repo link(s):")
        for path, lineno, target in broken:
            print(f"  {path}:{lineno}: {target}")
        return 1
    print(f"ok: {checked} markdown/html files, no broken intra-repo links")
    return 0


if __name__ == "__main__":
    sys.exit(main())

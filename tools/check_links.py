#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every ``*.md`` file in the repository for inline links and
images (``[text](target)`` / ``![alt](target)``), skips external
targets (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#...``), and verifies that every remaining target resolves to an
existing file or directory relative to the markdown file (or to the
repo root for absolute ``/``-prefixed targets).  Anchors on file
targets (``foo.md#section``) are checked for file existence only.

Usage::

    python tools/check_links.py [repo_root]

Exits 1 listing every broken link, 0 when the docs are sound.  Run by
the CI docs job so documentation cannot rot silently.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: capture the (non-empty) target.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}
#: Reference dumps quoting external repos/papers verbatim: links in
#: quoted material point into *those* trees, not this one.
SKIP_FILES = {"SNIPPETS.md", "PAPERS.md"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if path.name in SKIP_FILES and path.parent == root:
            continue
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check_file(root: Path, md: Path) -> list:
    broken = []
    for lineno, line in enumerate(md.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            if path_part.startswith("/"):
                resolved = root / path_part.lstrip("/")
            else:
                resolved = md.parent / path_part
            if not resolved.exists():
                broken.append((md.relative_to(root), lineno, target))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    broken = []
    checked = 0
    for md in iter_markdown(root):
        checked += 1
        broken.extend(check_file(root, md))
    if broken:
        print(f"{len(broken)} broken intra-repo link(s):")
        for path, lineno, target in broken:
            print(f"  {path}:{lineno}: {target}")
        return 1
    print(f"ok: {checked} markdown files, no broken intra-repo links")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Per-stage QA scoring for sweeps and campaigns.

A :class:`QaCheck` is a declarative assertion over one result column
("aggregate column C across the stage's rows with ``agg``; the value
must sit inside ``[min, max]``").  Specs attach baseline checks via
``ExperimentSpec.qa_checks``; campaign stages may add or tighten
checks per request.  Evaluation never raises on missing, non-numeric,
or non-finite data — a check that cannot be evaluated *fails* with a
reason, because silently green QA on absent columns is how reports
rot.  NaN gets the same treatment explicitly: ``NaN >= lo`` is False
and ``NaN <= hi`` is False, so under the plain bound arithmetic a NaN
aggregate *happened* to fail ``lo``-bounded checks while the
order-dependence of ``min``/``max`` over NaN decided others by
coin-flip — the verdict came from IEEE comparison accidents, not from
a decision.  Non-finite values now short-circuit to an explicit FAIL
with the offending value in the reason.

The verdict model is deliberately small: each check passes or fails,
a stage's verdict is ``pass``/``fail`` (or ``none`` when it has no
checks), and the campaign verdict is the worst stage verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigError

#: Supported row aggregations.
_AGGS = ("min", "max", "mean", "sum", "first", "last")


@dataclass(frozen=True)
class QaCheck:
    """One column assertion: ``lo <= agg(column over rows) <= hi``."""

    column: str
    agg: str = "max"
    lo: Optional[float] = None
    hi: Optional[float] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.agg not in _AGGS:
            raise ConfigError(
                f"QA agg must be one of {_AGGS}, got {self.agg!r}"
            )
        if self.lo is None and self.hi is None:
            raise ConfigError(
                f"QA check on {self.column!r} needs a lo and/or hi bound"
            )

    def describe(self) -> str:
        if self.label:
            return self.label
        bounds = []
        if self.lo is not None:
            bounds.append(f">= {self.lo:g}")
        if self.hi is not None:
            bounds.append(f"<= {self.hi:g}")
        return f"{self.agg}({self.column}) {' and '.join(bounds)}"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"column": self.column, "agg": self.agg}
        if self.lo is not None:
            out["lo"] = self.lo
        if self.hi is not None:
            out["hi"] = self.hi
        if self.label:
            out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QaCheck":
        return cls(
            column=data["column"],
            agg=data.get("agg", "max"),
            lo=data.get("lo"),
            hi=data.get("hi"),
            label=data.get("label", ""),
        )


def _aggregate(values: List[float], agg: str) -> float:
    if agg == "min":
        return min(values)
    if agg == "max":
        return max(values)
    if agg == "mean":
        return sum(values) / len(values)
    if agg == "sum":
        return sum(values)
    if agg == "first":
        return values[0]
    return values[-1]  # "last"


@dataclass
class QaOutcome:
    """One evaluated check."""

    check: QaCheck
    passed: bool
    observed: Optional[float]
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check.to_dict(),
            "describe": self.check.describe(),
            "passed": self.passed,
            "observed": self.observed,
            "reason": self.reason,
        }


@dataclass
class QaReport:
    """All checks for one stage, plus the stage verdict."""

    stage: str
    outcomes: List[QaOutcome]

    @property
    def verdict(self) -> str:
        if not self.outcomes:
            return "none"
        return "pass" if all(o.passed for o in self.outcomes) else "fail"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "verdict": self.verdict,
            "checks": [o.to_dict() for o in self.outcomes],
        }


def evaluate(
    stage: str,
    checks: Sequence[QaCheck],
    rows: Sequence[Mapping[str, Any]],
) -> QaReport:
    """Score one stage's merged rows against its checks."""
    outcomes: List[QaOutcome] = []
    for check in checks:
        values: List[float] = []
        bad_reason = ""
        for row in rows:
            value = row.get(check.column)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                bad_reason = (
                    f"non-numeric value {value!r} in column {check.column!r}"
                )
                break
            if not math.isfinite(value):
                # Caught per value, not post-aggregation: Python's
                # min/max over NaN are order-dependent (the comparison
                # is False both ways, so whichever operand the loop
                # keeps wins), which let NaN rows slip through bound
                # checks by IEEE-comparison accident.
                bad_reason = (
                    f"non-finite value {value!r} in column {check.column!r}"
                )
                break
            values.append(float(value))
        if bad_reason:
            outcomes.append(QaOutcome(check, False, None, bad_reason))
            continue
        if not values:
            outcomes.append(
                QaOutcome(
                    check,
                    False,
                    None,
                    f"column {check.column!r} absent from every row",
                )
            )
            continue
        observed = _aggregate(values, check.agg)
        if not math.isfinite(observed):
            # Belt and braces: finite inputs can still overflow to
            # inf under sum/mean.
            outcomes.append(
                QaOutcome(
                    check,
                    False,
                    observed,
                    f"aggregate {check.agg}({check.column!r}) is "
                    f"non-finite ({observed!r})",
                )
            )
            continue
        ok = (check.lo is None or observed >= check.lo) and (
            check.hi is None or observed <= check.hi
        )
        reason = "" if ok else f"observed {observed:g} outside bounds"
        outcomes.append(QaOutcome(check, ok, observed, reason))
    return QaReport(stage=stage, outcomes=outcomes)


def worst_verdict(reports: Sequence[QaReport]) -> str:
    """Campaign-level verdict: fail > pass > none."""
    verdicts = {report.verdict for report in reports}
    if "fail" in verdicts:
        return "fail"
    if "pass" in verdicts:
        return "pass"
    return "none"

"""The ablation studies as registered experiment specs.

Each spec reproduces one of the repo's ablation benchmarks (see
``benchmarks/test_ablation_*.py``); the benchmarks are thin wrappers
that run these specs and assert the paper's qualitative claims.  All
are registered, so the CLI can run any of them with ``--jobs``/
``--scale``/``--json-out``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.common.config import ClusterConfig, SabreMode
from repro.experiments.registry import register
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import ExperimentSpec, Variant
from repro.harness.report import scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench


def run_ablation(name: str, scale: float = 1.0, jobs: int = 1) -> List[Dict]:
    """Run one registered ablation and return its rows."""
    from repro.experiments import registry

    return SweepRunner(registry.get(name), scale=scale, jobs=jobs).run().rows


def _cluster_with_sabre(**fields: Any) -> ClusterConfig:
    """A default cluster with some SABRe-unit fields replaced — the
    shared rebuild dance behind the hardware-knob derive hooks."""
    cfg = ClusterConfig()
    sabre = dataclasses.replace(cfg.node.sabre, **fields)
    return dataclasses.replace(
        cfg, node=dataclasses.replace(cfg.node, sabre=sabre)
    )


# ----------------------------------------------------------------------
# Table 1 cells on one contended workload (source locking vs OCC vs
# destination hardware)
# ----------------------------------------------------------------------


def _source_locking_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism=ctx.params["mechanism"],
            object_size=512,
            n_objects=64,
            readers=4,
            writers=2,
            writer_think_ns=800.0,
            duration_ns=scaled_duration(100_000.0, ctx.scale),
            warmup_ns=12_000.0,
            seed=ctx.params["seed"],
        )
    )
    return {
        "mean_latency_ns": result.mean_op_latency_ns,
        "goodput_gbps": result.goodput_gbps,
        "retries": result.retries
        + result.sabre_aborts
        + result.software_conflicts,
        "torn_reads": result.undetected_violations,
    }


register(
    ExperimentSpec(
        name="ablation_source_locking",
        description="Table 1 cells on one workload: source locking (DrTM) "
        "vs source OCC (FaRM) vs destination hardware (SABRes)",
        axes={"mechanism": ("sabre", "percl_versions", "drtm_lock")},
        defaults={"seed": 13},
        headers=(
            "mechanism",
            "mean_latency_ns",
            "goodput_gbps",
            "retries",
            "torn_reads",
        ),
        point_fn=_source_locking_point,
        base_seed=13,
    )
)


# ----------------------------------------------------------------------
# Uniform vs Zipfian key popularity
# ----------------------------------------------------------------------


def _skewed_access_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism=ctx.params["mechanism"],
            object_size=1024,
            n_objects=100,
            readers=16,
            writers=8,
            writer_think_ns=1500.0,
            zipf_theta=ctx.params["zipf_theta"],
            duration_ns=scaled_duration(100_000.0, ctx.scale),
            warmup_ns=12_000.0,
            seed=ctx.params["seed"],
        )
    )
    return {
        "goodput_gbps": result.goodput_gbps,
        "conflicts": result.sabre_aborts + result.software_conflicts,
        "ops": result.ops_completed,
        "torn_reads": result.undetected_violations,
    }


register(
    ExperimentSpec(
        name="ablation_skewed_access",
        description="uniform vs Zipfian (YCSB theta=0.99) key popularity "
        "under 8 CREW writers",
        axes={
            "zipf_theta": (0.0, 0.99),
            "mechanism": ("sabre", "percl_versions"),
        },
        defaults={"seed": 41},
        headers=(
            "zipf_theta",
            "mechanism",
            "goodput_gbps",
            "conflicts",
            "ops",
            "torn_reads",
        ),
        point_fn=_skewed_access_point,
        base_seed=41,
    )
)


# ----------------------------------------------------------------------
# Software atomicity mechanism cost ladder
# ----------------------------------------------------------------------


def _software_mechanisms_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism=ctx.params["mechanism"],
            object_size=2048,
            n_objects=256,
            readers=2,
            duration_ns=scaled_duration(80_000.0, ctx.scale),
            warmup_ns=10_000.0,
        )
    )
    return {
        "mean_latency_ns": result.mean_op_latency_ns,
        "goodput_gbps": result.goodput_gbps,
    }


register(
    ExperimentSpec(
        name="ablation_software_mechanisms",
        description="atomicity mechanism cost ladder: SABRe vs perCL "
        "versions vs Pilaf checksums (2 KB objects)",
        axes={"mechanism": ("sabre", "percl_versions", "checksum")},
        headers=("mechanism", "mean_latency_ns", "goodput_gbps"),
        point_fn=_software_mechanisms_point,
    )
)


# ----------------------------------------------------------------------
# Destination-side OCC vs locking
# ----------------------------------------------------------------------


def _locking_vs_occ_derive(params: Dict[str, Any]) -> Dict[str, Any]:
    params["cluster"] = ClusterConfig().with_sabre_mode(SabreMode(params["mode"]))
    return params


def _locking_vs_occ_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=1024,
            n_objects=64,
            readers=8,
            writers=2,
            writer_think_ns=1000.0,
            duration_ns=scaled_duration(100_000.0, ctx.scale),
            warmup_ns=12_000.0,
            cluster=ctx.params["cluster"],
        )
    )
    return {
        "goodput_gbps": result.goodput_gbps,
        "mean_latency_ns": result.mean_op_latency_ns,
        "aborts": result.sabre_aborts,
        "lock_waits": result.destination_counters.get("lock_waits", 0),
        "torn_reads": result.undetected_violations,
    }


register(
    ExperimentSpec(
        name="ablation_locking_vs_occ",
        description="destination-side OCC (speculative SABRes) vs "
        "destination-side locking under contention",
        axes={"mode": (SabreMode.SPECULATIVE.value, SabreMode.LOCKING.value)},
        derive=_locking_vs_occ_derive,
        headers=(
            "mode",
            "goodput_gbps",
            "mean_latency_ns",
            "aborts",
            "lock_waits",
            "torn_reads",
        ),
        point_fn=_locking_vs_occ_point,
    )
)


# ----------------------------------------------------------------------
# Hardware retry vs software-exposed aborts
# ----------------------------------------------------------------------


def _retry_policy_derive(params: Dict[str, Any]) -> Dict[str, Any]:
    params["cluster"] = _cluster_with_sabre(
        hardware_retry=params["policy"] == "hardware_retry"
    )
    return params


def _retry_policy_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=512,
            n_objects=24,
            readers=8,
            writers=6,
            duration_ns=scaled_duration(100_000.0, ctx.scale),
            warmup_ns=12_000.0,
            cluster=ctx.params["cluster"],
        )
    )
    return {
        "goodput_gbps": result.goodput_gbps,
        "cq_failures": result.sabre_aborts,
        "hw_retries": result.destination_counters.get("hardware_retries", 0),
        "torn_reads": result.undetected_violations,
    }


register(
    ExperimentSpec(
        name="ablation_retry_policy",
        description="abort exposure policy under contention: software-"
        "exposed CQ failures vs transparent hardware retry",
        axes={"policy": ("software_abort", "hardware_retry")},
        derive=_retry_policy_derive,
        headers=(
            "policy",
            "goodput_gbps",
            "cq_failures",
            "hw_retries",
            "torn_reads",
        ),
        point_fn=_retry_policy_point,
    )
)


# ----------------------------------------------------------------------
# Single-R2P2 pinning cost (built on the fig7a point function)
# ----------------------------------------------------------------------


def _r2p2_distribution_finalize(row: Dict) -> Dict:
    return {
        "object_size": row["object_size"],
        "pinned_sabre_ns": row["sabre_ns"],
        "striped_lower_bound_ns": row["remote_read_ns"],
        "pinning_cost": row["sabre_ns"] / row["remote_read_ns"] - 1.0,
    }


def _register_r2p2_distribution() -> None:
    # Reuses fig7a's point function and variants on a 3-size grid.
    from repro.harness.fig7 import FIG7A_SPEC

    register(
        ExperimentSpec(
            name="ablation_r2p2_distribution",
            description="single-R2P2 pinning cost vs the per-block-striped "
            "remote-read lower bound",
            axes={"object_size": (512, 2048, 8192)},
            # Only the two variants the finalize hook reads — running
            # fig7a's no-speculation variant here would be wasted sims.
            variants=tuple(
                v
                for v in FIG7A_SPEC.variants
                if v.name in ("remote_read_ns", "sabre_ns")
            ),
            defaults=dict(FIG7A_SPEC.defaults),
            finalize_row=_r2p2_distribution_finalize,
            headers=(
                "object_size",
                "pinned_sabre_ns",
                "striped_lower_bound_ns",
                "pinning_cost",
            ),
            point_fn=FIG7A_SPEC.point_fn,
            base_seed=FIG7A_SPEC.base_seed,
        )
    )


_register_r2p2_distribution()


# ----------------------------------------------------------------------
# Stream-buffer provisioning (DG1/DG2)
# ----------------------------------------------------------------------


def _stream_buffer_count_derive(params: Dict[str, Any]) -> Dict[str, Any]:
    params["cluster"] = _cluster_with_sabre(
        stream_buffers=params["stream_buffers"]
    )
    return params


def _stream_buffer_count_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=128,
            n_objects=256,
            readers=16,
            async_window=8,
            duration_ns=scaled_duration(60_000.0, ctx.scale),
            warmup_ns=8_000.0,
            cluster=ctx.params["cluster"],
        )
    )
    return {
        "small_sabre_gbps": result.goodput_gbps,
        "att_backpressure_events": result.destination_counters.get(
            "att_backpressure", 0
        ),
    }


register(
    ExperimentSpec(
        name="ablation_stream_buffer_count",
        description="stream-buffer count vs concurrent small-SABRe "
        "throughput (DG2)",
        axes={"stream_buffers": (1, 4, 16)},
        derive=_stream_buffer_count_derive,
        headers=(
            "stream_buffers",
            "small_sabre_gbps",
            "att_backpressure_events",
        ),
        point_fn=_stream_buffer_count_point,
    )
)


def _stream_buffer_depth_derive(params: Dict[str, Any]) -> Dict[str, Any]:
    params["cluster"] = _cluster_with_sabre(stream_buffer_depth=params["depth"])
    return params


def _stream_buffer_depth_point(ctx) -> Dict:
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=8192,
            n_objects=512,
            readers=1,
            duration_ns=scaled_duration(60_000.0, ctx.scale),
            warmup_ns=5_000.0,
            cluster=ctx.params["cluster"],
        )
    )
    return {"sabre_8kb_latency_ns": result.mean_transfer_latency_ns}


register(
    ExperimentSpec(
        name="ablation_stream_buffer_depth",
        description="stream-buffer depth vs single 8 KB SABRe latency (DG1)",
        axes={"depth": (2, 8, 32, 128)},
        derive=_stream_buffer_depth_derive,
        headers=("depth", "sabre_8kb_latency_ns"),
        point_fn=_stream_buffer_depth_point,
    )
)

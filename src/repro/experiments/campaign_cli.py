"""``repro-campaign``: run, resume, inspect, and report campaigns.

Usage::

    repro-campaign run nightly.json --dir runs/nightly --jobs 4
    repro-campaign run nightly.json --executor workers --workers 4
    repro-campaign resume runs/nightly          # continue after a kill
    repro-campaign status runs/nightly          # points done per stage
    repro-campaign report runs/nightly          # render the HTML weblog

The request is a JSON file (or a Python file exposing ``CAMPAIGN``)
naming the stages; see ``examples/campaign.py``.  ``run`` persists the
request inside the campaign directory, so ``resume``/``status``/
``report`` need only the directory.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.common.errors import ConfigError
from repro.experiments.campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    campaign_status,
    load_campaign,
    load_campaign_dir,
)
from repro.experiments.context import CampaignContext
from repro.experiments.executors import make_executor


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=("serial", "pool", "workers"),
        default="serial",
        help="execution strategy (default: serial; 'workers' fans out "
        "to subprocess/ssh workers)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="pool size for --executor pool (or serial with --jobs > 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for --executor workers (default: 2)",
    )
    parser.add_argument(
        "--worker-command",
        default=None,
        metavar="CMD",
        help="worker launch template for --executor workers; {python} "
        "expands to this interpreter (default: '{python} -m "
        "repro.experiments.worker'; prefix with 'ssh host' for a "
        "remote worker)",
    )
    parser.add_argument(
        "--qa-gate",
        action="store_true",
        help="exit 3 when any stage's QA verdict is FAIL",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Resumable multi-experiment campaigns over the "
        "declarative sweep framework.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a campaign request")
    run_p.add_argument("request", help="campaign request (.json or .py)")
    run_p.add_argument(
        "--dir",
        dest="campaign_dir",
        default=None,
        help="campaign directory (journal + artifacts + report); "
        "default: campaigns/<name>",
    )
    _add_executor_args(run_p)

    res_p = sub.add_parser("resume", help="continue an interrupted campaign")
    res_p.add_argument("campaign_dir", help="existing campaign directory")
    _add_executor_args(res_p)

    st_p = sub.add_parser("status", help="show per-stage completion")
    st_p.add_argument("campaign_dir", help="existing campaign directory")

    rep_p = sub.add_parser("report", help="render the HTML report")
    rep_p.add_argument("campaign_dir", help="existing campaign directory")
    return parser


def _execute(
    campaign: CampaignSpec, context: CampaignContext, args: argparse.Namespace
) -> int:
    executor = make_executor(
        kind=args.executor,
        jobs=args.jobs,
        workers=args.workers,
        command=args.worker_command,
    )
    result = CampaignRunner(campaign, executor=executor, context=context).run()
    _print_result(result)
    if args.qa_gate and result.verdict == "fail":
        return 3
    return 0


def _print_result(result: CampaignResult) -> None:
    for stage in result.stages:
        hits = (
            f", {stage.journal_hits}/{stage.result.points_total} from journal"
            if stage.journal_hits
            else ""
        )
        print(
            f"=== {stage.stage} "
            f"({stage.result.elapsed_s:.1f}s{hits}, QA {stage.verdict}) ==="
        )
        print(stage.result.table())
        for outcome in stage.qa.outcomes:
            mark = "ok " if outcome.passed else "FAIL"
            shown = "n/a" if outcome.observed is None else f"{outcome.observed:g}"
            extra = f" ({outcome.reason})" if outcome.reason else ""
            print(f"  QA {mark} {outcome.check.describe()}: {shown}{extra}")
        print()
    print(
        f"campaign {result.campaign}: {len(result.stages)} stages, "
        f"verdict {result.verdict.upper()}, "
        f"{result.journal_hits} points served from journal, "
        f"{result.elapsed_s:.1f}s"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            campaign = load_campaign(args.request)
            root = args.campaign_dir or os.path.join("campaigns", campaign.name)
            return _execute(campaign, CampaignContext(root), args)

        if args.command == "resume":
            campaign, context = load_campaign_dir(args.campaign_dir)
            return _execute(campaign, context, args)

        if args.command == "status":
            campaign, context = load_campaign_dir(args.campaign_dir)
            total_done = total = 0
            for stage, done, count in campaign_status(campaign, context):
                total_done += done
                total += count
                print(f"{stage:<28} {done:>5}/{count} points")
            pct = 100.0 * total_done / total if total else 0.0
            print(f"{'total':<28} {total_done:>5}/{total} points ({pct:.0f}%)")
            if context.journal_lines_skipped:
                print(
                    f"note: {context.journal_lines_skipped} corrupt journal "
                    "line(s) skipped (will recompute)"
                )
            return 0

        if args.command == "report":
            from repro.harness.htmlreport import render_campaign

            _, context = load_campaign_dir(args.campaign_dir)
            path = render_campaign(context)
            print(f"wrote {path}")
            return 0
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

"""Run contexts: where completed point fragments live between runs.

A *run context* answers two questions for the sweep/campaign machinery:
"has this point already been computed?" and "remember this fragment".
Three implementations cover the spectrum:

* :class:`MemoryContext` — nothing persists; plain one-shot runs.
* :class:`CacheContext` — the PR-1 :class:`PointCache` behind the
  context interface: one JSON file per point, shared across runs and
  campaigns that happen to hit the same points.
* :class:`CampaignContext` — a campaign directory with an append-only
  JSONL *journal* of completed point keys + fragments, the campaign
  request, per-stage artifacts, and the HTML report.  A killed
  campaign resumes from exactly the unfinished points: every fragment
  is journaled (and flushed) the moment it completes, and corrupt or
  truncated journal lines — the signature of a SIGKILL mid-write —
  are skipped, so those points simply recompute.

Keys come from :func:`point_key`: a content hash of the spec name,
variant, scale, seed, and full parameter dict, so a journal or cache
can never serve a fragment to a point it wasn't computed for.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, Optional, TextIO, Tuple

from repro.experiments.spec import Point

#: Campaign directory layout (all relative to the campaign root).
JOURNAL_NAME = "journal.jsonl"
REQUEST_NAME = "campaign.json"
ARTIFACT_DIR = "artifacts"
REPORT_DIR = "report"


def point_key(spec_name: str, point: Point, scale: float) -> str:
    """Content hash identifying one executable point at one scale."""
    canon = repr(
        (
            spec_name,
            point.variant.name,
            scale,
            point.seed,
            sorted((k, repr(v)) for k, v in point.params.items()),
        )
    )
    return hashlib.sha256(canon.encode()).hexdigest()


def _atomic_write_text(path: str, text: str) -> None:
    """Write-then-rename so readers never observe a truncated file."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)


def atomic_write_json(path: str, payload: Any) -> None:
    _atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------------------
# contexts
# ----------------------------------------------------------------------


class RunContext:
    """Interface: lookup and record completed point fragments.

    ``hits``/``misses`` count lookups, so callers can report exactly
    how much work a resume or cached re-run skipped."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        fragment = self._load(key)
        if fragment is None:
            self.misses += 1
        else:
            self.hits += 1
        return fragment

    def record(self, key: str, fragment: Dict[str, Any], stage: str = "") -> None:
        raise NotImplementedError

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError


class MemoryContext(RunContext):
    """Session-local context: completed points shared within a process."""

    def __init__(self) -> None:
        super().__init__()
        self._fragments: Dict[str, Dict[str, Any]] = {}

    def record(self, key: str, fragment: Dict[str, Any], stage: str = "") -> None:
        self._fragments[key] = dict(fragment)

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        fragment = self._fragments.get(key)
        return dict(fragment) if fragment is not None else None


class PointCache:
    """Completed-point cache: one JSON file per point, keyed by a hash
    of the spec name, scale, seed, variant, and full parameter dict.

    Values must be JSON-serializable (all built-in specs emit plain
    numbers/strings); anything else is silently not cached."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(spec_name: str, point: Point, scale: float) -> str:
        return point_key(spec_name, point, scale)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key)) as fh:
                fragment = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(fragment, dict):
            # Garbage that happens to parse (e.g. a bare number from a
            # corrupted entry) must recompute, never flow into rows.
            self.misses += 1
            return None
        self.hits += 1
        return fragment

    def store(self, key: str, fragment: Dict[str, Any]) -> None:
        try:
            blob = json.dumps(fragment)
        except (TypeError, ValueError):
            return  # not serializable: skip caching, never fail the run
        tmp = self._path(key) + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(blob)
        os.replace(tmp, self._path(key))


class CacheContext(RunContext):
    """The point cache behind the context interface (no journal)."""

    def __init__(self, cache: PointCache):
        super().__init__()
        self.cache = cache

    def record(self, key: str, fragment: Dict[str, Any], stage: str = "") -> None:
        self.cache.store(key, fragment)

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        return self.cache.load(key)


class CampaignContext(RunContext):
    """A campaign directory: request + journal + artifacts + report.

    The journal is append-only JSONL — one ``{"stage", "key",
    "fragment"}`` object per completed point, flushed immediately so a
    SIGKILL loses at most the line being written (which the loader
    then skips).  ``get`` serves fragments journaled by *any* earlier
    attempt of the campaign; keys are content hashes, so replays are
    always safe."""

    def __init__(self, root: str):
        super().__init__()
        self.root = root
        os.makedirs(root, exist_ok=True)
        os.makedirs(self.artifact_dir, exist_ok=True)
        self._fragments: Dict[str, Dict[str, Any]] = {}
        self.journal_lines_skipped = 0
        self._replay_journal()
        self._journal: Optional[TextIO] = None

    # -- paths ---------------------------------------------------------
    @property
    def journal_path(self) -> str:
        return os.path.join(self.root, JOURNAL_NAME)

    @property
    def request_path(self) -> str:
        return os.path.join(self.root, REQUEST_NAME)

    @property
    def artifact_dir(self) -> str:
        return os.path.join(self.root, ARTIFACT_DIR)

    @property
    def report_dir(self) -> str:
        return os.path.join(self.root, REPORT_DIR)

    # -- journal -------------------------------------------------------
    def _replay_journal(self) -> None:
        try:
            fh = open(self.journal_path)
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    fragment = entry["fragment"]
                    key = entry["key"]
                except (ValueError, TypeError, KeyError):
                    # Truncated tail from a killed writer, or garbage:
                    # drop the line; the point recomputes.
                    self.journal_lines_skipped += 1
                    continue
                if not isinstance(fragment, dict) or not isinstance(key, str):
                    self.journal_lines_skipped += 1
                    continue
                self._fragments[key] = fragment

    def record(self, key: str, fragment: Dict[str, Any], stage: str = "") -> None:
        self._fragments[key] = dict(fragment)
        try:
            blob = json.dumps({"stage": stage, "key": key, "fragment": fragment})
        except (TypeError, ValueError):
            return  # not JSON-serializable: recompute on resume
        if self._journal is None:
            self._journal = open(self.journal_path, "a")
        self._journal.write(blob + "\n")
        self._journal.flush()

    def _load(self, key: str) -> Optional[Dict[str, Any]]:
        fragment = self._fragments.get(key)
        return dict(fragment) if fragment is not None else None

    def completed_keys(self) -> Tuple[str, ...]:
        return tuple(self._fragments)

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- request / artifacts ------------------------------------------
    def save_request(self, request: Dict[str, Any]) -> None:
        atomic_write_json(self.request_path, request)

    def load_request(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.request_path) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def rows_artifact_path(self, stage: str) -> str:
        return os.path.join(self.artifact_dir, f"{stage}.rows.json")

    def meta_artifact_path(self, stage: str) -> str:
        return os.path.join(self.artifact_dir, f"{stage}.meta.json")

    def qa_artifact_path(self, stage: str) -> str:
        return os.path.join(self.artifact_dir, f"{stage}.qa.json")

    def write_stage_artifacts(
        self,
        stage: str,
        rows_payload: Dict[str, Any],
        meta_payload: Dict[str, Any],
        qa_payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist one finished stage.

        The *rows* artifact holds only deterministic content (spec,
        headers, rows) so byte-comparison across executors and across
        kill/resume boundaries is meaningful; volatile detail (wall
        time, executor, journal hits) lives in the *meta* artifact."""
        atomic_write_json(self.rows_artifact_path(stage), rows_payload)
        atomic_write_json(self.meta_artifact_path(stage), meta_payload)
        if qa_payload is not None:
            atomic_write_json(self.qa_artifact_path(stage), qa_payload)

    def iter_stage_artifacts(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Yield ``(stage, rows payload)`` for every completed stage."""
        try:
            names = sorted(os.listdir(self.artifact_dir))
        except OSError:
            return
        for name in names:
            if not name.endswith(".rows.json"):
                continue
            stage = name[: -len(".rows.json")]
            try:
                with open(os.path.join(self.artifact_dir, name)) as fh:
                    yield stage, json.load(fh)
            except (OSError, ValueError):
                continue

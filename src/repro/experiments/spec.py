"""Declarative experiment specifications.

An :class:`ExperimentSpec` describes a whole figure, table, or ablation
as data: a grid of *axes* (one row per grid point), a list of
*variants* (each contributing columns to the row), shared *defaults*,
an optional *derived-config hook*, and a point function that runs one
``(grid point, variant)`` cell and returns its column fragment.

The spec never runs anything itself — :class:`repro.experiments.runner.
SweepRunner` expands it into :class:`Point` objects and executes them,
serially or across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed


@dataclass(frozen=True)
class Variant:
    """One experiment variant (e.g. a mechanism or build flavor).

    ``params`` is merged over the spec defaults and axis values for the
    point; the variant ``name`` is exposed to the point function so it
    can label its output columns."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)


#: A spec with no explicit variants runs each grid point once.
DEFAULT_VARIANT = Variant("default")


@dataclass(frozen=True)
class PointContext:
    """Everything a point function may depend on.  ``seed`` is derived
    deterministically from the spec seed and the point's position, so a
    sweep is reproducible regardless of worker scheduling."""

    spec_name: str
    params: Mapping[str, Any]
    axis_values: Mapping[str, Any]
    variant: str
    scale: float
    seed: int


@dataclass(frozen=True)
class Point:
    """One executable cell of the expanded sweep."""

    index: int
    row_key: Tuple[Any, ...]
    axis_values: Dict[str, Any]
    variant: Variant
    params: Dict[str, Any]
    seed: int


PointFn = Callable[[PointContext], Mapping[str, Any]]


@dataclass
class ExperimentSpec:
    """A declarative sweep: ``axes`` x ``variants`` -> rows.

    ``point_fn(ctx)`` runs one cell and returns a dict of columns; the
    runner merges all variants of a grid point into one row (axis
    values first, then fragments in variant order) and finally applies
    ``finalize_row`` for derived columns.  ``derive`` is the
    derived-config hook: it maps the merged parameter dict to the final
    one (e.g. building a ``ClusterConfig`` from a scalar axis value)
    before execution, so point functions stay trivial.

    ``qa_checks`` holds :class:`repro.experiments.qa.QaCheck`
    assertions scored against the finished rows by the campaign layer
    (and ``repro-campaign report``); campaign stages may add their own
    on top.  The spec itself never evaluates them.
    """

    name: str
    point_fn: PointFn
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    variants: Sequence[Variant] = (DEFAULT_VARIANT,)
    defaults: Mapping[str, Any] = field(default_factory=dict)
    derive: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    finalize_row: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    headers: Sequence[str] = ()
    description: str = ""
    base_seed: int = 1
    qa_checks: Sequence[Any] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("experiment spec needs a name")
        if not self.variants:
            raise ConfigError(f"experiment {self.name!r} needs >= 1 variant")

    def expand(
        self,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        base_seed: Optional[int] = None,
    ) -> List[Point]:
        """Expand the (possibly overridden) grid into executable points.

        Expansion order is deterministic: axes vary outermost-first in
        declaration order, variants innermost — matching the nesting of
        the hand-rolled loops these specs replaced."""
        grid = dict(self.axes)
        for axis, values in (axes or {}).items():
            if axis not in grid:
                raise ConfigError(
                    f"experiment {self.name!r} has no axis {axis!r}; "
                    f"axes are {tuple(grid)}"
                )
            grid[axis] = tuple(values)
        seed_root = self.base_seed if base_seed is None else base_seed

        points: List[Point] = []
        for axis_values in _grid_product(grid):
            row_key = tuple(axis_values.values())
            for variant in self.variants:
                params = dict(self.defaults)
                params.update(axis_values)
                params.update(variant.params)
                if overrides:
                    params.update(overrides)
                if self.derive is not None:
                    params = dict(self.derive(params))
                index = len(points)
                points.append(
                    Point(
                        index=index,
                        row_key=row_key,
                        axis_values=dict(axis_values),
                        variant=variant,
                        params=params,
                        seed=derive_seed(seed_root, self.name, index, variant.name),
                    )
                )
        return points


def _grid_product(grid: Mapping[str, Sequence[Any]]):
    """Cartesian product of the axes, preserving declaration order."""
    names = list(grid)
    if not names:
        yield {}
        return

    def rec(i: int, acc: Dict[str, Any]):
        if i == len(names):
            yield dict(acc)
            return
        for value in grid[names[i]]:
            acc[names[i]] = value
            yield from rec(i + 1, acc)
        acc.pop(names[i], None)

    yield from rec(0, {})

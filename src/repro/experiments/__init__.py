"""Declarative experiment framework: specs, sweeps, campaigns.

Quickstart::

    from repro.experiments import registry, run_sweep

    result = run_sweep(registry.get("fig7a"), scale=0.25, jobs=4)
    print(result.table())

Campaigns (resumable, multi-host, self-reporting)::

    from repro.experiments import CampaignSpec, CampaignStage, CampaignRunner
    from repro.experiments.context import CampaignContext

    campaign = CampaignSpec(
        name="nightly",
        scale=0.2,
        stages=[CampaignStage("fig7a"), CampaignStage("ycsb_latency")],
    )
    CampaignRunner(campaign, context=CampaignContext("runs/nightly")).run()
"""

from repro.experiments.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignStage,
    load_campaign,
)
from repro.experiments.context import (
    CacheContext,
    CampaignContext,
    MemoryContext,
    PointCache,
    RunContext,
    point_key,
)
from repro.experiments.executors import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    SubprocessExecutor,
    execute_point,
    make_executor,
)
from repro.experiments.qa import QaCheck, QaReport
from repro.experiments.registry import get, load_builtin, names, register
from repro.experiments.runner import (
    SweepResult,
    SweepRunner,
    merge_rows,
    run_sweep,
)
from repro.experiments.spec import (
    ExperimentSpec,
    Point,
    PointContext,
    Variant,
)

__all__ = [
    "CacheContext",
    "CampaignContext",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStage",
    "Executor",
    "ExperimentSpec",
    "MemoryContext",
    "Point",
    "PointCache",
    "PointContext",
    "PoolExecutor",
    "QaCheck",
    "QaReport",
    "RunContext",
    "SerialExecutor",
    "SubprocessExecutor",
    "SweepResult",
    "SweepRunner",
    "Variant",
    "execute_point",
    "get",
    "load_builtin",
    "load_campaign",
    "make_executor",
    "merge_rows",
    "names",
    "point_key",
    "register",
    "run_sweep",
]

"""Declarative experiment framework: specs, parallel sweeps, registry.

Quickstart::

    from repro.experiments import registry, run_sweep

    result = run_sweep(registry.get("fig7a"), scale=0.25, jobs=4)
    print(result.table())
"""

from repro.experiments.registry import get, load_builtin, names, register
from repro.experiments.runner import PointCache, SweepResult, SweepRunner, run_sweep
from repro.experiments.spec import (
    ExperimentSpec,
    Point,
    PointContext,
    Variant,
)

__all__ = [
    "ExperimentSpec",
    "Point",
    "PointContext",
    "PointCache",
    "SweepResult",
    "SweepRunner",
    "Variant",
    "get",
    "load_builtin",
    "names",
    "register",
    "run_sweep",
]

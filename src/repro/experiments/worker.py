"""Campaign worker: execute pickled points shipped over stdin.

This is the remote end of
:class:`repro.experiments.executors.SubprocessExecutor`.  The parent
launches ``{python} -m repro.experiments.worker`` (possibly wrapped in
``ssh host ...``), writes one pickled payload::

    {"ref": <spec reference>, "scale": <float>, "points": [Point, ...]}

and closes stdin.  The worker resolves the spec from the reference —
a registry name (built-ins load automatically) or a ``module:attr``
path for specs living outside the registry — executes each point with
the same deterministic per-point seeding as every other executor, and
writes one JSON line per completed point to stdout::

    {"index": <point.index>, "data": <base64(pickle(fragment))>}

Fragments are base64-pickled so value types (tuples, ints vs floats)
survive transport exactly; byte-identical rows across executors is the
contract.  Failures emit ``{"error": ...}`` and exit non-zero.
"""

from __future__ import annotations

import base64
import json
import pickle
import sys

from repro.experiments.executors import execute_point, resolve_spec


def serve(stdin=None, stdout=None) -> int:
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout
    try:
        payload = pickle.load(stdin)
        spec = resolve_spec(payload["ref"])
        scale = payload["scale"]
        for point in payload["points"]:
            fragment = execute_point(spec, point, scale)
            blob = base64.b64encode(pickle.dumps(fragment)).decode()
            stdout.write(json.dumps({"index": point.index, "data": blob}) + "\n")
            stdout.flush()
    except Exception as exc:  # noqa: BLE001 - relayed to the parent
        stdout.write(json.dumps({"error": f"{type(exc).__name__}: {exc}"}) + "\n")
        stdout.flush()
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(serve())

"""Global experiment registry.

Specs register by name; the CLI (and anything else) can list and run
them uniformly.  Built-in specs live in the figure/table harness
modules and :mod:`repro.experiments.ablations`; they self-register on
import, and :func:`load_builtin` imports them all lazily (the harness
modules import :mod:`repro.experiments`, so eager imports here would
cycle).
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple

from repro.common.errors import ConfigError
from repro.experiments.spec import ExperimentSpec

_REGISTRY: Dict[str, ExperimentSpec] = {}

#: Modules that define the built-in specs (imported lazily, once).
_BUILTIN_MODULES = (
    "repro.harness.fig1",
    "repro.harness.fig7",
    "repro.harness.fig8",
    "repro.harness.fig9",
    "repro.harness.fig10",
    "repro.harness.tables",
    "repro.experiments.ablations",
    "repro.workloads.ycsb",
    "repro.workloads.txn_mix",
    "repro.workloads.availability",
    "repro.workloads.elastic",
    "repro.loadgen.sweep",
)
_builtin_loaded = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or re-register) a spec under ``spec.name``."""
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def load_builtin() -> None:
    """Import every module that defines built-in specs (idempotent)."""
    global _builtin_loaded
    if _builtin_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only after every import succeeded: a failed import must surface
    # again on the next call, not leave a silent partial registry.
    _builtin_loaded = True


def get(name: str) -> ExperimentSpec:
    load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; registered: {', '.join(names())}"
        ) from None


def names() -> Tuple[str, ...]:
    load_builtin()
    return tuple(sorted(_REGISTRY))


def descriptions() -> Dict[str, str]:
    load_builtin()
    return {name: _REGISTRY[name].description for name in names()}

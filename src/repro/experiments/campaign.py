"""Declarative campaigns: many sweeps as one resumable request.

A :class:`CampaignSpec` is the ``executeppr``-style processing
request: it names a sequence of *stages* (each a registered
:class:`ExperimentSpec` — or a ``module:attr`` reference — plus axis
subsets, parameter overrides, a seed root, a scale, and QA checks).
:class:`CampaignRunner` executes the request through any
:class:`~repro.experiments.executors.Executor` against any
:class:`~repro.experiments.context.RunContext`:

* with a :class:`~repro.experiments.context.CampaignContext`, every
  completed point is journaled immediately, so a killed campaign
  resumes from exactly the unfinished points — same rows, byte for
  byte, as an uninterrupted run;
* per-stage rows/meta/QA artifacts land under ``<dir>/artifacts/``
  and feed the HTML renderer (``repro-campaign report``).

Requests load from JSON files or from Python files exposing a
``CAMPAIGN`` attribute (for campaigns that need closures or computed
axes); both normalize through :meth:`CampaignSpec.to_dict`, which is
what a campaign directory persists.
"""

from __future__ import annotations

import importlib.util
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.experiments import qa as qa_mod
from repro.experiments.context import CampaignContext, RunContext, point_key
from repro.experiments.executors import (
    Executor,
    SubprocessExecutor,
    resolve_spec,
)
from repro.experiments.qa import QaCheck, QaReport
from repro.experiments.runner import SweepResult, SweepRunner


@dataclass
class CampaignStage:
    """One stage of a campaign: a spec reference plus its knobs."""

    experiment: str
    name: str = ""
    axes: Optional[Mapping[str, Sequence[Any]]] = None
    overrides: Optional[Mapping[str, Any]] = None
    base_seed: Optional[int] = None
    scale: Optional[float] = None
    qa: Sequence[QaCheck] = ()

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ConfigError("campaign stage needs an experiment reference")
        if not self.name:
            # module:attr references make poor filenames; use the attr.
            self.name = self.experiment.rsplit(":", 1)[-1]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"experiment": self.experiment, "name": self.name}
        if self.axes is not None:
            out["axes"] = {k: list(v) for k, v in self.axes.items()}
        if self.overrides is not None:
            out["overrides"] = dict(self.overrides)
        if self.base_seed is not None:
            out["base_seed"] = self.base_seed
        if self.scale is not None:
            out["scale"] = self.scale
        if self.qa:
            out["qa"] = [check.to_dict() for check in self.qa]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignStage":
        return cls(
            experiment=data["experiment"],
            name=data.get("name", ""),
            axes=data.get("axes"),
            overrides=data.get("overrides"),
            base_seed=data.get("base_seed"),
            scale=data.get("scale"),
            qa=tuple(QaCheck.from_dict(c) for c in data.get("qa", ())),
        )


@dataclass
class CampaignSpec:
    """A whole campaign request: named stages plus shared defaults."""

    name: str
    stages: Sequence[CampaignStage]
    scale: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("campaign needs a name")
        if not self.stages:
            raise ConfigError(f"campaign {self.name!r} needs >= 1 stage")
        seen = set()
        for stage in self.stages:
            if stage.name in seen:
                raise ConfigError(
                    f"campaign {self.name!r} has duplicate stage "
                    f"name {stage.name!r}"
                )
            seen.add(stage.name)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.name,
            "description": self.description,
            "scale": self.scale,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            name=data.get("campaign") or data.get("name") or "",
            description=data.get("description", ""),
            scale=data.get("scale", 1.0),
            stages=tuple(
                CampaignStage.from_dict(s) for s in data.get("stages", ())
            ),
        )


def load_campaign(path: str) -> CampaignSpec:
    """Load a campaign request from a ``.json`` or ``.py`` file.

    Python requests expose a module-level ``CAMPAIGN`` — either a
    :class:`CampaignSpec` or a request dict — for campaigns whose
    axes/overrides want to be computed."""
    if path.endswith(".py"):
        spec = importlib.util.spec_from_file_location("_campaign_request", path)
        if spec is None or spec.loader is None:
            raise ConfigError(f"cannot import campaign file {path!r}")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        request = getattr(module, "CAMPAIGN", None)
        if isinstance(request, CampaignSpec):
            return request
        if isinstance(request, Mapping):
            return CampaignSpec.from_dict(request)
        raise ConfigError(
            f"{path!r} must define CAMPAIGN as a CampaignSpec or dict"
        )
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read campaign request {path!r}: {exc}")
    except ValueError as exc:
        raise ConfigError(f"campaign request {path!r} is not valid JSON: {exc}")
    return CampaignSpec.from_dict(data)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


@dataclass
class StageResult:
    """One executed stage: the sweep result plus QA and resume stats."""

    stage: str
    result: SweepResult
    qa: QaReport
    journal_hits: int

    @property
    def verdict(self) -> str:
        return self.qa.verdict


@dataclass
class CampaignResult:
    """All stages of one campaign attempt."""

    campaign: str
    stages: List[StageResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def verdict(self) -> str:
        return qa_mod.worst_verdict([s.qa for s in self.stages])

    @property
    def journal_hits(self) -> int:
        return sum(s.journal_hits for s in self.stages)


class CampaignRunner:
    """Execute a :class:`CampaignSpec` stage by stage.

    ``executor`` defaults to serial; ``context`` defaults to nothing
    persistent (pass a :class:`CampaignContext` for journaling,
    artifacts, and resumability — the runner persists the request and
    writes per-stage artifacts as stages finish)."""

    def __init__(
        self,
        campaign: CampaignSpec,
        executor: Optional[Executor] = None,
        context: Optional[RunContext] = None,
    ):
        self.campaign = campaign
        self.executor = executor
        self.context = context

    # ------------------------------------------------------------------
    def _stage_executor(self, stage: CampaignStage) -> Optional[Executor]:
        """Subprocess workers resolve specs by reference, and the
        reference is per-stage — hand each stage its own copy."""
        executor = self.executor
        if isinstance(executor, SubprocessExecutor) and executor.ref is None:
            return SubprocessExecutor(
                workers=executor.workers,
                command=executor.command,
                ref=stage.experiment,
                env=executor.env,
            )
        return executor

    def run(self) -> CampaignResult:
        start = time.time()
        out = CampaignResult(campaign=self.campaign.name)
        for stage_result in self.iter_run():
            out.stages.append(stage_result)
        out.elapsed_s = time.time() - start
        return out

    def iter_run(self):
        """Execute stage by stage, yielding each :class:`StageResult`
        as it completes (artifacts are written before the yield, so a
        consumer crash never loses a finished stage)."""
        context = self.context
        if isinstance(context, CampaignContext):
            context.save_request(self.campaign.to_dict())
        for stage in self.campaign.stages:
            spec = resolve_spec(stage.experiment)
            scale = self.campaign.scale if stage.scale is None else stage.scale
            hits_before = context.hits if context is not None else 0
            runner = SweepRunner(
                spec,
                scale=scale,
                axes=stage.axes,
                overrides=stage.overrides,
                base_seed=stage.base_seed,
                executor=self._stage_executor(stage),
                context=context,
            )
            result = runner.run()
            hits = (context.hits - hits_before) if context is not None else 0
            checks = [*spec.qa_checks, *stage.qa]
            report = qa_mod.evaluate(stage.name, checks, result.rows)
            if isinstance(context, CampaignContext):
                executor = runner.executor
                context.write_stage_artifacts(
                    stage.name,
                    rows_payload=result.rows_json_dict(),
                    meta_payload={
                        "stage": stage.name,
                        "experiment": stage.experiment,
                        "scale": scale,
                        "executor": executor.describe(),
                        "points_total": result.points_total,
                        "journal_hits": hits,
                        "elapsed_s": round(result.elapsed_s, 3),
                    },
                    qa_payload=report.to_dict(),
                )
            yield StageResult(
                stage=stage.name,
                result=result,
                qa=report,
                journal_hits=hits,
            )
        if isinstance(context, CampaignContext):
            context.close()


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------


def campaign_status(
    campaign: CampaignSpec, context: CampaignContext
) -> List[Tuple[str, int, int]]:
    """Per-stage resume picture: ``(stage, points done, points total)``.

    Pure bookkeeping — expansion is side-effect free, so asking for
    status never executes anything."""
    done_keys = set(context.completed_keys())
    status: List[Tuple[str, int, int]] = []
    for stage in campaign.stages:
        spec = resolve_spec(stage.experiment)
        scale = campaign.scale if stage.scale is None else stage.scale
        points = spec.expand(
            axes=stage.axes, overrides=stage.overrides, base_seed=stage.base_seed
        )
        done = sum(
            1
            for p in points
            if point_key(spec.name, p, scale) in done_keys
        )
        status.append((stage.name, done, len(points)))
    return status


def load_campaign_dir(root: str) -> Tuple[CampaignSpec, CampaignContext]:
    """Open an existing campaign directory (for resume/status/report)."""
    if not os.path.isdir(root):
        raise ConfigError(f"no campaign directory at {root!r}")
    context = CampaignContext(root)
    request = context.load_request()
    if request is None:
        raise ConfigError(
            f"{root!r} has no readable {os.path.basename(context.request_path)}; "
            "was the campaign ever started?"
        )
    return CampaignSpec.from_dict(request), context

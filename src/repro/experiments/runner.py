"""Sweep execution for :class:`ExperimentSpec`.

The runner is now a thin orchestration layer over three pluggable
pieces (PR 9 split the old monolith):

* point **expansion** stays pure in :mod:`repro.experiments.spec`;
* an :class:`~repro.experiments.executors.Executor` turns pending
  points into fragments (in-process, pool, or multi-host workers);
* a :class:`~repro.experiments.context.RunContext` remembers completed
  fragments (point cache, or a campaign's crash-resumable journal).

Determinism: every point re-seeds the worker's global RNG from a seed
derived from ``(spec seed, spec name, point index, variant)``, and all
simulation randomness already flows from the explicit config seeds, so
every executor produces byte-identical rows to a serial run.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.experiments.context import (
    CacheContext,
    PointCache,
    RunContext,
    point_key,
)
from repro.experiments.executors import (
    Executor,
    PoolExecutor,
    SerialExecutor,
    SubprocessExecutor,
    execute_point,
)
from repro.experiments.spec import ExperimentSpec, Point
from repro.harness.report import format_table

# Backward-compatible aliases: these lived here before the split.
_execute_point = execute_point

# ----------------------------------------------------------------------
# result assembly (shared by SweepRunner and CampaignRunner)
# ----------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def merge_rows(
    spec: ExperimentSpec,
    points: Sequence[Point],
    fragments: Sequence[Optional[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-point column fragments into rows in grid order.

    ``None`` means "point did not run" and contributes nothing; an
    empty dict is a *valid* fragment (a point that measured nothing
    but completed) and must not be confused with a missing one."""
    rows: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for point in points:
        row = rows.get(point.row_key)
        if row is None:
            row = dict(point.axis_values)
            rows[point.row_key] = row
            order.append(point.row_key)
        fragment = fragments[point.index]
        if fragment is not None:
            row.update(fragment)
    finalized = []
    for key in order:
        row = rows[key]
        if spec.finalize_row is not None:
            row = dict(spec.finalize_row(row))
        finalized.append(row)
    return finalized


def result_headers(
    spec: ExperimentSpec, rows: Sequence[Dict[str, Any]]
) -> Tuple[str, ...]:
    return tuple(spec.headers) or (tuple(rows[0]) if rows else tuple(spec.axes))


@dataclass
class SweepResult:
    """Uniform sweep output: ordered headers + row dicts, plus metadata
    for artifacts and reporting."""

    spec_name: str
    headers: Tuple[str, ...]
    rows: List[Dict[str, Any]]
    scale: float
    jobs: int
    points_total: int
    points_cached: int
    elapsed_s: float
    description: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def rows_json_dict(self) -> Dict[str, Any]:
        """The deterministic part of the artifact: identical bytes for
        identical rows, regardless of executor, timing, or resume."""
        return {
            "experiment": self.spec_name,
            "description": self.description,
            "scale": self.scale,
            "headers": list(self.headers),
            # Strict JSON: non-finite floats (e.g. a NaN ratio from a
            # zero-goodput tiny-scale run) become null, not bare NaN.
            "rows": [
                {k: _json_safe(v) for k, v in row.items()} for row in self.rows
            ],
        }

    def to_json_dict(self) -> Dict[str, Any]:
        payload = self.rows_json_dict()
        payload.update(
            {
                "jobs": self.jobs,
                "points_total": self.points_total,
                "points_cached": self.points_cached,
                "elapsed_s": round(self.elapsed_s, 3),
            }
        )
        return payload

    def write_json(self, path: str) -> None:
        # Write-then-rename: a run killed mid-write must never leave a
        # truncated artifact for downstream tooling to choke on.
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


class SweepRunner:
    """Expand a spec and execute every point through an executor.

    Parameters
    ----------
    spec:
        The experiment to run.
    scale:
        Measurement-window scale factor forwarded to every point.
    jobs:
        Worker processes; 1 runs in-process (no pool).  Ignored when
        an explicit ``executor`` is given.
    axes:
        Per-run axis overrides (e.g. a subset of object sizes).
    overrides:
        Parameter overrides merged over defaults/axis/variant values.
    cache_dir:
        Enable the on-disk completed-point cache rooted here.  Ignored
        when an explicit ``context`` is given.
    base_seed:
        Override the spec's seed root for per-point worker seeding.
    executor:
        Execution strategy; defaults to serial (``jobs == 1``) or a
        ``multiprocessing`` pool.
    context:
        Completed-fragment store consulted before executing and fed as
        fragments complete (e.g. a campaign journal).
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        scale: float = 1.0,
        jobs: int = 1,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        cache_dir: Optional[str] = None,
        base_seed: Optional[int] = None,
        executor: Optional[Executor] = None,
        context: Optional[RunContext] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.scale = scale
        self.jobs = jobs
        self.axes = axes
        self.overrides = overrides
        self.base_seed = base_seed
        if executor is None:
            executor = PoolExecutor(jobs) if jobs > 1 else SerialExecutor()
        self.executor = executor
        # Keep the artifact's reported parallelism truthful when the
        # executor was handed in directly (e.g. by a campaign).
        if isinstance(executor, PoolExecutor):
            self.jobs = executor.jobs
        elif isinstance(executor, SubprocessExecutor):
            self.jobs = executor.workers
        if context is None and cache_dir:
            context = CacheContext(PointCache(cache_dir))
        self.context = context

    # Kept for callers/tests that poke the cache object directly.
    @property
    def cache(self) -> Optional[PointCache]:
        if isinstance(self.context, CacheContext):
            return self.context.cache
        return None

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        start = time.time()
        points = self.spec.expand(
            axes=self.axes, overrides=self.overrides, base_seed=self.base_seed
        )
        fragments: List[Optional[Dict[str, Any]]] = [None] * len(points)

        pending: List[Point] = []
        keys: Dict[int, str] = {}
        if self.context is not None:
            for point in points:
                key = point_key(self.spec.name, point, self.scale)
                keys[point.index] = key
                known = self.context.get(key)
                if known is not None:
                    fragments[point.index] = known
                else:
                    pending.append(point)
        else:
            pending = list(points)

        cached_count = len(points) - len(pending)
        for index, fragment in self.executor.run(self.spec, pending, self.scale):
            fragments[index] = fragment
            if self.context is not None:
                self.context.record(keys[index], fragment, stage=self.spec.name)

        rows = merge_rows(self.spec, points, fragments)
        return SweepResult(
            spec_name=self.spec.name,
            headers=result_headers(self.spec, rows),
            rows=rows,
            scale=self.scale,
            jobs=self.jobs,
            points_total=len(points),
            points_cached=cached_count,
            elapsed_s=time.time() - start,
            description=self.spec.description,
        )


def run_sweep(
    spec: ExperimentSpec,
    scale: float = 1.0,
    jobs: int = 1,
    **kwargs: Any,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(spec, scale=scale, jobs=jobs, **kwargs).run()

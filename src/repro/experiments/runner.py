"""Parallel sweep execution for :class:`ExperimentSpec`.

The runner expands a spec into points, executes them — in-process or
across a ``multiprocessing`` pool (``jobs > 1``) — merges the column
fragments back into rows in deterministic grid order, and can cache
completed points on disk keyed by a content hash of the point, so
re-runs only pay for what changed.

Determinism: every point re-seeds the worker's global RNG from a seed
derived from ``(spec seed, spec name, point index, variant)``, and all
simulation randomness already flows from the explicit config seeds, so
an N-job sweep produces byte-identical rows to a serial one.
"""

from __future__ import annotations

import hashlib
import json
import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.experiments.spec import ExperimentSpec, Point, PointContext
from repro.harness.report import format_table

# ----------------------------------------------------------------------
# worker-side execution
# ----------------------------------------------------------------------

#: Spec handed to pool workers via the initializer (inherited directly
#: under the ``fork`` start method, so closures in ``point_fn`` work).
_WORKER_SPEC: Optional[ExperimentSpec] = None


def _init_worker(spec: ExperimentSpec) -> None:
    global _WORKER_SPEC
    _WORKER_SPEC = spec


def _execute_point(spec: ExperimentSpec, point: Point, scale: float) -> Dict[str, Any]:
    """Run one point under a deterministic per-point global-RNG seed.

    The seed applies in serial and pooled execution alike, so a point
    function that reaches for the global ``random`` module still yields
    identical rows at any ``jobs``; the caller's RNG state is restored
    afterwards, so the sweep has no side effect on library users."""
    ctx = PointContext(
        spec_name=spec.name,
        params=point.params,
        axis_values=point.axis_values,
        variant=point.variant.name,
        scale=scale,
        seed=point.seed,
    )
    outer_state = random.getstate()
    random.seed(point.seed)
    try:
        fragment = spec.point_fn(ctx)
    finally:
        random.setstate(outer_state)
    if not isinstance(fragment, Mapping):
        raise ConfigError(
            f"experiment {spec.name!r} point_fn must return a column dict, "
            f"got {type(fragment).__name__}"
        )
    return dict(fragment)


def _pool_entry(payload: Tuple[Point, float]) -> Dict[str, Any]:
    point, scale = payload
    assert _WORKER_SPEC is not None, "pool initializer did not run"
    return _execute_point(_WORKER_SPEC, point, scale)


# ----------------------------------------------------------------------
# on-disk point cache
# ----------------------------------------------------------------------


class PointCache:
    """Completed-point cache: one JSON file per point, keyed by a hash
    of the spec name, scale, seed, variant, and full parameter dict.

    Values must be JSON-serializable (all built-in specs emit plain
    numbers/strings); anything else is silently not cached."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(spec_name: str, point: Point, scale: float) -> str:
        canon = repr(
            (
                spec_name,
                point.variant.name,
                scale,
                point.seed,
                sorted((k, repr(v)) for k, v in point.params.items()),
            )
        )
        return hashlib.sha256(canon.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key)) as fh:
                fragment = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return fragment

    def store(self, key: str, fragment: Dict[str, Any]) -> None:
        try:
            blob = json.dumps(fragment)
        except (TypeError, ValueError):
            return  # not serializable: skip caching, never fail the run
        tmp = self._path(key) + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(blob)
        os.replace(tmp, self._path(key))


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


def _json_safe(value: Any) -> Any:
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


@dataclass
class SweepResult:
    """Uniform sweep output: ordered headers + row dicts, plus metadata
    for artifacts and reporting."""

    spec_name: str
    headers: Tuple[str, ...]
    rows: List[Dict[str, Any]]
    scale: float
    jobs: int
    points_total: int
    points_cached: int
    elapsed_s: float
    description: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.spec_name,
            "description": self.description,
            "scale": self.scale,
            "jobs": self.jobs,
            "points_total": self.points_total,
            "points_cached": self.points_cached,
            "elapsed_s": round(self.elapsed_s, 3),
            "headers": list(self.headers),
            # Strict JSON: non-finite floats (e.g. a NaN ratio from a
            # zero-goodput tiny-scale run) become null, not bare NaN.
            "rows": [
                {k: _json_safe(v) for k, v in row.items()} for row in self.rows
            ],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)
            fh.write("\n")


def _fork_or_spawn() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class SweepRunner:
    """Expand a spec and execute every point, optionally in parallel.

    Parameters
    ----------
    spec:
        The experiment to run.
    scale:
        Measurement-window scale factor forwarded to every point.
    jobs:
        Worker processes; 1 runs in-process (no pool).
    axes:
        Per-run axis overrides (e.g. a subset of object sizes).
    overrides:
        Parameter overrides merged over defaults/axis/variant values.
    cache_dir:
        Enable the on-disk completed-point cache rooted here.
    base_seed:
        Override the spec's seed root for per-point worker seeding.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        scale: float = 1.0,
        jobs: int = 1,
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        cache_dir: Optional[str] = None,
        base_seed: Optional[int] = None,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.spec = spec
        self.scale = scale
        self.jobs = jobs
        self.axes = axes
        self.overrides = overrides
        self.cache = PointCache(cache_dir) if cache_dir else None
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    def run(self) -> SweepResult:
        start = time.time()
        points = self.spec.expand(
            axes=self.axes, overrides=self.overrides, base_seed=self.base_seed
        )
        fragments: List[Optional[Dict[str, Any]]] = [None] * len(points)

        pending: List[Point] = []
        keys: Dict[int, str] = {}
        if self.cache is not None:
            for point in points:
                key = PointCache.key(self.spec.name, point, self.scale)
                keys[point.index] = key
                cached = self.cache.load(key)
                if cached is not None:
                    fragments[point.index] = cached
                else:
                    pending.append(point)
        else:
            pending = list(points)

        cached_count = len(points) - len(pending)
        for point, fragment in zip(pending, self._execute(pending)):
            fragments[point.index] = fragment
            if self.cache is not None:
                self.cache.store(keys[point.index], fragment)

        rows = self._merge_rows(points, fragments)
        headers = tuple(self.spec.headers) or (
            tuple(rows[0]) if rows else tuple(self.spec.axes)
        )
        return SweepResult(
            spec_name=self.spec.name,
            headers=headers,
            rows=rows,
            scale=self.scale,
            jobs=self.jobs,
            points_total=len(points),
            points_cached=cached_count,
            elapsed_s=time.time() - start,
            description=self.spec.description,
        )

    # ------------------------------------------------------------------
    def _execute(self, points: Sequence[Point]) -> List[Dict[str, Any]]:
        if not points:
            return []
        if self.jobs == 1 or len(points) == 1:
            return [_execute_point(self.spec, p, self.scale) for p in points]
        ctx = _fork_or_spawn()
        workers = min(self.jobs, len(points))
        with ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=(self.spec,)
        ) as pool:
            payloads = [(p, self.scale) for p in points]
            # map() preserves submission order, so merged rows never
            # depend on worker completion order.
            return pool.map(_pool_entry, payloads)

    # ------------------------------------------------------------------
    def _merge_rows(
        self,
        points: Sequence[Point],
        fragments: Sequence[Optional[Dict[str, Any]]],
    ) -> List[Dict[str, Any]]:
        rows: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        order: List[Tuple[Any, ...]] = []
        for point in points:
            row = rows.get(point.row_key)
            if row is None:
                row = dict(point.axis_values)
                rows[point.row_key] = row
                order.append(point.row_key)
            fragment = fragments[point.index]
            if fragment:
                row.update(fragment)
        finalized = []
        for key in order:
            row = rows[key]
            if self.spec.finalize_row is not None:
                row = dict(self.spec.finalize_row(row))
            finalized.append(row)
        return finalized


def run_sweep(
    spec: ExperimentSpec,
    scale: float = 1.0,
    jobs: int = 1,
    **kwargs: Any,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(spec, scale=scale, jobs=jobs, **kwargs).run()

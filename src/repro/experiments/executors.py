"""Point execution strategies for sweeps and campaigns.

The expansion of an :class:`~repro.experiments.spec.ExperimentSpec`
into :class:`~repro.experiments.spec.Point` objects is pure; an
*executor* is the pluggable strategy that turns pending points into
column fragments:

* :class:`SerialExecutor` — in-process, one point at a time;
* :class:`PoolExecutor` — a ``multiprocessing`` pool on this host;
* :class:`SubprocessExecutor` — multi-host style fan-out: pickled
  points are shipped to worker processes launched from a command
  template (plain subprocesses by default, ``ssh host ...`` for real
  remote hosts) and fragments stream back over stdout as they finish.

Every executor yields ``(point.index, fragment)`` pairs as points
complete, so callers can journal each fragment immediately (crash
resume) while still merging rows in deterministic grid order.
Determinism does not depend on the executor: each point re-seeds the
global RNG from its own derived seed, so serial, pooled, and
subprocess execution produce byte-identical fragments.
"""

from __future__ import annotations

import base64
import importlib
import multiprocessing
import os
import pickle
import queue
import random
import shlex
import subprocess
import sys
import threading
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.errors import ConfigError
from repro.experiments.spec import ExperimentSpec, Point, PointContext

#: One completed point: ``(point.index, column fragment)``.
Fragment = Tuple[int, Dict[str, Any]]


def execute_point(spec: ExperimentSpec, point: Point, scale: float) -> Dict[str, Any]:
    """Run one point under a deterministic per-point global-RNG seed.

    The seed applies identically under every executor, so a point
    function that reaches for the global ``random`` module still
    yields identical rows at any parallelism; the caller's RNG state
    is restored afterwards, so sweeps have no side effect on library
    users."""
    ctx = PointContext(
        spec_name=spec.name,
        params=point.params,
        axis_values=point.axis_values,
        variant=point.variant.name,
        scale=scale,
        seed=point.seed,
    )
    outer_state = random.getstate()
    random.seed(point.seed)
    try:
        fragment = spec.point_fn(ctx)
    finally:
        random.setstate(outer_state)
    if not isinstance(fragment, Mapping):
        raise ConfigError(
            f"experiment {spec.name!r} point_fn must return a column dict, "
            f"got {type(fragment).__name__}"
        )
    return dict(fragment)


class Executor:
    """Strategy interface: stream ``(index, fragment)`` for each point.

    Implementations may complete points in any order; callers
    reassemble by ``point.index``.  ``describe()`` labels artifacts
    and status output."""

    def run(
        self, spec: ExperimentSpec, points: Sequence[Point], scale: float
    ) -> Iterator[Fragment]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class SerialExecutor(Executor):
    """In-process execution, one point at a time, in submission order."""

    def run(
        self, spec: ExperimentSpec, points: Sequence[Point], scale: float
    ) -> Iterator[Fragment]:
        for point in points:
            yield point.index, execute_point(spec, point, scale)

    def describe(self) -> str:
        return "serial"


# ----------------------------------------------------------------------
# multiprocessing pool
# ----------------------------------------------------------------------

#: Spec handed to pool workers via the initializer (inherited directly
#: under the ``fork`` start method, so closures in ``point_fn`` work).
_WORKER_SPEC: Optional[ExperimentSpec] = None


def _init_worker(spec: ExperimentSpec) -> None:
    global _WORKER_SPEC
    _WORKER_SPEC = spec


def _pool_entry(payload: Tuple[Point, float]) -> Tuple[int, Dict[str, Any]]:
    point, scale = payload
    assert _WORKER_SPEC is not None, "pool initializer did not run"
    return point.index, execute_point(_WORKER_SPEC, point, scale)


def _fork_or_spawn() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class PoolExecutor(Executor):
    """``multiprocessing`` pool on this host.

    Fragments stream back in submission order (``imap``), so a crash
    mid-sweep leaves a journal holding exactly the completed prefix
    plus whatever later points happened to finish first in their
    worker."""

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run(
        self, spec: ExperimentSpec, points: Sequence[Point], scale: float
    ) -> Iterator[Fragment]:
        if not points:
            return
        if self.jobs == 1 or len(points) == 1:
            yield from SerialExecutor().run(spec, points, scale)
            return
        ctx = _fork_or_spawn()
        workers = min(self.jobs, len(points))
        with ctx.Pool(
            processes=workers, initializer=_init_worker, initargs=(spec,)
        ) as pool:
            payloads = [(p, scale) for p in points]
            for index, fragment in pool.imap(_pool_entry, payloads):
                yield index, fragment

    def describe(self) -> str:
        return f"pool:{self.jobs}"


# ----------------------------------------------------------------------
# multi-host worker fan-out
# ----------------------------------------------------------------------

#: Default worker invocation: this interpreter, the worker module.
DEFAULT_WORKER_COMMAND = "{python} -m repro.experiments.worker"


def spec_ref(spec: ExperimentSpec) -> str:
    """A worker-resolvable reference for ``spec``: its registry name.

    Workers are separate processes (possibly on other hosts), so they
    cannot receive ``point_fn`` closures; they re-resolve the spec
    from :mod:`repro.experiments.registry` (built-ins load
    automatically) or from a ``module:attr`` path."""
    return spec.name


def resolve_spec(ref: str) -> ExperimentSpec:
    """Resolve a spec reference: ``module:attr`` or a registry name."""
    if ":" in ref:
        module_name, attr = ref.split(":", 1)
        module = importlib.import_module(module_name)
        spec = getattr(module, attr)
        if not isinstance(spec, ExperimentSpec):
            raise ConfigError(f"{ref!r} is not an ExperimentSpec")
        return spec
    from repro.experiments import registry

    return registry.get(ref)


class SubprocessExecutor(Executor):
    """Ship pickled points to worker processes and stream fragments back.

    Each worker is launched from ``command`` (a shell-style template;
    ``{python}`` expands to :data:`sys.executable`).  The default runs
    local subprocesses — two of them already exercise the full
    multi-host protocol — while e.g. ``"ssh build2 python3 -m
    repro.experiments.worker"`` fans the same protocol out to another
    machine (the remote side needs the repo importable).

    Points are dealt round-robin into one chunk per worker, each chunk
    is sent as one pickled payload on the worker's stdin, and workers
    write one JSON line per completed point to stdout (fragments
    base64-pickled so value types survive transport exactly).  The
    spec itself never crosses the wire: workers re-resolve it by
    *reference* — the registry name, or ``module:attr`` for specs
    living outside the registry (set ``ref`` explicitly for those).
    """

    def __init__(
        self,
        workers: int = 2,
        command: Optional[str] = None,
        ref: Optional[str] = None,
        env: Optional[Mapping[str, str]] = None,
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.command = command or DEFAULT_WORKER_COMMAND
        self.ref = ref
        self.env = dict(env) if env is not None else None

    # ------------------------------------------------------------------
    def _argv(self) -> List[str]:
        return [
            part.replace("{python}", sys.executable)
            for part in shlex.split(self.command)
        ]

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        if self.env:
            env.update(self.env)
        # Local workers must be able to import repro even when the
        # parent was launched via PYTHONPATH=src: propagate the
        # package root explicitly.
        pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        path = env.get("PYTHONPATH", "")
        parts = path.split(os.pathsep) if path else []
        if pkg_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join([pkg_root, *parts])
        return env

    def run(
        self, spec: ExperimentSpec, points: Sequence[Point], scale: float
    ) -> Iterator[Fragment]:
        if not points:
            return
        ref = self.ref or spec_ref(spec)
        chunks: List[List[Point]] = [[] for _ in range(min(self.workers, len(points)))]
        for i, point in enumerate(points):
            chunks[i % len(chunks)].append(point)

        results: "queue.Queue[Any]" = queue.Queue()
        argv, env = self._argv(), self._worker_env()
        procs: List[subprocess.Popen] = []
        readers: List[threading.Thread] = []
        expected = len(points)
        try:
            for chunk in chunks:
                payload = pickle.dumps(
                    {"ref": ref, "scale": scale, "points": chunk}
                )
                proc = subprocess.Popen(
                    argv,
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    env=env,
                )
                procs.append(proc)
                thread = threading.Thread(
                    target=_feed_and_read,
                    args=(proc, payload, len(chunk), results),
                )
                thread.daemon = True
                thread.start()
                readers.append(thread)
            received = 0
            while received < expected:
                item = results.get()
                if isinstance(item, WorkerError):
                    raise ConfigError(str(item))
                index, blob = item
                yield index, pickle.loads(base64.b64decode(blob))
                received += 1
            for thread in readers:
                thread.join()
            for proc in procs:
                if proc.wait() != 0:
                    raise ConfigError(
                        f"campaign worker {argv!r} exited with {proc.returncode}"
                    )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

    def describe(self) -> str:
        return f"workers:{self.workers}"


class WorkerError(Exception):
    """A worker reported a point failure or died mid-stream."""


def _feed_and_read(
    proc: subprocess.Popen,
    payload: bytes,
    expected: int,
    results: "queue.Queue[Any]",
) -> None:
    """Write one pickled payload, then relay the worker's JSON lines."""
    import json

    seen = 0
    try:
        assert proc.stdin is not None and proc.stdout is not None
        proc.stdin.write(payload)
        proc.stdin.close()
        for raw in proc.stdout:
            line = raw.decode().strip()
            if not line:
                continue
            msg = json.loads(line)
            if "error" in msg:
                results.put(WorkerError(msg["error"]))
                return
            results.put((msg["index"], msg["data"]))
            seen += 1
        if seen < expected:
            code = proc.wait()
            results.put(
                WorkerError(
                    f"worker exited (code {code}) after {seen}/{expected} points"
                )
            )
    except Exception as exc:  # relay instead of dying silently
        results.put(WorkerError(f"worker stream failed after {seen} points: {exc}"))


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------


def make_executor(
    kind: str = "serial",
    jobs: int = 1,
    workers: int = 2,
    command: Optional[str] = None,
    ref: Optional[str] = None,
) -> Executor:
    """Build an executor from CLI-ish knobs.

    ``kind`` is one of ``serial``, ``pool``, ``workers``.  As a
    convenience, ``kind='serial'`` with ``jobs > 1`` upgrades to a
    pool — that keeps ``--jobs N`` meaning what it always meant."""
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if kind == "serial":
        return PoolExecutor(jobs) if jobs > 1 else SerialExecutor()
    if kind == "pool":
        return PoolExecutor(jobs)
    if kind == "workers":
        return SubprocessExecutor(workers=workers, command=command, ref=ref)
    raise ConfigError(
        f"unknown executor {kind!r}; expected serial, pool, or workers"
    )

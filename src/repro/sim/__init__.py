"""Discrete-event simulation kernel.

A minimal, fast, generator-based DES in the style of SimPy: processes
are Python generators that yield :class:`Event` objects (timeouts,
plain events, other processes) and are resumed when those events
trigger.  A cheap callback API (`Simulator.call_later`) serves hot
paths where full process semantics would be wasteful.
"""

from repro.sim.engine import Event, Interrupt, Process, Simulator, Timeout
from repro.sim.resources import BandwidthServer, FifoResource, MultiChannel
from repro.sim.stats import Breakdown, Counter, Samples, ThroughputMeter

__all__ = [
    "BandwidthServer",
    "Breakdown",
    "Counter",
    "Event",
    "FifoResource",
    "Interrupt",
    "MultiChannel",
    "Process",
    "Samples",
    "Simulator",
    "ThroughputMeter",
    "Timeout",
]

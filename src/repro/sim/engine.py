"""Event loop, events, and generator-based processes.

Two interchangeable schedulers back the loop:

* The default **calendar scheduler** exploits the near-future event
  pattern of RPC and transfer completions: zero-delay callbacks (event
  dispatch, process starts) ride a FIFO *immediate lane* with no
  ordering work at all, short delays land in a sorted *near window*,
  and everything past the adaptive horizon sits unsorted in a *far
  bucket* that is batch-sorted into the near window when the horizon
  advances.
* The legacy **binary-heap scheduler** (``REPRO_SIM_SCHEDULER=heap`` or
  ``Simulator(scheduler="heap")``) is kept for one release as the
  determinism reference.

Both dispatch strictly in ``(time, sequence)`` order, so the same seeds
produce the same event order — and byte-identical sweep artifacts —
under either implementation (pinned by
``tests/test_engine_determinism.py``).
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right, insort
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    ``triggered`` means the outcome (value) has been decided and
    dispatch is scheduled; ``dispatched`` means callbacks have run.
    Callbacks added before dispatch are queued; callbacks added after
    dispatch run on the next loop iteration.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_triggered", "_dispatched")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # None (no subscribers), a single callable (the overwhelmingly
        # common case: one waiter per event), or a list of callables.
        self._callbacks: Any = None
        self._value: Any = None
        self._triggered = False
        self._dispatched = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._dispatched:
            # Late subscribers run immediately (still inside the loop).
            self.sim.call_later(0.0, lambda: fn(self))
            return
        cbs = self._callbacks
        if cbs is None:
            self._callbacks = fn
        elif type(cbs) is list:
            cbs.append(fn)
        else:
            self._callbacks = [cbs, fn]

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger this event ``delay`` ns from now (default: now)."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        if delay == 0.0:
            self.sim.call_soon(self._dispatch)
        else:
            self.sim.call_later(delay, self._dispatch)
        return self

    def _dispatch(self) -> None:
        self._dispatched = True
        cbs = self._callbacks
        self._callbacks = None
        if cbs is None:
            return
        if type(cbs) is list:
            for fn in cbs:
                fn(self)
        else:
            cbs(self)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        # Fields set directly (not via Event.__init__): timeouts are
        # the most-allocated event type on the hot path.
        self.sim = sim
        self._callbacks = None
        self._value = value
        self._triggered = True
        self._dispatched = False
        sim.call_later(delay, self._dispatch)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Drives a generator; itself an event that triggers on return."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        sim.call_later(0.0, self._step, None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None:
            self._waiting_on = None
        self.sim.call_later(0.0, self._step, None, Interrupt(cause))

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (e.g. interrupted while waiting)
        self._waiting_on = None
        self._step(event.value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when all child events have triggered.

    The barrier's value is the list of child event values in *trigger*
    order (the order the children completed, not construction order);
    an empty barrier triggers immediately with ``[]``.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = []
        if not events:
            self.succeed([])
            return
        for ev in events:
            ev.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        self._values.append(event.value)
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed(self._values)


#: A scheduled callback: ``[when, seq, fn, args]``.  ``fn`` is set to
#: ``None`` on cancellation; the entry stays in the scheduler until the
#: run loop (or a compaction) reaps it.  (The calendar scheduler's near
#: lane stores ``when``/``seq`` negated; handles are opaque either way.)
ScheduledCall = list

#: Compaction policy: rebuild the pending set once at least this many
#: entries are cancelled *and* they make up at least half of it.  The
#: floor keeps tiny sims from compacting constantly; the ratio bounds
#: scheduler size at ~2x the live entries, so long soaks that
#: schedule-and-cancel (RPC watchdogs, lease timers) cannot grow the
#: pending set without bound.
_COMPACT_MIN_CANCELLED = 64

#: Env var selecting the default scheduler implementation.
SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"

#: Env var selecting the block-stream kernel: ``batched`` (default)
#: schedules whole runs of per-block callbacks through
#: :meth:`Simulator.schedule_batch`; ``stepwise`` keeps the original
#: one-``call_at``-per-block path as the determinism reference (the
#: same pattern as the heap-vs-calendar scheduler switch).
BLOCKS_ENV = "REPRO_SIM_BLOCKS"


def block_mode() -> str:
    """The configured block-stream mode: ``batched`` or ``stepwise``.

    Read once at component construction (nodes, R2P2 engines), so a
    simulation never changes mode mid-flight."""
    mode = os.environ.get(BLOCKS_ENV, "batched")
    if mode not in ("batched", "stepwise"):
        raise SimulationError(
            f"unknown block mode {mode!r}; use 'batched' or 'stepwise'"
        )
    return mode

#: Calendar tuning: starting near-window width (ns) and the refill
#: batch sizes that widen/narrow it.  Pure throughput knobs — the
#: dispatch order is (time, seq) regardless, so these never affect
#: simulation results.
_NEAR_WINDOW_START_NS = 256.0
_REFILL_TOO_BIG = 256
_REFILL_TOO_SMALL = 16

#: When set to a list, every new :class:`Simulator` appends itself here.
#: The perf-benchmark harness (:mod:`repro.perf.bench`) uses this to
#: aggregate event counts across all simulators a scenario builds; it is
#: ``None`` (one pointer check per Simulator construction) otherwise.
TRACKED_SIMULATORS: Optional[list] = None


class Simulator:
    """The event loop.  Time is in nanoseconds.

    This is the calendar scheduler.  Pending callbacks live in one of
    three lanes, all holding ``[when, seq, fn]`` entries and together
    dispatching in strict ``(when, seq)`` order:

    * ``_imm`` — zero-delay callbacks, a plain FIFO deque.  Because
      simulation time and the sequence counter are both non-decreasing,
      the deque is already sorted by ``(when, seq)``; scheduling and
      consuming cost no comparisons at all.
    * ``_near`` — callbacks due before ``_horizon``, kept sorted on
      *negated* ``(-when, -seq)`` keys so the next entry to fire sits at
      the list **end**: consuming is an O(1) ``pop()``, and the
      dominant insert pattern (a delay that fires soon) lands near the
      end too, so ``insort`` barely moves memory.
    * ``_far`` — everything at or past the horizon, unsorted, appended
      in O(1).  When the near window drains, a batch of the earliest
      far entries is moved over and sorted once (C timsort), and the
      window width adapts toward a target batch size.

    All three lanes mutate **in place** (never rebound), so the run
    loop can hold direct references across callbacks that schedule,
    cancel, or compact.

    ``Simulator(scheduler="heap")`` — or ``REPRO_SIM_SCHEDULER=heap`` —
    constructs the legacy binary-heap implementation instead.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_running",
        "_cancelled",
        "compactions",
        "events_fired",
        "events_cancelled",
        "_imm",
        "_near",
        "_far",
        "_horizon",
        "_width",
    )

    def __new__(cls, scheduler: Optional[str] = None) -> "Simulator":
        if cls is Simulator:
            chosen = scheduler or os.environ.get(SCHEDULER_ENV, "calendar")
            if chosen == "heap":
                return object.__new__(_HeapSimulator)
            if chosen != "calendar":
                raise SimulationError(
                    f"unknown scheduler {chosen!r}; use 'calendar' or 'heap'"
                )
        return object.__new__(cls)

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._cancelled = 0
        self.compactions = 0
        self.events_fired = 0
        #: Monotonic count of :meth:`cancel_call` cancellations — unlike
        #: ``_cancelled`` (pending tombstones) this never decreases, so
        #: the perf harness can explain ``events_scheduled`` vs
        #: ``events_fired`` divergence in cancellation-heavy scenarios.
        self.events_cancelled = 0
        self._imm: deque[ScheduledCall] = deque()
        self._near: list[ScheduledCall] = []
        self._far: list[ScheduledCall] = []
        self._horizon = 0.0
        self._width = _NEAR_WINDOW_START_NS
        if TRACKED_SIMULATORS is not None:
            TRACKED_SIMULATORS.append(self)

    @property
    def now(self) -> float:
        return self._now

    @property
    def scheduler(self) -> str:
        """Which scheduler implementation backs this simulator."""
        return "calendar"

    @property
    def events_scheduled(self) -> int:
        """Total callbacks ever scheduled on this simulator."""
        return self._seq

    # -- scheduling -----------------------------------------------------
    def call_later(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> ScheduledCall:
        """Run ``fn(*args)`` at ``now + delay``; FIFO among equal times.

        Passing ``args`` positionally avoids a closure allocation per
        scheduled call — the hot paths (packet delivery, block-read
        completions) schedule bound methods with their arguments.
        Returns the scheduled-call handle; pass it to
        :meth:`cancel_call` to cancel before it fires."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq = seq = self._seq + 1
        when = self._now + delay
        if delay == 0.0:
            entry: ScheduledCall = [when, seq, fn, args]
            self._imm.append(entry)
        elif when < self._horizon:
            # Near entries carry negated keys (see the class docstring).
            entry = [-when, -seq, fn, args]
            near = self._near
            # Soonest-yet entries (the common completion pattern) sort
            # to the very end: plain append instead of a bisect.
            if near and entry > near[-1]:
                near.append(entry)
            else:
                insort(near, entry)
        else:
            entry = [when, seq, fn, args]
            self._far.append(entry)
        return entry

    def call_at(
        self, when: float, fn: Callable[..., None], *args: Any
    ) -> ScheduledCall:
        now = self._now
        if when < now:
            raise SimulationError(f"cannot schedule in the past: {when}")
        # Same arithmetic as call_later (now + (when - now)): the two
        # entry points must produce bit-identical times.
        when = now + (when - now)
        self._seq = seq = self._seq + 1
        if when == now:
            entry: ScheduledCall = [when, seq, fn, args]
            self._imm.append(entry)
        elif when < self._horizon:
            entry = [-when, -seq, fn, args]
            near = self._near
            if near and entry > near[-1]:
                near.append(entry)
            else:
                insort(near, entry)
        else:
            entry = [when, seq, fn, args]
            self._far.append(entry)
        return entry

    def call_soon(
        self, fn: Callable[..., None], *args: Any
    ) -> ScheduledCall:
        """``call_later(0.0, fn, *args)`` without the delay plumbing —
        the immediate-lane fast path for event dispatch."""
        self._seq = seq = self._seq + 1
        entry: ScheduledCall = [self._now, seq, fn, args]
        self._imm.append(entry)
        return entry

    def schedule_batch(self, entries: list) -> list:
        """Bulk-inject a run of ``(when, fn, args)`` callbacks.

        Exactly equivalent to issuing one :meth:`call_at` per entry, in
        order, from the current callback — same time normalization,
        same consecutive sequence numbers, same lane placement — minus
        the per-call overhead.  This is the batched block-stream
        kernel's primitive: a transfer's unroll or issue burst computes
        its per-block timestamps in one pass (they are presorted and
        consecutive by construction) and lands here as one injection.

        Returns the scheduled-call handles, in entry order.
        """
        now = self._now
        seq = self._seq
        imm = self._imm
        near = self._near
        far = self._far
        horizon = self._horizon
        handles = []
        append_handle = handles.append
        n = len(entries)
        i = 0
        while i < n:
            when, fn, args = entries[i]
            if when < now:
                self._seq = seq
                raise SimulationError(f"cannot schedule in the past: {when}")
            # Same arithmetic as call_later (now + (when - now)): every
            # entry point must produce bit-identical times.
            when = now + (when - now)
            seq += 1
            i += 1
            if when == now:
                entry: ScheduledCall = [when, seq, fn, args]
                imm.append(entry)
                append_handle(entry)
                continue
            if when >= horizon:
                entry = [when, seq, fn, args]
                far.append(entry)
                append_handle(entry)
                continue
            entry = [-when, -seq, fn, args]
            if not near or entry > near[-1]:
                near.append(entry)
                append_handle(entry)
                continue
            # Sorted-run splice: batch entries are presorted by (when,
            # seq), so in the near lane's negated keys each subsequent
            # entry sorts at or before this one's insertion point.  As
            # long as they stay *inside the same gap* between existing
            # entries, the whole run goes in with one list splice
            # instead of one insort (bisect + memmove) per entry.  The
            # lane contents end up identical to sequential insorts.
            pos = bisect_right(near, entry)
            lower = near[pos - 1] if pos else None
            run = [entry]
            append_handle(entry)
            while i < n:
                when2, fn2, args2 = entries[i]
                if when2 < now:
                    near[pos:pos] = run[::-1]
                    self._seq = seq
                    raise SimulationError(
                        f"cannot schedule in the past: {when2}"
                    )
                when2 = now + (when2 - now)
                if when2 == now or when2 >= horizon:
                    break
                e2: ScheduledCall = [-when2, -(seq + 1), fn2, args2]
                if not e2 < run[-1]:
                    break  # out-of-order input: general path re-handles it
                if lower is not None and not e2 > lower:
                    break  # leaves the gap: general path re-handles it
                seq += 1
                i += 1
                run.append(e2)
                append_handle(e2)
            near[pos:pos] = run[::-1]
        self._seq = seq
        return handles

    def cancel_call(self, handle: ScheduledCall) -> None:
        """Cancel a scheduled callback (no-op if it already ran or was
        already cancelled).  Cancelled entries are reaped lazily; once
        enough accumulate the pending set is compacted in place, so its
        size stays proportional to *live* entries even in soaks that
        cancel most of what they schedule."""
        if handle[2] is None:
            return
        handle[2] = None
        self._cancelled += 1
        self.events_cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= self.heap_size
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every lane, in place (the run
        loop holds references to the lane containers)."""
        live_imm = [e for e in self._imm if e[2] is not None]
        self._imm.clear()
        self._imm.extend(live_imm)
        self._near[:] = [e for e in self._near if e[2] is not None]
        self._far[:] = [e for e in self._far if e[2] is not None]
        self._cancelled = 0
        self.compactions += 1

    @property
    def heap_size(self) -> int:
        """Total pending entries, including not-yet-reaped
        cancellations (named for the original heap scheduler; it is the
        pending-set size under either implementation)."""
        return len(self._imm) + len(self._near) + len(self._far)

    @property
    def live_calls(self) -> int:
        """Scheduled callbacks that will actually run."""
        return self.heap_size - self._cancelled

    # -- event / process factories ---------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- calendar internals ----------------------------------------------
    def _refill(self) -> bool:
        """Advance the horizon: move the earliest batch of far entries
        into the (drained) near window and sort it once.  Returns False
        when no live far entries remain."""
        far = self._far
        earliest = None
        for e in far:
            if e[2] is not None and (earliest is None or e[0] < earliest):
                earliest = e[0]
        if earliest is None:
            # Only cancelled residue (if anything): reap it.
            if far:
                self._cancelled -= len(far)
                del far[:]
            return False
        cutoff = earliest + self._width
        # Inclusive bound: with earliest at float('inf') (or so large
        # that adding the width is lost to rounding) cutoff == earliest
        # and a strict '<' would move nothing, spinning the run loop on
        # refill forever.  '<=' always moves at least the minimum.
        moved: list[ScheduledCall] = []
        keep: list[ScheduledCall] = []
        for e in far:
            if e[2] is None:
                self._cancelled -= 1
            elif e[0] <= cutoff:
                e[0] = -e[0]  # flip to the near lane's negated keys
                e[1] = -e[1]
                moved.append(e)
            else:
                keep.append(e)
        self._far[:] = keep
        moved.sort()
        self._near[:] = moved
        self._horizon = cutoff
        # Adapt the window toward the target batch size.
        if len(moved) > _REFILL_TOO_BIG:
            self._width = max(self._width * 0.5, 1e-3)
        elif len(moved) < _REFILL_TOO_SMALL:
            self._width = min(self._width * 2.0, 1e15)
        return True

    # -- execution --------------------------------------------------------
    def run(self, until: float = float("inf")) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        if until < self._now:
            # Running "until" a past time is a no-op; silently moving
            # the clock backwards would corrupt the immediate lane's
            # sorted-by-construction invariant.
            return self._now
        self._running = True
        fired = 0
        # The lane containers only ever mutate in place, so these
        # references stay valid across compactions and refills.
        imm = self._imm
        near = self._near
        pop_imm = imm.popleft
        pop_near = near.pop
        try:
            while True:
                # Reap cancelled lane heads (next-to-fire positions).
                while near and near[-1][2] is None:
                    pop_near()
                    self._cancelled -= 1
                while imm and imm[0][2] is None:
                    pop_imm()
                    self._cancelled -= 1
                if near:
                    entry = near[-1]
                    when = -entry[0]
                    if imm:
                        head = imm[0]
                        hw = head[0]
                        # Strict (when, seq) order across lanes.
                        if hw < when or (hw == when and head[1] < -entry[1]):
                            entry = head
                            when = hw
                            if when > until:
                                self._now = until
                                break
                            pop_imm()
                        else:
                            if when > until:
                                self._now = until
                                break
                            pop_near()
                    else:
                        if when > until:
                            self._now = until
                            break
                        pop_near()
                elif imm:
                    entry = imm[0]
                    when = entry[0]
                    if when > until:
                        self._now = until
                        break
                    pop_imm()
                else:
                    if self._refill():
                        continue
                    if until != float("inf"):
                        self._now = until
                    break
                fn = entry[2]
                # Mark consumed so a late cancel_call on this handle is
                # a clean no-op instead of skewing the cancelled count.
                entry[2] = None
                self._now = when
                fired += 1
                args = entry[3]
                if args:
                    fn(*args)
                else:
                    fn()
        finally:
            self._running = False
            self.events_fired += fired
        return self._now

    def peek(self) -> float:
        """Time of the next *live* scheduled callback (inf if none)."""
        imm = self._imm
        while imm and imm[0][2] is None:
            imm.popleft()
            self._cancelled -= 1
        near = self._near
        while near and near[-1][2] is None:
            near.pop()
            self._cancelled -= 1
        best = float("inf")
        if imm:
            best = imm[0][0]
        if near and -near[-1][0] < best:
            best = -near[-1][0]
        for e in self._far:
            if e[2] is not None and e[0] < best:
                best = e[0]
        return best


class _HeapSimulator(Simulator):
    """The original global binary-heap scheduler, kept (for one
    release) as the determinism reference behind
    ``REPRO_SIM_SCHEDULER=heap`` / ``Simulator(scheduler="heap")``."""

    __slots__ = ("_heap",)

    def __init__(self, scheduler: Optional[str] = None) -> None:
        super().__init__()
        self._heap: list[ScheduledCall] = []

    @property
    def scheduler(self) -> str:
        return "heap"

    # -- scheduling -----------------------------------------------------
    def call_later(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> ScheduledCall:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        entry: ScheduledCall = [self._now + delay, self._seq, fn, args]
        heapq.heappush(self._heap, entry)
        return entry

    def call_at(
        self, when: float, fn: Callable[..., None], *args: Any
    ) -> ScheduledCall:
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when}")
        return self.call_later(when - self._now, fn, *args)

    def call_soon(
        self, fn: Callable[..., None], *args: Any
    ) -> ScheduledCall:
        return self.call_later(0.0, fn, *args)

    def schedule_batch(self, entries: list) -> list:
        """Reference implementation: one heap push per entry, with the
        exact time normalization and sequence numbering of
        :meth:`call_at`."""
        handles = []
        now = self._now
        heap = self._heap
        for when, fn, args in entries:
            if when < now:
                raise SimulationError(f"cannot schedule in the past: {when}")
            self._seq += 1
            entry: ScheduledCall = [now + (when - now), self._seq, fn, args]
            heapq.heappush(heap, entry)
            handles.append(entry)
        return handles

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (the run
        loop holds a reference to the heap list)."""
        self._heap[:] = [e for e in self._heap if e[2] is not None]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    @property
    def heap_size(self) -> int:
        return len(self._heap)

    # -- execution --------------------------------------------------------
    def run(self, until: float = float("inf")) -> float:
        if self._running:
            raise SimulationError("simulator is already running")
        if until < self._now:
            return self._now  # no-op, as on the calendar scheduler
        self._running = True
        try:
            heap = self._heap
            while heap:
                entry = heap[0]
                when, _seq, fn, args = entry
                if fn is None:  # cancelled: reap and keep going
                    heapq.heappop(heap)
                    self._cancelled -= 1
                    continue
                if when > until:
                    self._now = until
                    break
                heapq.heappop(heap)
                # Mark consumed so a late cancel_call on this handle is
                # a clean no-op instead of skewing the cancelled count.
                entry[2] = None
                self._now = when
                self.events_fired += 1
                if args:
                    fn(*args)
                else:
                    fn()
            else:
                if until != float("inf"):
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> float:
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else float("inf")

"""Event loop, events, and generator-based processes."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    ``triggered`` means the outcome (value) has been decided and
    dispatch is scheduled; ``dispatched`` means callbacks have run.
    Callbacks added before dispatch are queued; callbacks added after
    dispatch run on the next loop iteration.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_triggered", "_dispatched")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._dispatched = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._dispatched:
            # Late subscribers run immediately (still inside the loop).
            self.sim.call_later(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger this event ``delay`` ns from now (default: now)."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim.call_later(delay, self._dispatch)
        return self

    def _dispatch(self) -> None:
        self._dispatched = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim.call_later(delay, self._dispatch)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Drives a generator; itself an event that triggers on return."""

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        sim.call_later(0.0, lambda: self._step(None, None))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self._triggered:
            return
        target = self._waiting_on
        if target is not None:
            self._waiting_on = None
        self.sim.call_later(0.0, lambda: self._step(None, Interrupt(cause)))

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (e.g. interrupted while waiting)
        self._waiting_on = None
        self._step(event.value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Triggers when all child events have triggered.

    The barrier's value is the list of child event values in *trigger*
    order (the order the children completed, not construction order);
    an empty barrier triggers immediately with ``[]``.
    """

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = []
        if not events:
            self.succeed([])
            return
        for ev in events:
            ev.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        self._values.append(event.value)
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed(self._values)


#: A scheduled callback: ``[when, seq, fn]``.  ``fn`` is set to ``None``
#: on cancellation; the entry stays in the heap until the run loop (or a
#: compaction) reaps it.
ScheduledCall = list

#: Compaction policy: rebuild the heap once at least this many entries
#: are cancelled *and* they make up at least half the heap.  The floor
#: keeps tiny sims from compacting constantly; the ratio bounds heap
#: size at ~2x the live entries, so long soaks that schedule-and-cancel
#: (RPC watchdogs, lease timers) cannot grow the heap without bound.
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """The event loop.  Time is in nanoseconds."""

    __slots__ = ("_now", "_heap", "_seq", "_running", "_cancelled", "compactions")

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[ScheduledCall] = []
        self._seq = 0
        self._running = False
        self._cancelled = 0
        self.compactions = 0

    @property
    def now(self) -> float:
        return self._now

    # -- scheduling -----------------------------------------------------
    def call_later(self, delay: float, fn: Callable[[], None]) -> ScheduledCall:
        """Run ``fn()`` at ``now + delay``; FIFO among equal times.

        Returns the scheduled-call handle; pass it to
        :meth:`cancel_call` to cancel before it fires."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        entry: ScheduledCall = [self._now + delay, self._seq, fn]
        heapq.heappush(self._heap, entry)
        return entry

    def call_at(self, when: float, fn: Callable[[], None]) -> ScheduledCall:
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when}")
        return self.call_later(when - self._now, fn)

    def cancel_call(self, handle: ScheduledCall) -> None:
        """Cancel a scheduled callback (no-op if it already ran or was
        already cancelled).  Cancelled entries are reaped lazily; once
        enough accumulate the heap is compacted in place, so heap size
        stays proportional to *live* entries even in soaks that cancel
        most of what they schedule."""
        if handle[2] is None:
            return
        handle[2] = None
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (the run
        loop holds a reference to the heap list)."""
        self._heap[:] = [e for e in self._heap if e[2] is not None]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    @property
    def heap_size(self) -> int:
        """Total heap entries, including not-yet-reaped cancellations."""
        return len(self._heap)

    @property
    def live_calls(self) -> int:
        """Scheduled callbacks that will actually run."""
        return len(self._heap) - self._cancelled

    # -- event / process factories ---------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        return Process(self, gen)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution --------------------------------------------------------
    def run(self, until: float = float("inf")) -> float:
        """Run until the queue drains or simulated time reaches ``until``.

        Returns the simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            heap = self._heap
            while heap:
                entry = heap[0]
                when, _seq, fn = entry
                if fn is None:  # cancelled: reap and keep going
                    heapq.heappop(heap)
                    self._cancelled -= 1
                    continue
                if when > until:
                    self._now = until
                    break
                heapq.heappop(heap)
                # Mark consumed so a late cancel_call on this handle is
                # a clean no-op instead of skewing the cancelled count.
                entry[2] = None
                self._now = when
                fn()
            else:
                if until != float("inf"):
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> float:
        """Time of the next *live* scheduled callback (inf if none)."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else float("inf")

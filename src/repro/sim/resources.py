"""Contention models: FIFO token resources and bandwidth servers."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.common.errors import SimulationError
from repro.sim.engine import Event, Simulator


class FifoResource:
    """A counted resource with FIFO granting (like simpy.Resource).

    ``acquire()`` returns an event that triggers when a slot is granted;
    the holder must call ``release()`` exactly once per grant.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without matching acquire")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1


class BandwidthServer:
    """A serial channel: each request occupies the channel for
    ``nbytes / rate`` ns, FIFO.  O(1) per request and *one* event per
    completion, which keeps block-granularity simulation fast.

    ``request`` returns the absolute completion time; callers either
    schedule their own continuation or ask for an event.
    """

    __slots__ = ("sim", "rate", "name", "_next_free", "_busy_ns", "_bytes")

    def __init__(self, sim: Simulator, bytes_per_ns: float, name: str = ""):
        if bytes_per_ns <= 0:
            raise SimulationError(f"rate must be positive, got {bytes_per_ns}")
        self.sim = sim
        self.rate = bytes_per_ns
        self.name = name
        self._next_free = 0.0
        self._busy_ns = 0.0
        self._bytes = 0

    def request(self, nbytes: float, extra_latency: float = 0.0) -> float:
        """Occupy the channel for ``nbytes``; return completion time.

        ``extra_latency`` is tacked on *after* the channel is traversed
        (propagation) and does not occupy the channel.
        """
        # Inlined request_at(now, ...): this runs once per modeled
        # block/packet and the extra call shows up in profiles.
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        start = self.sim._now
        next_free = self._next_free
        if next_free > start:
            start = next_free
        service = nbytes / self.rate
        next_free = start + service
        self._next_free = next_free
        self._busy_ns += service
        self._bytes += nbytes
        return next_free + extra_latency

    def request_at(
        self, earliest: float, nbytes: float, extra_latency: float = 0.0
    ) -> float:
        """Like :meth:`request` but the transfer cannot start before
        ``earliest`` (e.g. the request message is still in flight)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        # Reads the simulator's private clock directly: this runs once
        # per modeled block/packet and the property indirection shows
        # up in profiles.
        start = self.sim._now
        if earliest > start:
            start = earliest
        next_free = self._next_free
        if next_free > start:
            start = next_free
        service = nbytes / self.rate
        next_free = start + service
        self._next_free = next_free
        self._busy_ns += service
        self._bytes += nbytes
        return next_free + extra_latency

    def request_event(self, nbytes: float, extra_latency: float = 0.0) -> Event:
        done_at = self.request(nbytes, extra_latency)
        ev = self.sim.event()
        ev.succeed(delay=done_at - self.sim.now)
        return ev

    @property
    def next_free(self) -> float:
        return self._next_free

    def utilization(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed_ns)

    @property
    def bytes_served(self) -> int:
        return int(self._bytes)


class MultiChannel:
    """A bank of parallel bandwidth servers with address interleaving.

    Models the 4-channel DDR4 memory system: consecutive cache blocks
    map to consecutive channels, so streaming reads spread across all
    channels (Table 2: 4 x 25.6 GBps).
    """

    __slots__ = ("interleave", "channels")

    def __init__(
        self,
        sim: Simulator,
        channels: int,
        bytes_per_ns_each: float,
        interleave_bytes: int = 64,
        name: str = "",
    ):
        if channels < 1:
            raise SimulationError(f"need >= 1 channel, got {channels}")
        self.interleave = interleave_bytes
        self.channels = [
            BandwidthServer(sim, bytes_per_ns_each, f"{name}[{i}]")
            for i in range(channels)
        ]

    def channel_for(self, addr: int) -> BandwidthServer:
        return self.channels[(addr // self.interleave) % len(self.channels)]

    def channel_index(self, addr: int) -> int:
        return (addr // self.interleave) % len(self.channels)

    def request(
        self, addr: int, nbytes: float, extra_latency: float = 0.0
    ) -> float:
        return self.channel_for(addr).request(nbytes, extra_latency)

    def least_loaded(self) -> BandwidthServer:
        return min(self.channels, key=lambda ch: ch.next_free)

    @property
    def bytes_served(self) -> int:
        return sum(ch.bytes_served for ch in self.channels)

    @property
    def total_rate(self) -> float:
        return sum(ch.rate for ch in self.channels)

"""Measurement utilities: samples, counters, throughput, breakdowns."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List


class Counter:
    """Named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


class Samples:
    """A collection of scalar samples with summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []

    def add(self, value: float) -> None:
        self._values.append(value)

    def extend(self, values: Iterable[float]) -> None:
        self._values.extend(values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return math.nan
        return sum(self._values) / len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def percentile(self, p: float) -> float:
        if not self._values:
            return math.nan
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def max(self) -> float:
        return max(self._values) if self._values else math.nan

    @property
    def min(self) -> float:
        return min(self._values) if self._values else math.nan


class ThroughputMeter:
    """Accumulates bytes (or ops) over a measurement window."""

    def __init__(self) -> None:
        self._bytes = 0
        self._ops = 0
        self._window_start = 0.0
        self._window_end = 0.0
        self._recording = False

    def start(self, now: float) -> None:
        self._recording = True
        self._window_start = now
        self._bytes = 0
        self._ops = 0

    def stop(self, now: float) -> None:
        self._recording = False
        self._window_end = now

    def record(self, nbytes: int) -> None:
        if self._recording:
            self._bytes += nbytes
            self._ops += 1

    @property
    def elapsed_ns(self) -> float:
        return max(0.0, self._window_end - self._window_start)

    @property
    def bytes_total(self) -> int:
        return self._bytes

    @property
    def ops_total(self) -> int:
        return self._ops

    @property
    def gbps(self) -> float:
        """Goodput in GB/s (bytes per ns == GB/s)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self._bytes / self.elapsed_ns

    @property
    def mops(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self._ops / self.elapsed_ns * 1e3

    def absorb(self, other: "ThroughputMeter") -> None:
        """Fold another (stopped) meter's measurements into this one:
        totals add, and the window becomes the union of both windows —
        exact when the meters shared a measurement window, as parallel
        readers metered by one process do."""
        self._bytes += other._bytes
        self._ops += other._ops
        if other._window_end > other._window_start:
            if self._window_end <= self._window_start:
                self._window_start = other._window_start
                self._window_end = other._window_end
            else:
                self._window_start = min(self._window_start, other._window_start)
                self._window_end = max(self._window_end, other._window_end)


class Breakdown:
    """Accumulates named latency components across operations, for the
    paper's stacked-bar figures (Figs. 1 and 9a)."""

    def __init__(self, components: Iterable[str]):
        self.components = list(components)
        self._samples: Dict[str, Samples] = {
            c: Samples(c) for c in self.components
        }

    def add(self, component: str, value: float) -> None:
        if component not in self._samples:
            raise KeyError(f"unknown component {component!r}")
        self._samples[component].add(value)

    def add_op(self, **values: float) -> None:
        for name, value in values.items():
            self.add(name, value)

    def mean(self, component: str) -> float:
        return self._samples[component].mean

    def means(self) -> Dict[str, float]:
        return {c: self._samples[c].mean for c in self.components}

    @property
    def total_mean(self) -> float:
        means = [m for m in self.means().values() if not math.isnan(m)]
        return sum(means)

    def share(self, component: str) -> float:
        total = self.total_mean
        if total <= 0:
            return math.nan
        return self.mean(component) / total

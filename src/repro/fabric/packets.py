"""soNUMA transport packets.

The original soNUMA protocol has cache-block-sized read/write requests
and replies (source unrolling, §5).  SABRes add two packet types (§5.2):
the *registration* packet that precedes a SABRe's data requests and
carries the total size, and the *validation* packet, the final
payload-free reply carrying atomicity success/failure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.common.units import CACHE_BLOCK


class PacketKind(Enum):
    READ_REQUEST = "read_request"
    READ_REPLY = "read_reply"
    SABRE_REGISTRATION = "sabre_registration"
    SABRE_REQUEST = "sabre_request"
    SABRE_REPLY = "sabre_reply"
    SABRE_VALIDATION = "sabre_validation"
    RPC_SEND = "rpc_send"
    RPC_REPLY = "rpc_reply"
    WRITE_REQUEST = "write_request"
    WRITE_ACK = "write_ack"
    CAS_REQUEST = "cas_request"
    CAS_REPLY = "cas_reply"


#: NI routing classes, precomputed as plain member attributes so the
#: per-packet dispatch (one of the hottest paths in the simulator) is an
#: int compare instead of a frozenset probe through Enum.__hash__.
ROUTE_REQUEST, ROUTE_REPLY, ROUTE_RPC = 0, 1, 2

for _kind, _route, _rep in (
    (PacketKind.READ_REQUEST, ROUTE_REQUEST, False),
    (PacketKind.SABRE_REGISTRATION, ROUTE_REQUEST, False),
    (PacketKind.SABRE_REQUEST, ROUTE_REQUEST, False),
    (PacketKind.WRITE_REQUEST, ROUTE_REQUEST, False),
    (PacketKind.CAS_REQUEST, ROUTE_REQUEST, False),
    (PacketKind.READ_REPLY, ROUTE_REPLY, True),
    (PacketKind.SABRE_REPLY, ROUTE_REPLY, True),
    (PacketKind.SABRE_VALIDATION, ROUTE_REPLY, True),
    (PacketKind.WRITE_ACK, ROUTE_REPLY, True),
    (PacketKind.CAS_REPLY, ROUTE_REPLY, True),
    (PacketKind.RPC_SEND, ROUTE_RPC, False),
    (PacketKind.RPC_REPLY, ROUTE_RPC, True),
):
    _kind.route = _route
    _kind.reply_kind = _rep
del _kind, _route, _rep


_packet_seq = itertools.count()


@dataclass(slots=True)
class Packet:
    """One fabric packet.

    ``transfer_id`` ties the packet to a transfer; ``block_offset`` is
    the cache-block index within the transfer for unrolled requests and
    replies.  ``payload`` carries real bytes for replies (and RPCs).
    """

    kind: PacketKind
    src_node: int
    dst_node: int
    transfer_id: int
    block_offset: int = 0
    size_bytes: int = 0
    payload: Optional[bytes] = None
    meta: dict[str, Any] = field(default_factory=dict)
    seq: int = field(default_factory=_packet_seq.__next__)

    def wire_bytes(self, header_bytes: int) -> int:
        """Total bytes this packet occupies on a link."""
        return header_bytes + self.size_bytes

    @property
    def is_reply(self) -> bool:
        return self.kind.reply_kind


def read_request(src: int, dst: int, transfer_id: int, block_offset: int) -> Packet:
    return Packet(
        PacketKind.READ_REQUEST, src, dst, transfer_id, block_offset, size_bytes=8
    )


def read_reply(
    src: int, dst: int, transfer_id: int, block_offset: int, payload: bytes
) -> Packet:
    return Packet(
        PacketKind.READ_REPLY,
        src,
        dst,
        transfer_id,
        block_offset,
        size_bytes=len(payload),
        payload=payload,
    )


def sabre_registration(
    src: int, dst: int, transfer_id: int, total_blocks: int
) -> Packet:
    return Packet(
        PacketKind.SABRE_REGISTRATION,
        src,
        dst,
        transfer_id,
        size_bytes=8,
        meta={"total_blocks": total_blocks},
    )


def sabre_request(src: int, dst: int, transfer_id: int, block_offset: int) -> Packet:
    return Packet(
        PacketKind.SABRE_REQUEST, src, dst, transfer_id, block_offset, size_bytes=8
    )


def sabre_reply(
    src: int, dst: int, transfer_id: int, block_offset: int, payload: bytes
) -> Packet:
    return Packet(
        PacketKind.SABRE_REPLY,
        src,
        dst,
        transfer_id,
        block_offset,
        size_bytes=len(payload),
        payload=payload,
    )


def sabre_validation(src: int, dst: int, transfer_id: int, success: bool) -> Packet:
    return Packet(
        PacketKind.SABRE_VALIDATION,
        src,
        dst,
        transfer_id,
        size_bytes=0,
        meta={"success": success},
    )


def block_payload_size(total_size: int, block_offset: int) -> int:
    """Payload bytes carried by the reply for block ``block_offset`` of a
    ``total_size``-byte transfer (the last block may be partial)."""
    remaining = total_size - block_offset * CACHE_BLOCK
    return max(0, min(CACHE_BLOCK, remaining))


def write_request(
    src: int, dst: int, transfer_id: int, block_offset: int, payload: bytes
) -> Packet:
    """One unrolled cache-block-sized one-sided write."""
    return Packet(
        PacketKind.WRITE_REQUEST,
        src,
        dst,
        transfer_id,
        block_offset,
        size_bytes=len(payload) + 8,
        payload=payload,
    )


def write_ack(src: int, dst: int, transfer_id: int, block_offset: int) -> Packet:
    return Packet(
        PacketKind.WRITE_ACK, src, dst, transfer_id, block_offset, size_bytes=0
    )


def cas_request(
    src: int, dst: int, transfer_id: int, addr: int, expected: int, desired: int
) -> Packet:
    """Remote compare-and-swap on a 64-bit word (cache-block atomic,
    the strongest primitive plain RDMA offers, §1)."""
    return Packet(
        PacketKind.CAS_REQUEST,
        src,
        dst,
        transfer_id,
        size_bytes=24,
        meta={"addr": addr, "expected": expected, "desired": desired},
    )


def cas_reply(
    src: int, dst: int, transfer_id: int, old_value: int, swapped: bool
) -> Packet:
    return Packet(
        PacketKind.CAS_REPLY,
        src,
        dst,
        transfer_id,
        size_bytes=8,
        meta={"old_value": old_value, "swapped": swapped},
    )

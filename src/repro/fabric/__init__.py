"""Inter-node network: packets, links, and the rack fabric (Table 2)."""

from repro.fabric.network import Fabric, Link
from repro.fabric.packets import Packet, PacketKind

__all__ = ["Fabric", "Link", "Packet", "PacketKind"]

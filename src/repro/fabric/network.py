"""Point-to-point lossless fabric between soNUMA nodes.

Table 2: fixed 35 ns latency per hop, 100 GBps links.  The evaluated
system is two directly connected nodes (one hop); larger topologies
route along a ring of nodes with one hop per traversed link, which is
enough for the paper's latency model ("fixed latency per hop").
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.config import FabricConfig
from repro.common.errors import ConfigError
from repro.fabric.packets import Packet
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthServer

PacketHandler = Callable[[Packet], None]


class Link:
    """One direction of a node-to-node link: serialization at the link
    bandwidth plus fixed propagation per hop."""

    __slots__ = ("sim", "cfg", "hops", "server", "packets_sent", "_floor_ns", "_header_bytes")

    def __init__(
        self, sim: Simulator, cfg: FabricConfig, hops: int = 1, name: str = ""
    ):
        if hops < 1:
            raise ConfigError(f"link needs >= 1 hop, got {hops}")
        self.sim = sim
        self.cfg = cfg
        self.hops = hops
        self.server = BandwidthServer(sim, cfg.link_gbps, name)
        self.packets_sent = 0
        self._floor_ns = hops * cfg.hop_latency_ns
        self._header_bytes = cfg.header_bytes

    def latency_floor_ns(self) -> float:
        return self._floor_ns

    def send(self, packet: Packet, deliver: PacketHandler) -> float:
        """Enqueue ``packet``; ``deliver`` runs at arrival time.

        Returns the arrival time.
        """
        self.packets_sent += 1
        wire = packet.wire_bytes(self._header_bytes)
        arrival = self.server.request(wire, self._floor_ns)
        self.sim.call_at(arrival, deliver, packet)
        return arrival


class Fabric:
    """All-pairs connectivity for a small rack of nodes.

    Each ordered node pair gets a dedicated link whose hop count is the
    ring distance between the nodes (2 nodes -> always 1 hop, matching
    the paper's directly-connected evaluation).
    """

    def __init__(self, sim: Simulator, cfg: FabricConfig, nodes: int):
        if nodes < 1:
            raise ConfigError(f"fabric needs >= 1 node, got {nodes}")
        self.sim = sim
        self.cfg = cfg
        self.nodes = nodes
        self._links: Dict[tuple[int, int], Link] = {}
        self._handlers: Dict[int, PacketHandler] = {}
        self._alive = [True] * nodes
        self.packets_dropped = 0

    def attach(self, node_id: int, handler: PacketHandler) -> None:
        """Register the packet sink for one node's NI."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        self._handlers[node_id] = handler

    # ------------------------------------------------------------------
    # membership (the failover subsystem's lease view)
    # ------------------------------------------------------------------
    def alive(self, node_id: int) -> bool:
        return self._alive[node_id]

    def set_alive(self, node_id: int, alive: bool) -> None:
        """Flip one node's membership.  A dead node neither sends nor
        receives: packets from or to it are silently dropped, which is
        how a crash looks to everyone else on a lossless fabric."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        self._alive[node_id] = alive

    def _ring_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 1
        forward = (dst - src) % self.nodes
        backward = (src - dst) % self.nodes
        return max(1, min(forward, backward))

    def link(self, src: int, dst: int) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(
                self.sim,
                self.cfg,
                hops=self._ring_hops(src, dst),
                name=f"link{src}->{dst}",
            )
            self._links[key] = link
        return link

    def send(self, packet: Packet) -> float:
        """Route ``packet`` to its destination node's handler.

        Packets from or to a crashed node are dropped (returning the
        current time): a dead NI produces and accepts nothing, and
        failure handling happens at the endpoints (typed RPC failures,
        aborted transfers), never in the fabric."""
        if not (self._alive[packet.src_node] and self._alive[packet.dst_node]):
            self.packets_dropped += 1
            return self.sim.now
        handler = self._handlers.get(packet.dst_node)
        if handler is None:
            raise ConfigError(f"no handler attached for node {packet.dst_node}")
        link = self._links.get((packet.src_node, packet.dst_node))
        if link is None:
            link = self.link(packet.src_node, packet.dst_node)
        return link.send(packet, handler)

    def packets_on(self, src: int, dst: int) -> int:
        link = self._links.get((src, dst))
        return link.packets_sent if link else 0

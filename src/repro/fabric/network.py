"""Point-to-point lossless fabric between soNUMA nodes.

Table 2: fixed 35 ns latency per hop, 100 GBps links.  The evaluated
system is two directly connected nodes (one hop); larger topologies
route along a ring of nodes with one hop per traversed link, which is
enough for the paper's latency model ("fixed latency per hop").
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.config import FabricConfig
from repro.common.errors import ConfigError
from repro.fabric.packets import Packet
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthServer

PacketHandler = Callable[[Packet], None]


class Link:
    """One direction of a node-to-node link: serialization at the link
    bandwidth plus fixed propagation per hop."""

    __slots__ = ("sim", "cfg", "hops", "server", "packets_sent", "_floor_ns", "_header_bytes")

    def __init__(
        self, sim: Simulator, cfg: FabricConfig, hops: int = 1, name: str = ""
    ):
        if hops < 1:
            raise ConfigError(f"link needs >= 1 hop, got {hops}")
        self.sim = sim
        self.cfg = cfg
        self.hops = hops
        self.server = BandwidthServer(sim, cfg.link_gbps, name)
        self.packets_sent = 0
        self._floor_ns = hops * cfg.hop_latency_ns
        self._header_bytes = cfg.header_bytes

    def latency_floor_ns(self) -> float:
        return self._floor_ns

    def send(self, packet: Packet, deliver: PacketHandler) -> float:
        """Enqueue ``packet``; ``deliver`` runs at arrival time.

        Returns the arrival time.
        """
        self.packets_sent += 1
        # BandwidthServer.request inlined (this runs once per packet on
        # the wire and the call shows up in profiles).
        server = self.server
        sim = self.sim
        wire = self._header_bytes + packet.size_bytes
        start = sim._now
        next_free = server._next_free
        if next_free > start:
            start = next_free
        service = wire / server.rate
        next_free = start + service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += wire
        arrival = next_free + self._floor_ns
        sim.call_at(arrival, deliver, packet)
        return arrival


class Fabric:
    """All-pairs connectivity for a small rack of nodes.

    Each ordered node pair gets a dedicated link whose hop count is the
    ring distance between the nodes (2 nodes -> always 1 hop, matching
    the paper's directly-connected evaluation).
    """

    def __init__(self, sim: Simulator, cfg: FabricConfig, nodes: int):
        if nodes < 1:
            raise ConfigError(f"fabric needs >= 1 node, got {nodes}")
        self.sim = sim
        self.cfg = cfg
        self.nodes = nodes
        self._links: Dict[tuple[int, int], Link] = {}
        self._handlers: Dict[int, PacketHandler] = {}
        #: (src, dst) -> (link, dst handler, link server, header bytes,
        #: floor ns): the resolved fast path for :meth:`send` with the
        #: per-link constants pre-extracted, built lazily and dropped
        #: when a handler changes.
        self._routes: Dict[tuple[int, int], tuple] = {}
        self._alive = [True] * nodes
        self.packets_dropped = 0

    def attach(self, node_id: int, handler: PacketHandler) -> None:
        """Register the packet sink for one node's NI."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        self._handlers[node_id] = handler
        for key in [k for k in self._routes if k[1] == node_id]:
            del self._routes[key]

    # ------------------------------------------------------------------
    # membership (the failover subsystem's lease view)
    # ------------------------------------------------------------------
    def alive(self, node_id: int) -> bool:
        return self._alive[node_id]

    def set_alive(self, node_id: int, alive: bool) -> None:
        """Flip one node's membership.  A dead node neither sends nor
        receives: packets from or to it are silently dropped, which is
        how a crash looks to everyone else on a lossless fabric."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        self._alive[node_id] = alive

    def _ring_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 1
        forward = (dst - src) % self.nodes
        backward = (src - dst) % self.nodes
        return max(1, min(forward, backward))

    def link(self, src: int, dst: int) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(
                self.sim,
                self.cfg,
                hops=self._ring_hops(src, dst),
                name=f"link{src}->{dst}",
            )
            self._links[key] = link
        return link

    def send(self, packet: Packet) -> float:
        """Route ``packet`` to its destination node's handler.

        Packets from or to a crashed node are dropped (returning the
        current time): a dead NI produces and accepts nothing, and
        failure handling happens at the endpoints (typed RPC failures,
        aborted transfers), never in the fabric."""
        src = packet.src_node
        dst = packet.dst_node
        alive = self._alive
        if not (alive[src] and alive[dst]):
            self.packets_dropped += 1
            return self.sim._now
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            handler = self._handlers.get(dst)
            if handler is None:
                raise ConfigError(f"no handler attached for node {dst}")
            link = self._links.get(key)
            if link is None:
                link = self.link(src, dst)
            route = (link, handler, link.server, link._header_bytes, link._floor_ns)
            self._routes[key] = route
        # Link.send inlined — this is the per-packet hot path and the
        # extra method dispatch is measurable at fleet event rates.
        link, deliver, server, header, floor = route
        link.packets_sent += 1
        sim = self.sim
        wire = header + packet.size_bytes
        start = sim._now
        next_free = server._next_free
        if next_free > start:
            start = next_free
        service = wire / server.rate
        next_free = start + service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += wire
        arrival = next_free + floor
        sim.call_at(arrival, deliver, packet)
        return arrival

    def packets_on(self, src: int, dst: int) -> int:
        link = self._links.get((src, dst))
        return link.packets_sent if link else 0

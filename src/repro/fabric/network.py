"""Point-to-point lossless fabric between soNUMA nodes.

Table 2: fixed 35 ns latency per hop, 100 GBps links.  The evaluated
system is two directly connected nodes (one hop); larger topologies
route along a ring of nodes with one hop per traversed link, which is
enough for the paper's latency model ("fixed latency per hop").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.config import FabricConfig
from repro.common.errors import ConfigError
from repro.fabric.packets import Packet
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthServer

PacketHandler = Callable[[Packet], None]


class LinkFault:
    """One active degradation on a directed link — the token returned
    by :meth:`Fabric.degrade_link` and consumed by
    :meth:`Fabric.restore_link`.

    Tokens on the same link *compose*: latency and bandwidth
    multipliers multiply, and ``drop`` windows OR together.  ``drop``
    severs *new* conversations (callers fail fast with a typed
    :class:`~repro.common.errors.LinkPartitionedError`); packets are
    never physically discarded, because the fabric is lossless and the
    protocols above it (SABRe registration-before-request, RPC
    request/reply pairing) are built on that guarantee.
    """

    __slots__ = ("key", "drop", "latency_mult", "bw_mult")

    def __init__(
        self,
        key: Tuple[int, int],
        drop: bool,
        latency_mult: float,
        bw_mult: float,
    ):
        self.key = key
        self.drop = drop
        self.latency_mult = latency_mult
        self.bw_mult = bw_mult


class Link:
    """One direction of a node-to-node link: serialization at the link
    bandwidth plus fixed propagation per hop."""

    __slots__ = ("sim", "cfg", "hops", "server", "packets_sent", "_floor_ns", "_header_bytes")

    def __init__(
        self, sim: Simulator, cfg: FabricConfig, hops: int = 1, name: str = ""
    ):
        if hops < 1:
            raise ConfigError(f"link needs >= 1 hop, got {hops}")
        self.sim = sim
        self.cfg = cfg
        self.hops = hops
        self.server = BandwidthServer(sim, cfg.link_gbps, name)
        self.packets_sent = 0
        self._floor_ns = hops * cfg.hop_latency_ns
        self._header_bytes = cfg.header_bytes

    def latency_floor_ns(self) -> float:
        return self._floor_ns

    def send(self, packet: Packet, deliver: PacketHandler) -> float:
        """Enqueue ``packet``; ``deliver`` runs at arrival time.

        Returns the arrival time.
        """
        self.packets_sent += 1
        # BandwidthServer.request inlined (this runs once per packet on
        # the wire and the call shows up in profiles).
        server = self.server
        sim = self.sim
        wire = self._header_bytes + packet.size_bytes
        start = sim._now
        next_free = server._next_free
        if next_free > start:
            start = next_free
        service = wire / server.rate
        next_free = start + service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += wire
        arrival = next_free + self._floor_ns
        sim.call_at(arrival, deliver, packet)
        return arrival


class Fabric:
    """All-pairs connectivity for a small rack of nodes.

    Each ordered node pair gets a dedicated link whose hop count is the
    ring distance between the nodes (2 nodes -> always 1 hop, matching
    the paper's directly-connected evaluation).
    """

    def __init__(self, sim: Simulator, cfg: FabricConfig, nodes: int):
        if nodes < 1:
            raise ConfigError(f"fabric needs >= 1 node, got {nodes}")
        self.sim = sim
        self.cfg = cfg
        self.nodes = nodes
        self._links: Dict[tuple[int, int], Link] = {}
        self._handlers: Dict[int, PacketHandler] = {}
        #: (src, dst) -> (link, dst handler, link server, header bytes,
        #: floor ns): the resolved fast path for :meth:`send` with the
        #: per-link constants pre-extracted, built lazily and dropped
        #: when a handler changes.
        self._routes: Dict[tuple[int, int], tuple] = {}
        self._alive = [True] * nodes
        self.packets_dropped = 0
        #: (src, dst) -> active fault tokens on that directed link.
        self._link_faults: Dict[Tuple[int, int], List[LinkFault]] = {}
        #: (src, dst) -> composed (drop, latency_mult, bw_mult) — the
        #: degradation table :meth:`send` consults.  Kept separate from
        #: the token lists so the hot path reads one dict entry.
        self._degraded: Dict[Tuple[int, int], Tuple[bool, float, float]] = {}
        #: True iff any degradation is active: the only cost the fault
        #: layer adds to a healthy fabric's per-packet path.
        self._faulty = False
        #: New calls/posts refused because a drop window severed the
        #: link (incremented by the endpoints that fail fast).
        self.partition_refusals = 0
        #: Per-node clock skew: node ``i`` observes membership
        #: transitions ``_skew[i]`` ns late (its lease view is stale).
        self._skew = [0.0] * nodes
        self._skewed = False
        #: Per-node membership transition log ``(when, alive)`` and the
        #: state before the oldest retained entry — what a skewed
        #: observer's :meth:`observed_alive` replays.
        self._lease_log: List[List[Tuple[float, bool]]] = [[] for _ in range(nodes)]
        self._lease_base = [True] * nodes

    def attach(self, node_id: int, handler: PacketHandler) -> None:
        """Register the packet sink for one node's NI."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        self._handlers[node_id] = handler
        for key in [k for k in self._routes if k[1] == node_id]:
            del self._routes[key]

    # ------------------------------------------------------------------
    # membership (the failover subsystem's lease view)
    # ------------------------------------------------------------------
    def alive(self, node_id: int) -> bool:
        return self._alive[node_id]

    def set_alive(self, node_id: int, alive: bool) -> None:
        """Flip one node's membership.  A dead node neither sends nor
        receives: packets from or to it are silently dropped, which is
        how a crash looks to everyone else on a lossless fabric.

        Membership is deliberately *orthogonal* to link degradation: a
        node that crashes inside a partition window keeps its fault
        tokens, and the injector restores them on schedule regardless
        of the node's aliveness — so a recovered node comes back with
        clean link tables once the window closes, never with leaked
        degradation state."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        if alive != self._alive[node_id]:
            self._alive[node_id] = alive
            log = self._lease_log[node_id]
            log.append((self.sim._now, alive))
            if self._skewed:
                # Keep the log bounded: transitions no skewed observer
                # can still see fold into the base state.
                horizon = self.sim._now - max(self._skew)
                while log and log[0][0] <= horizon:
                    self._lease_base[node_id] = log.pop(0)[1]
            else:
                self._lease_base[node_id] = alive
                log.clear()

    # ------------------------------------------------------------------
    # clock skew (stale lease views)
    # ------------------------------------------------------------------
    def set_clock_skew(self, node_id: int, skew_ns: float) -> None:
        """Give ``node_id`` a stale lease view: it observes membership
        transitions ``skew_ns`` ns after they happen, and its local
        timers (RPC watchdogs) run that much behind."""
        if not 0 <= node_id < self.nodes:
            raise ConfigError(f"node {node_id} outside fabric of {self.nodes}")
        if skew_ns < 0:
            raise ConfigError(f"clock skew cannot be negative: {skew_ns}")
        self._skew[node_id] = skew_ns
        self._skewed = any(s != 0.0 for s in self._skew)

    def clock_skew_ns(self, node_id: int) -> float:
        return self._skew[node_id]

    def observed_alive(self, observer: int, node_id: int) -> bool:
        """``node_id``'s membership as ``observer``'s (possibly skewed)
        lease view reports it: the true state as of ``now - skew``."""
        if not self._skewed:
            return self._alive[node_id]
        skew = self._skew[observer]
        if skew == 0.0:
            return self._alive[node_id]
        cutoff = self.sim._now - skew
        state = self._lease_base[node_id]
        for when, alive in self._lease_log[node_id]:
            if when <= cutoff:
                state = alive
            else:
                break
        return state

    # ------------------------------------------------------------------
    # link degradation (the injector's mutation surface)
    # ------------------------------------------------------------------
    def degrade_link(
        self,
        src: int,
        dst: int,
        *,
        drop: bool = False,
        latency_mult: float = 1.0,
        bw_mult: float = 1.0,
    ) -> LinkFault:
        """Open one degradation on the directed ``src -> dst`` link and
        return its token (pass it to :meth:`restore_link` to close).

        ``latency_mult`` scales the propagation floor, ``bw_mult``
        scales the serialization rate (``< 1`` is slower), and ``drop``
        severs new conversations (see :class:`LinkFault`).  Degradation
        is directional — open the reverse key too for a symmetric
        fault — and tokens on the same link compose."""
        if not 0 <= src < self.nodes or not 0 <= dst < self.nodes:
            raise ConfigError(
                f"link ({src}, {dst}) outside fabric of {self.nodes}"
            )
        if src == dst:
            raise ConfigError("cannot degrade a node's link to itself")
        if latency_mult < 1.0:
            raise ConfigError(
                f"latency_mult must be >= 1 (got {latency_mult}); "
                "degradation cannot speed a link up"
            )
        if not 0.0 < bw_mult <= 1.0:
            raise ConfigError(f"bw_mult must be in (0, 1], got {bw_mult}")
        if not drop and latency_mult == 1.0 and bw_mult == 1.0:
            raise ConfigError("degradation must drop or slow the link")
        fault = LinkFault((src, dst), drop, latency_mult, bw_mult)
        self._link_faults.setdefault((src, dst), []).append(fault)
        self._recompose((src, dst))
        return fault

    def restore_link(self, fault: LinkFault) -> None:
        """Close one degradation window (idempotence is an error: a
        double restore means the injector's bookkeeping is wrong)."""
        tokens = self._link_faults.get(fault.key)
        if tokens is None or fault not in tokens:
            raise ConfigError(f"no active fault on link {fault.key}")
        tokens.remove(fault)
        if not tokens:
            del self._link_faults[fault.key]
        self._recompose(fault.key)

    def _recompose(self, key: Tuple[int, int]) -> None:
        tokens = self._link_faults.get(key)
        if not tokens:
            self._degraded.pop(key, None)
        else:
            drop = False
            lat = 1.0
            bw = 1.0
            for t in tokens:
                drop = drop or t.drop
                lat *= t.latency_mult
                bw *= t.bw_mult
            self._degraded[key] = (drop, lat, bw)
        self._faulty = bool(self._degraded)

    def degradation(
        self, src: int, dst: int
    ) -> Optional[Tuple[bool, float, float]]:
        """The composed ``(drop, latency_mult, bw_mult)`` on the
        directed link, or ``None`` when it is healthy."""
        return self._degraded.get((src, dst))

    def link_severed(self, src: int, dst: int) -> bool:
        """True when a drop window in *either* direction severs the
        conversation: a request whose reply cannot return is as dead as
        one that cannot be sent."""
        if not self._faulty:
            return False
        eff = self._degraded.get((src, dst))
        if eff is not None and eff[0]:
            return True
        eff = self._degraded.get((dst, src))
        return eff is not None and eff[0]

    def reachable(self, src: int, dst: int) -> bool:
        """Both ends alive and no drop window between them — whether a
        conversation started now could complete."""
        return (
            self._alive[src]
            and self._alive[dst]
            and not self.link_severed(src, dst)
        )

    def _ring_hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 1
        forward = (dst - src) % self.nodes
        backward = (src - dst) % self.nodes
        return max(1, min(forward, backward))

    def link(self, src: int, dst: int) -> Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Link(
                self.sim,
                self.cfg,
                hops=self._ring_hops(src, dst),
                name=f"link{src}->{dst}",
            )
            self._links[key] = link
        return link

    def send(self, packet: Packet) -> float:
        """Route ``packet`` to its destination node's handler.

        Packets from or to a crashed node are dropped (returning the
        current time): a dead NI produces and accepts nothing, and
        failure handling happens at the endpoints (typed RPC failures,
        aborted transfers), never in the fabric."""
        src = packet.src_node
        dst = packet.dst_node
        alive = self._alive
        if not (alive[src] and alive[dst]):
            self.packets_dropped += 1
            return self.sim._now
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            handler = self._handlers.get(dst)
            if handler is None:
                raise ConfigError(f"no handler attached for node {dst}")
            link = self._links.get(key)
            if link is None:
                link = self.link(src, dst)
            route = (link, handler, link.server, link._header_bytes, link._floor_ns)
            self._routes[key] = route
        # Link.send inlined — this is the per-packet hot path and the
        # extra method dispatch is measurable at fleet event rates.
        # Degradation costs one flag test while the fabric is healthy;
        # the multipliers apply at *send-fire time*, so a window that
        # opens mid-transfer slows exactly the packets sent inside it —
        # identically in batched and stepwise block modes, which both
        # route every packet through here at the same timestamps.
        link, deliver, server, header, floor = route
        if self._faulty:
            eff = self._degraded.get(key)
            if eff is not None:
                return self._send_degraded(
                    packet, link, deliver, server, header, floor, eff
                )
        link.packets_sent += 1
        sim = self.sim
        wire = header + packet.size_bytes
        start = sim._now
        next_free = server._next_free
        if next_free > start:
            start = next_free
        service = wire / server.rate
        next_free = start + service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += wire
        arrival = next_free + floor
        sim.call_at(arrival, deliver, packet)
        return arrival

    def _send_degraded(
        self, packet, link, deliver, server, header, floor, eff
    ) -> float:
        """The degraded-link variant of the inlined send: same
        arithmetic with the composed multipliers applied.  ``drop``
        windows still *deliver* — severing is enforced by the endpoints
        via :meth:`link_severed` before anything is posted, so packets
        already committed to the wire drain losslessly."""
        _drop, lat_mult, bw_mult = eff
        link.packets_sent += 1
        sim = self.sim
        wire = header + packet.size_bytes
        start = sim._now
        next_free = server._next_free
        if next_free > start:
            start = next_free
        service = wire / (server.rate * bw_mult)
        next_free = start + service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += wire
        arrival = next_free + floor * lat_mult
        sim.call_at(arrival, deliver, packet)
        return arrival

    def packets_on(self, src: int, dst: int) -> int:
        link = self._links.get((src, dst))
        return link.packets_sent if link else 0

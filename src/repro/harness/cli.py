"""Command-line entry point: run any registered experiment — every
paper table/figure plus the ablation sweeps.

Usage::

    repro-harness list                       # registered experiments
    repro-harness fig7a                      # full-size serial run
    repro-harness fig8 --scale 0.3 --jobs 8  # faster, parallel sweep
    repro-harness all --scale 0.2 --json-out results.json
    repro-harness fig7b --cache-dir .sweep-cache   # reuse finished points
    repro-harness fig7a --axes object_size=64,512  # axis subset
    repro-harness fig10 --overrides seed=7 --base-seed 3
    repro-harness all --campaign-dir runs/all      # journaled + resumable

``all`` runs through the campaign layer (one stage per registered
experiment), so ``--campaign-dir`` makes it resumable after a crash
and ``repro-campaign report`` can render the results.

(Also installed as ``sabres-experiments`` for backward compatibility.)
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.experiments import SweepRunner, registry
from repro.experiments.campaign import CampaignRunner, CampaignSpec, CampaignStage
from repro.experiments.context import CampaignContext
from repro.harness.report import format_table


def run_experiment(
    name: str,
    scale: float,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> str:
    """Run one registered experiment and render its result table."""
    result = SweepRunner(
        registry.get(name), scale=scale, jobs=jobs, cache_dir=cache_dir
    ).run()
    return result.table()


def _parse_value(text: str) -> Any:
    """``64`` -> int, ``0.5`` -> float, ``'a'``/bare words -> str."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def parse_axes(entries: Sequence[str]) -> Optional[Dict[str, Tuple[Any, ...]]]:
    """Parse repeated ``--axes name=v1,v2,...`` into an axes mapping."""
    if not entries:
        return None
    axes: Dict[str, Tuple[Any, ...]] = {}
    for entry in entries:
        name, sep, raw = entry.partition("=")
        if not sep or not name or not raw:
            raise ConfigError(
                f"--axes expects name=v1,v2,... got {entry!r}"
            )
        axes[name] = tuple(_parse_value(v) for v in raw.split(","))
    return axes


def parse_overrides(entries: Sequence[str]) -> Optional[Dict[str, Any]]:
    """Parse repeated ``--overrides key=value`` into an override dict."""
    if not entries:
        return None
    overrides: Dict[str, Any] = {}
    for entry in entries:
        key, sep, raw = entry.partition("=")
        if not sep or not key:
            raise ConfigError(f"--overrides expects key=value, got {entry!r}")
        overrides[key] = _parse_value(raw)
    return overrides


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Run the SABRes paper's tables, figures, and ablation "
        "experiments through the declarative sweep framework.",
    )
    choices = ["list", "all", *registry.names()]
    parser.add_argument(
        "experiment",
        choices=choices,
        help="experiment name, 'all' to run everything, or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale factor (smaller = faster, noisier)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parameter sweep (default: 1)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write results as a JSON artifact",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache completed sweep points on disk (keyed by config hash)",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="override the spec's seed root for per-point seeding",
    )
    parser.add_argument(
        "--axes",
        action="append",
        default=[],
        metavar="NAME=V1,V2",
        help="restrict an axis to the given values (repeatable)",
    )
    parser.add_argument(
        "--overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec parameter (repeatable; values parsed as "
        "Python literals, falling back to strings)",
    )
    parser.add_argument(
        "--campaign-dir",
        metavar="DIR",
        default=None,
        help="journal completed points under a campaign directory, "
        "making the run crash-resumable ('all' resumes stage by stage; "
        "render with repro-campaign report)",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        descriptions = registry.descriptions()
        width = max(len(name) for name in descriptions)
        for name, description in descriptions.items():
            print(f"{name:<{width}}  {description}")
        return 0

    try:
        axes = parse_axes(args.axes)
        overrides = parse_overrides(args.overrides)
        names = (
            list(registry.names()) if args.experiment == "all" else [args.experiment]
        )
        # Single experiments and 'all' alike run as a campaign: one
        # stage per spec, the chosen context deciding persistence.
        campaign = CampaignSpec(
            name="all" if args.experiment == "all" else args.experiment,
            scale=args.scale,
            stages=[
                CampaignStage(
                    experiment=name,
                    axes=axes,
                    overrides=overrides,
                    base_seed=args.base_seed,
                )
                for name in names
            ],
        )
        context = None
        if args.campaign_dir:
            context = CampaignContext(args.campaign_dir)
        elif args.cache_dir:
            from repro.experiments.context import CacheContext, PointCache

            context = CacheContext(PointCache(args.cache_dir))
        from repro.experiments.executors import make_executor

        runner = CampaignRunner(
            campaign,
            executor=make_executor(jobs=args.jobs),
            context=context,
        )
        artifacts = {}
        for stage_result in runner.iter_run():
            result = stage_result.result
            cached = (
                f", {result.points_cached}/{result.points_total} points cached"
                if (args.cache_dir or args.campaign_dir)
                else ""
            )
            print(f"=== {stage_result.stage} ({result.elapsed_s:.1f}s{cached}) ===")
            print(format_table(result.headers, result.rows))
            print()
            artifacts[stage_result.stage] = result.to_json_dict()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.json_out:
        payload = artifacts[names[0]] if len(names) == 1 else artifacts
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: regenerate any paper table or figure.

Usage::

    sabres-experiments fig7a            # full-size run
    sabres-experiments fig8 --scale 0.3 # faster, smaller windows
    sabres-experiments all --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.harness.fig1 import run_fig1
from repro.harness.fig7 import run_fig7a, run_fig7b
from repro.harness.fig8 import run_fig8
from repro.harness.fig9 import run_fig9a, run_fig9b
from repro.harness.fig10 import run_fig10
from repro.harness.report import format_table
from repro.harness.tables import table1, table2_rows

_FIGURES: Dict[str, Callable] = {
    "fig1": run_fig1,
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig8": run_fig8,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "fig10": run_fig10,
}


def run_experiment(name: str, scale: float) -> str:
    if name == "table1":
        return table1()
    if name == "table2":
        headers, rows = table2_rows()
        return format_table(headers, rows)
    headers, rows = _FIGURES[name](scale=scale)
    return format_table(headers, rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="sabres-experiments",
        description="Regenerate the SABRes paper's tables and figures.",
    )
    choices = ["table1", "table2", *sorted(_FIGURES), "all"]
    parser.add_argument("experiment", choices=choices)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale factor (smaller = faster, noisier)",
    )
    args = parser.parse_args(argv)

    names = (
        ["table1", "table2", *sorted(_FIGURES)]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        start = time.time()
        output = run_experiment(name, args.scale)
        elapsed = time.time() - start
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(output)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: run any registered experiment — every
paper table/figure plus the ablation sweeps.

Usage::

    repro-harness list                       # registered experiments
    repro-harness fig7a                      # full-size serial run
    repro-harness fig8 --scale 0.3 --jobs 8  # faster, parallel sweep
    repro-harness all --scale 0.2 --json-out results.json
    repro-harness fig7b --cache-dir .sweep-cache   # reuse finished points

(Also installed as ``sabres-experiments`` for backward compatibility.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.common.errors import ConfigError
from repro.experiments import SweepRunner, registry
from repro.harness.report import format_table


def run_experiment(
    name: str,
    scale: float,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> str:
    """Run one registered experiment and render its result table."""
    result = SweepRunner(
        registry.get(name), scale=scale, jobs=jobs, cache_dir=cache_dir
    ).run()
    return result.table()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Run the SABRes paper's tables, figures, and ablation "
        "experiments through the declarative sweep framework.",
    )
    choices = ["list", "all", *registry.names()]
    parser.add_argument(
        "experiment",
        choices=choices,
        help="experiment name, 'all' to run everything, or 'list'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale factor (smaller = faster, noisier)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the parameter sweep (default: 1)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write results as a JSON artifact",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache completed sweep points on disk (keyed by config hash)",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        descriptions = registry.descriptions()
        width = max(len(name) for name in descriptions)
        for name, description in descriptions.items():
            print(f"{name:<{width}}  {description}")
        return 0

    names = list(registry.names()) if args.experiment == "all" else [args.experiment]
    artifacts = {}
    for name in names:
        start = time.time()
        try:
            result = SweepRunner(
                registry.get(name),
                scale=args.scale,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
            ).run()
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        elapsed = time.time() - start
        cached = (
            f", {result.points_cached}/{result.points_total} points cached"
            if args.cache_dir
            else ""
        )
        print(f"=== {name} ({elapsed:.1f}s{cached}) ===")
        print(format_table(result.headers, result.rows))
        print()
        artifacts[name] = result.to_json_dict()

    if args.json_out:
        payload = artifacts[names[0]] if len(names) == 1 else artifacts
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

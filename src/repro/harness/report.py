"""Plain-text result tables for the experiment harness."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: List[Dict[str, Any]]) -> str:
    """Render dict rows as an aligned text table (column order follows
    ``headers``; missing cells render empty)."""
    cells = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row_cells in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def scaled_duration(base_ns: float, scale: float, floor_ns: float = 30_000.0) -> float:
    """Scale an experiment duration, keeping a useful minimum window."""
    return max(floor_ns, base_ns * scale)

"""Figure 10: FaRM local read throughput, per-cache-line-versions
layout vs the unmodified object store that SABRes enable.

Paper: +20 % at 128 B, +53 % at 1 KB, 2.1x at 8 KB (15 reader threads,
read-only key-value lookup kernel on local memory).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.harness.report import scaled_duration
from repro.objstore.local import LocalReadConfig, run_local_reads
from repro.workloads.generators import FIG1_SIZES

HEADERS = ("object_size", "percl_gbps", "unmodified_gbps", "speedup")


def run_fig10(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG1_SIZES,
    seed: int = 9,
    readers: int = 15,
) -> Tuple[Sequence[str], List[Dict]]:
    rows = []
    for size in sizes:
        gbps = {}
        for percl in (True, False):
            cfg = LocalReadConfig(
                percl_layout=percl,
                object_size=size,
                readers=readers,
                duration_ns=scaled_duration(120_000.0, scale),
                warmup_ns=15_000.0,
                seed=seed,
            )
            gbps["percl" if percl else "raw"] = run_local_reads(cfg).goodput_gbps
        rows.append(
            {
                "object_size": size,
                "percl_gbps": gbps["percl"],
                "unmodified_gbps": gbps["raw"],
                "speedup": gbps["raw"] / gbps["percl"]
                if gbps["percl"] > 0
                else float("nan"),
            }
        )
    return HEADERS, rows

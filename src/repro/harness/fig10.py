"""Figure 10: FaRM local read throughput, per-cache-line-versions
layout vs the unmodified object store that SABRes enable.

Paper: +20 % at 128 B, +53 % at 1 KB, 2.1x at 8 KB (15 reader threads,
read-only key-value lookup kernel on local memory).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments import ExperimentSpec, SweepRunner, Variant, register
from repro.harness.report import scaled_duration
from repro.objstore.local import LocalReadConfig, run_local_reads
from repro.workloads.generators import FIG1_SIZES

HEADERS = ("object_size", "percl_gbps", "unmodified_gbps", "speedup")


def _fig10_point(ctx) -> Dict:
    p = ctx.params
    cfg = LocalReadConfig(
        percl_layout=p["percl_layout"],
        object_size=p["object_size"],
        readers=p["readers"],
        duration_ns=scaled_duration(120_000.0, ctx.scale),
        warmup_ns=15_000.0,
        seed=p["seed"],
    )
    return {ctx.variant: run_local_reads(cfg).goodput_gbps}


def _fig10_finalize(row: Dict) -> Dict:
    row["speedup"] = (
        row["unmodified_gbps"] / row["percl_gbps"]
        if row["percl_gbps"] > 0
        else float("nan")
    )
    return row


FIG10_SPEC = register(
    ExperimentSpec(
        name="fig10",
        description="local read throughput: perCL layout vs unmodified store",
        axes={"object_size": FIG1_SIZES},
        variants=(
            Variant("percl_gbps", {"percl_layout": True}),
            Variant("unmodified_gbps", {"percl_layout": False}),
        ),
        defaults={"seed": 9, "readers": 15},
        finalize_row=_fig10_finalize,
        headers=HEADERS,
        point_fn=_fig10_point,
        base_seed=9,
    )
)


def run_fig10(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG1_SIZES,
    seed: int = 9,
    readers: int = 15,
) -> Tuple[Sequence[str], List[Dict]]:
    result = SweepRunner(
        FIG10_SPEC,
        scale=scale,
        axes={"object_size": sizes},
        overrides={"seed": seed, "readers": readers},
    ).run()
    return HEADERS, result.rows

"""Shared helpers for the per-figure experiment harnesses."""

from __future__ import annotations

from typing import Optional

from repro.common.config import ClusterConfig


def objects_for_memory_residency(
    object_size: int, cluster: Optional[ClusterConfig] = None
) -> int:
    """Object count whose working set is ~4x the LLC, so remote reads
    miss in the destination LLC and go to memory (§7.3's setup)."""
    llc = (cluster or ClusterConfig()).node.caches.llc_bytes
    return min(8192, max(64, (4 * llc) // max(object_size, 64)))


def objects_for_llc_residency(cluster: Optional[ClusterConfig] = None) -> int:
    """Fig. 8 limits the store to 100 objects so all accesses are
    LLC-resident at the destination (§7.2).  The count is size- and
    cluster-independent; ``cluster`` is accepted for signature symmetry
    with :func:`objects_for_memory_residency`."""
    return 100

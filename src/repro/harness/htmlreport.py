"""HTML weblog for campaigns: tables, QA verdicts, inline SVG figures.

``render_campaign`` turns the row/QA artifacts accumulated under a
campaign directory into a single self-contained, browsable page at
``<dir>/report/index.html`` — one section per stage with the result
table, the stage's QA verdict and per-check detail, an inline SVG
chart of the numeric columns, and a link to the raw JSON artifact.
Everything is stdlib: the SVG is generated directly, no plotting
dependency, and the only outgoing links point at files inside the
campaign directory (the CI smoke job link-checks the rendered page).
"""

from __future__ import annotations

import html
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.context import CampaignContext

_CSS = """
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2rem auto;
       max-width: 70rem; padding: 0 1rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2.5rem; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #c8c8d4; padding: .3rem .7rem; text-align: right; }
th { background: #eef0f6; }
.verdict { display: inline-block; padding: .15rem .6rem; border-radius: .8rem;
           font-size: .8rem; font-weight: 600; color: #fff; vertical-align: middle; }
.verdict-pass { background: #2e7d32; }
.verdict-fail { background: #c62828; }
.verdict-none { background: #78909c; }
.qa-checks { font-size: .85rem; color: #444; }
.qa-checks li.fail { color: #c62828; font-weight: 600; }
.meta { color: #667; font-size: .85rem; }
figure { margin: 1rem 0; }
"""


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return ""
    return str(value)


def _table_html(headers: Sequence[str], rows: Sequence[Dict[str, Any]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = []
    for row in rows:
        cells = "".join(
            f"<td>{html.escape(_fmt_cell(row.get(h)))}</td>" for h in headers
        )
        body.append(f"<tr>{cells}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


#: Qualitative series palette for the SVG figures.
_COLORS = ("#3949ab", "#d81b60", "#00897b", "#f4511e", "#6d4c41", "#7b1fa2")


def _numeric_series(
    headers: Sequence[str], rows: Sequence[Dict[str, Any]]
) -> Tuple[Optional[str], List[Tuple[str, List[float]]]]:
    """Pick an x column and up to 6 fully-numeric y series."""

    def numeric(column: str) -> Optional[List[float]]:
        values = []
        for row in rows:
            v = row.get(column)
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return None
            values.append(float(v))
        return values

    x_col = None
    series: List[Tuple[str, List[float]]] = []
    for h in headers:
        values = numeric(h)
        if values is None:
            continue
        if x_col is None:
            x_col = h
        elif len(series) < 6:
            series.append((h, values))
    return x_col, series


def _svg_chart(
    headers: Sequence[str], rows: Sequence[Dict[str, Any]]
) -> str:
    """A small multiline chart: first numeric column as x, the rest as
    series.  Returns '' when there is nothing worth plotting."""
    if len(rows) < 2:
        return ""
    x_col, series = _numeric_series(headers, rows)
    if x_col is None or not series:
        return ""
    xs = [float(row[x_col]) for row in rows]
    width, height, pad = 640, 280, 48
    x_lo, x_hi = min(xs), max(xs)
    y_all = [v for _, values in series for v in values]
    y_lo, y_hi = min(y_all), max(y_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def sx(v: float) -> float:
        return pad + (v - x_lo) / (x_hi - x_lo) * (width - 2 * pad)

    def sy(v: float) -> float:
        return height - pad - (v - y_lo) / (y_hi - y_lo) * (height - 2 * pad)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'xmlns="http://www.w3.org/2000/svg" '
        f'style="max-width:{width}px;background:#fafafc">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#999"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        f'stroke="#999"/>',
        f'<text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        f'font-size="12">{html.escape(x_col)}</text>',
        f'<text x="{pad}" y="{pad - 10}" font-size="11" fill="#667">'
        f"{y_lo:g} .. {y_hi:g}</text>",
    ]
    for i, (name, values) in enumerate(series):
        color = _COLORS[i % len(_COLORS)]
        pts = " ".join(
            f"{sx(x):.1f},{sy(y):.1f}" for x, y in sorted(zip(xs, values))
        )
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        ly = pad + 16 * i
        parts.append(
            f'<rect x="{width - pad - 150}" y="{ly - 9}" width="10" '
            f'height="10" fill="{color}"/>'
            f'<text x="{width - pad - 135}" y="{ly}" font-size="11">'
            f"{html.escape(name)}</text>"
        )
    parts.append("</svg>")
    return f"<figure>{''.join(parts)}</figure>"


def _verdict_badge(verdict: str) -> str:
    return f'<span class="verdict verdict-{verdict}">{verdict.upper()}</span>'


def _qa_html(qa_payload: Optional[Dict[str, Any]]) -> Tuple[str, str]:
    """Returns ``(verdict, checks html)`` for a stage's QA artifact."""
    if not qa_payload:
        return "none", ""
    verdict = qa_payload.get("verdict", "none")
    items = []
    for check in qa_payload.get("checks", ()):  # pragma: no branch
        ok = check.get("passed")
        cls = "" if ok else ' class="fail"'
        observed = check.get("observed")
        shown = "n/a" if observed is None else f"{observed:g}"
        reason = check.get("reason") or ""
        suffix = f" — {html.escape(reason)}" if reason else ""
        items.append(
            f"<li{cls}>{html.escape(check.get('describe', '?'))}: "
            f"observed {shown}{suffix}</li>"
        )
    checks = f'<ul class="qa-checks">{"".join(items)}</ul>' if items else ""
    return verdict, checks


def render_campaign(context: CampaignContext) -> str:
    """Render ``report/index.html`` from the campaign's artifacts.

    Returns the path of the written page."""
    import json

    request = context.load_request() or {}
    name = request.get("campaign", os.path.basename(context.root.rstrip("/")))
    sections = []
    verdicts = []
    for stage, payload in context.iter_stage_artifacts():
        headers = payload.get("headers", [])
        rows = payload.get("rows", [])
        qa_payload = None
        try:
            with open(context.qa_artifact_path(stage)) as fh:
                qa_payload = json.load(fh)
        except (OSError, ValueError):
            pass
        verdict, checks_html = _qa_html(qa_payload)
        verdicts.append(verdict)
        meta = {}
        try:
            with open(context.meta_artifact_path(stage)) as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            pass
        meta_line = (
            f'<p class="meta">experiment {html.escape(str(meta.get("experiment", "?")))}'
            f' · scale {meta.get("scale", "?")}'
            f' · executor {html.escape(str(meta.get("executor", "?")))}'
            f' · {meta.get("points_total", "?")} points'
            f' ({meta.get("journal_hits", 0)} from journal)'
            f' · <a href="../artifacts/{stage}.rows.json">rows.json</a></p>'
        )
        sections.append(
            f'<h2 id="{html.escape(stage)}">{html.escape(stage)} '
            f"{_verdict_badge(verdict)}</h2>"
            f"{meta_line}"
            f"{html.escape(payload.get('description', ''))}"
            f"{_table_html(headers, rows)}"
            f"{checks_html}"
            f"{_svg_chart(headers, rows)}"
        )
    overall = "fail" if "fail" in verdicts else ("pass" if "pass" in verdicts else "none")
    toc = "".join(
        f'<li><a href="#{html.escape(stage)}">{html.escape(stage)}</a></li>'
        for stage, _ in context.iter_stage_artifacts()
    )
    page = (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>campaign {html.escape(name)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"<h1>campaign {html.escape(name)} {_verdict_badge(overall)}</h1>"
        f'<p class="meta">{html.escape(request.get("description", ""))}</p>'
        f"<ul>{toc}</ul>"
        f"{''.join(sections)}"
        "</body></html>\n"
    )
    os.makedirs(context.report_dir, exist_ok=True)
    out = os.path.join(context.report_dir, "index.html")
    tmp = out + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(page)
    os.replace(tmp, out)
    return out

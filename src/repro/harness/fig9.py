"""Figure 9: FaRM key-value store, baseline vs LightSABRes.

9a: end-to-end lookup latency breakdown (one reader).  LightSABRes
remove stripping and buffer management entirely and shrink the
framework component (smaller instruction footprint); the application
component grows (the object is LLC- rather than L1-resident).  Net:
-26 % at 128 B to -52 % at 8 KB (paper: 35 % and 52 %).

9b: throughput with 15 reader threads: +30-60 % depending on size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments import ExperimentSpec, SweepRunner, Variant, register
from repro.harness.common import objects_for_memory_residency
from repro.harness.report import scaled_duration
from repro.objstore.farm import FarmConfig, run_farm
from repro.workloads.generators import FIG1_SIZES

HEADERS_9A = (
    "object_size",
    "build",
    "transfer_ns",
    "framework_ns",
    "stripping_ns",
    "application_ns",
    "total_ns",
)
HEADERS_9B = ("object_size", "percl_gbps", "sabre_gbps", "improvement")


def _farm_cfg(size: int, use_sabre: bool, readers: int, scale: float, seed: int):
    return FarmConfig(
        use_sabre=use_sabre,
        object_size=size,
        n_objects=objects_for_memory_residency(size),
        readers=readers,
        duration_ns=scaled_duration(150_000.0, scale),
        warmup_ns=10_000.0,
        seed=seed,
    )


def _fig9a_point(ctx) -> Dict:
    p = ctx.params
    use_sabre = p["build"] == "sabre"
    result = run_farm(
        _farm_cfg(p["object_size"], use_sabre, 1, ctx.scale, p["seed"])
    )
    means = result.breakdown.means()
    return {
        "transfer_ns": means["transfer"],
        "framework_ns": means["framework"],
        "stripping_ns": means["stripping"],
        "application_ns": means["application"],
        "total_ns": result.mean_latency_ns,
    }


FIG9A_SPEC = register(
    ExperimentSpec(
        name="fig9a",
        description="FaRM KV lookup latency breakdown: perCL vs SABRe builds",
        axes={"object_size": FIG1_SIZES, "build": ("percl", "sabre")},
        defaults={"seed": 3},
        headers=HEADERS_9A,
        point_fn=_fig9a_point,
        base_seed=3,
    )
)


def _fig9b_point(ctx) -> Dict:
    p = ctx.params
    result = run_farm(
        _farm_cfg(
            p["object_size"], ctx.variant == "sabre", p["readers"], ctx.scale,
            p["seed"],
        )
    )
    return {f"{ctx.variant}_gbps": result.goodput_gbps}


def _fig9b_finalize(row: Dict) -> Dict:
    row["improvement"] = (
        row["sabre_gbps"] / row["percl_gbps"] - 1.0
        if row["percl_gbps"] > 0
        else float("nan")
    )
    return row


FIG9B_SPEC = register(
    ExperimentSpec(
        name="fig9b",
        description="FaRM KV throughput: perCL vs SABRe builds",
        axes={"object_size": FIG1_SIZES},
        variants=(Variant("percl"), Variant("sabre")),
        defaults={"seed": 3, "readers": 15},
        finalize_row=_fig9b_finalize,
        headers=HEADERS_9B,
        point_fn=_fig9b_point,
        base_seed=3,
    )
)


def run_fig9a(
    scale: float = 1.0, sizes: Sequence[int] = FIG1_SIZES, seed: int = 3
) -> Tuple[Sequence[str], List[Dict]]:
    result = SweepRunner(
        FIG9A_SPEC,
        scale=scale,
        axes={"object_size": sizes},
        overrides={"seed": seed},
    ).run()
    return HEADERS_9A, result.rows


def run_fig9b(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG1_SIZES,
    seed: int = 3,
    readers: int = 15,
) -> Tuple[Sequence[str], List[Dict]]:
    result = SweepRunner(
        FIG9B_SPEC,
        scale=scale,
        axes={"object_size": sizes},
        overrides={"seed": seed, "readers": readers},
    ).run()
    return HEADERS_9B, result.rows

"""Figure 9: FaRM key-value store, baseline vs LightSABRes.

9a: end-to-end lookup latency breakdown (one reader).  LightSABRes
remove stripping and buffer management entirely and shrink the
framework component (smaller instruction footprint); the application
component grows (the object is LLC- rather than L1-resident).  Net:
-26 % at 128 B to -52 % at 8 KB (paper: 35 % and 52 %).

9b: throughput with 15 reader threads: +30-60 % depending on size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.harness.common import objects_for_memory_residency
from repro.harness.report import scaled_duration
from repro.objstore.farm import FarmConfig, run_farm
from repro.workloads.generators import FIG1_SIZES

HEADERS_9A = (
    "object_size",
    "build",
    "transfer_ns",
    "framework_ns",
    "stripping_ns",
    "application_ns",
    "total_ns",
)
HEADERS_9B = ("object_size", "percl_gbps", "sabre_gbps", "improvement")


def _farm_cfg(size: int, use_sabre: bool, readers: int, scale: float, seed: int):
    return FarmConfig(
        use_sabre=use_sabre,
        object_size=size,
        n_objects=objects_for_memory_residency(size),
        readers=readers,
        duration_ns=scaled_duration(150_000.0, scale),
        warmup_ns=10_000.0,
        seed=seed,
    )


def run_fig9a(
    scale: float = 1.0, sizes: Sequence[int] = FIG1_SIZES, seed: int = 3
) -> Tuple[Sequence[str], List[Dict]]:
    rows = []
    for size in sizes:
        for use_sabre in (False, True):
            result = run_farm(_farm_cfg(size, use_sabre, 1, scale, seed))
            means = result.breakdown.means()
            rows.append(
                {
                    "object_size": size,
                    "build": "sabre" if use_sabre else "percl",
                    "transfer_ns": means["transfer"],
                    "framework_ns": means["framework"],
                    "stripping_ns": means["stripping"],
                    "application_ns": means["application"],
                    "total_ns": result.mean_latency_ns,
                }
            )
    return HEADERS_9A, rows


def run_fig9b(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG1_SIZES,
    seed: int = 3,
    readers: int = 15,
) -> Tuple[Sequence[str], List[Dict]]:
    rows = []
    for size in sizes:
        percl = run_farm(_farm_cfg(size, False, readers, scale, seed))
        sabre = run_farm(_farm_cfg(size, True, readers, scale, seed))
        rows.append(
            {
                "object_size": size,
                "percl_gbps": percl.goodput_gbps,
                "sabre_gbps": sabre.goodput_gbps,
                "improvement": sabre.goodput_gbps / percl.goodput_gbps - 1.0
                if percl.goodput_gbps > 0
                else float("nan"),
            }
        )
    return HEADERS_9B, rows

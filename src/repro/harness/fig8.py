"""Figure 8: conflict sensitivity.

16 reader threads access 100 LLC-resident objects uniformly at random
while 0-16 writer threads update CREW-partitioned subsets.  Throughput
degrades with conflict probability for both mechanisms; the SABRe
advantage *shrinks* with writers for small objects (retries dominate)
and *grows* for large ones (each software retry re-pays the
size-proportional strip).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.harness.common import objects_for_llc_residency
from repro.harness.report import scaled_duration
from repro.workloads.generators import FIG8_SIZES
from repro.workloads.microbench import MicrobenchConfig, run_microbench

HEADERS = (
    "object_size",
    "writers",
    "sabre_gbps",
    "percl_gbps",
    "sabre_advantage",
    "sabre_aborts",
    "percl_conflicts",
)

WRITER_COUNTS = (0, 4, 8, 12, 16)


def run_fig8(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG8_SIZES,
    writer_counts: Sequence[int] = WRITER_COUNTS,
    seed: int = 11,
) -> Tuple[Sequence[str], List[Dict]]:
    rows = []
    for size in sizes:
        for writers in writer_counts:
            row: Dict = {"object_size": size, "writers": writers}
            for mechanism in ("sabre", "percl_versions"):
                cfg = MicrobenchConfig(
                    mechanism=mechanism,
                    object_size=size,
                    n_objects=objects_for_llc_residency(),
                    readers=16,
                    writers=writers,
                    duration_ns=scaled_duration(120_000.0, scale),
                    warmup_ns=15_000.0,
                    seed=seed,
                    # Writers pace themselves (the paper's writer loop has
                    # its own application work); keeps conflict rates in
                    # the regime Fig. 8 explores rather than saturating.
                    writer_think_ns=1500.0,
                )
                result = run_microbench(cfg)
                if mechanism == "sabre":
                    row["sabre_gbps"] = result.goodput_gbps
                    row["sabre_aborts"] = result.sabre_aborts
                else:
                    row["percl_gbps"] = result.goodput_gbps
                    row["percl_conflicts"] = result.software_conflicts
            row["sabre_advantage"] = (
                row["sabre_gbps"] / row["percl_gbps"] - 1.0
                if row["percl_gbps"] > 0
                else float("nan")
            )
            rows.append(row)
    return HEADERS, rows

"""Figure 8: conflict sensitivity.

16 reader threads access 100 LLC-resident objects uniformly at random
while 0-16 writer threads update CREW-partitioned subsets.  Throughput
degrades with conflict probability for both mechanisms; the SABRe
advantage *shrinks* with writers for small objects (retries dominate)
and *grows* for large ones (each software retry re-pays the
size-proportional strip).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments import ExperimentSpec, SweepRunner, Variant, register
from repro.harness.common import objects_for_llc_residency
from repro.harness.report import scaled_duration
from repro.workloads.generators import FIG8_SIZES
from repro.workloads.microbench import MicrobenchConfig, run_microbench

HEADERS = (
    "object_size",
    "writers",
    "sabre_gbps",
    "percl_gbps",
    "sabre_advantage",
    "sabre_aborts",
    "percl_conflicts",
)

WRITER_COUNTS = (0, 4, 8, 12, 16)


def _fig8_point(ctx) -> Dict:
    p = ctx.params
    cfg = MicrobenchConfig(
        mechanism=p["mechanism"],
        object_size=p["object_size"],
        n_objects=objects_for_llc_residency(),
        readers=16,
        writers=p["writers"],
        duration_ns=scaled_duration(120_000.0, ctx.scale),
        warmup_ns=15_000.0,
        seed=p["seed"],
        # Writers pace themselves (the paper's writer loop has its own
        # application work); keeps conflict rates in the regime Fig. 8
        # explores rather than saturating.
        writer_think_ns=1500.0,
    )
    result = run_microbench(cfg)
    if p["mechanism"] == "sabre":
        return {
            "sabre_gbps": result.goodput_gbps,
            "sabre_aborts": result.sabre_aborts,
        }
    return {
        "percl_gbps": result.goodput_gbps,
        "percl_conflicts": result.software_conflicts,
    }


def _fig8_finalize(row: Dict) -> Dict:
    row["sabre_advantage"] = (
        row["sabre_gbps"] / row["percl_gbps"] - 1.0
        if row["percl_gbps"] > 0
        else float("nan")
    )
    return row


FIG8_SPEC = register(
    ExperimentSpec(
        name="fig8",
        description="conflict sensitivity: SABRe vs perCL throughput under "
        "0-16 CREW writers",
        axes={"object_size": FIG8_SIZES, "writers": WRITER_COUNTS},
        variants=(
            Variant("sabre", {"mechanism": "sabre"}),
            Variant("percl", {"mechanism": "percl_versions"}),
        ),
        defaults={"seed": 11},
        finalize_row=_fig8_finalize,
        headers=HEADERS,
        point_fn=_fig8_point,
        base_seed=11,
    )
)


def run_fig8(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG8_SIZES,
    writer_counts: Sequence[int] = WRITER_COUNTS,
    seed: int = 11,
) -> Tuple[Sequence[str], List[Dict]]:
    result = SweepRunner(
        FIG8_SPEC,
        scale=scale,
        axes={"object_size": sizes, "writers": writer_counts},
        overrides={"seed": seed},
    ).run()
    return HEADERS, result.rows

"""Tables 1 and 2, regenerated from code (taxonomy and configuration)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import ClusterConfig, default_cluster
from repro.core.design_space import design_space_table


def table1() -> str:
    """Table 1: design space for one-sided atomic object reads."""
    return design_space_table()


TABLE2_HEADERS = ("component", "parameters")


def table2_rows(cfg: ClusterConfig = None) -> Tuple[Sequence[str], List[Dict]]:
    """Table 2: system parameters, read back from the live config."""
    cfg = cfg or default_cluster()
    node = cfg.node
    rows = [
        {
            "component": "Cores",
            "parameters": (
                f"{node.cores.count}x ARM Cortex-A57-like, 64-bit, "
                f"{node.cores.freq_ghz:g} GHz, OoO, "
                f"{node.cores.dispatch_width}-wide dispatch/retirement, "
                f"{node.cores.rob_entries}-entry ROB"
            ),
        },
        {
            "component": "L1 Caches",
            "parameters": (
                f"{node.caches.l1d_bytes // 1024} KB L1d, "
                f"{node.caches.l1i_bytes // 1024} KB L1i, "
                f"{node.caches.block_bytes}-byte blocks, "
                f"{node.caches.l1_mshrs} MSHRs, "
                f"{node.caches.l1_latency_cycles}-cycle latency"
            ),
        },
        {
            "component": "LLC",
            "parameters": (
                f"Shared block-interleaved NUCA, "
                f"{node.caches.llc_bytes // (1024 * 1024)} MB total, "
                f"{node.caches.llc_banks} banks, "
                f"{node.caches.llc_latency_cycles}-cycle latency"
            ),
        },
        {
            "component": "Coherence",
            "parameters": "Directory-based (behavioral MESI: dirty-owner "
            "forwarding, invalidation snooping, eviction notifications)",
        },
        {
            "component": "Memory",
            "parameters": (
                f"{node.memory.latency_ns:g} ns latency, "
                f"{node.memory.channels}x{node.memory.channel_gbps:g} GBps (DDR4)"
            ),
        },
        {
            "component": "Interconnect",
            "parameters": (
                f"2D mesh {node.noc.width}x{node.noc.height}, "
                f"{node.noc.link_bytes} B links, "
                f"{node.noc.cycles_per_hop} cycles/hop"
            ),
        },
        {
            "component": "RMC",
            "parameters": (
                f"3 independent pipelines (RGP, RCP, R2P2) @ "
                f"{node.rmc.freq_ghz:g} GHz; one RGP/RCP frontend per core; "
                f"{node.rmc.backends} RGP/RCP backends & R2P2s across edge"
            ),
        },
        {
            "component": "LightSABRes",
            "parameters": (
                f"{node.sabre.stream_buffers} {node.sabre.stream_buffer_depth}"
                f"-entry stream buffers per R2P2 "
                f"({node.sabre.total_sram_bytes()} B SRAM)"
            ),
        },
        {
            "component": "Network",
            "parameters": (
                f"Fixed {cfg.fabric.hop_latency_ns:g} ns latency per hop, "
                f"{cfg.fabric.link_gbps:g} GBps"
            ),
        },
    ]
    return TABLE2_HEADERS, rows

"""Tables 1 and 2, regenerated from code (taxonomy and configuration)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import ClusterConfig, default_cluster
from repro.core.design_space import CcMethod, CcSide, DESIGN_SPACE, design_space_table
from repro.experiments import ExperimentSpec, SweepRunner, register

TABLE1_HEADERS = ("cc_method", "source", "destination")


def table1() -> str:
    """Table 1: design space for one-sided atomic object reads."""
    return design_space_table()


def _table1_point(ctx) -> Dict:
    method = CcMethod(ctx.params["cc_method"])
    cells = {"source": "", "destination": ""}
    for point in DESIGN_SPACE:
        if point.method is method:
            cells[point.side.value] = ", ".join(point.systems)
    return cells


TABLE1_SPEC = register(
    ExperimentSpec(
        name="table1",
        description="design space for one-sided atomic object reads "
        "(CC side x CC method)",
        axes={"cc_method": tuple(m.value for m in (CcMethod.LOCKING, CcMethod.OCC))},
        headers=TABLE1_HEADERS,
        point_fn=_table1_point,
    )
)


def table1_rows() -> Tuple[Sequence[str], List[Dict]]:
    """Table 1 as uniform row dicts (the CLI/JSON shape)."""
    return TABLE1_HEADERS, SweepRunner(TABLE1_SPEC).run().rows


TABLE2_HEADERS = ("component", "parameters")

#: Component name -> parameter-string formatter over the live config.
_COMPONENT_FORMATTERS: Dict[str, Callable[[ClusterConfig], str]] = {
    "Cores": lambda cfg: (
        f"{cfg.node.cores.count}x ARM Cortex-A57-like, 64-bit, "
        f"{cfg.node.cores.freq_ghz:g} GHz, OoO, "
        f"{cfg.node.cores.dispatch_width}-wide dispatch/retirement, "
        f"{cfg.node.cores.rob_entries}-entry ROB"
    ),
    "L1 Caches": lambda cfg: (
        f"{cfg.node.caches.l1d_bytes // 1024} KB L1d, "
        f"{cfg.node.caches.l1i_bytes // 1024} KB L1i, "
        f"{cfg.node.caches.block_bytes}-byte blocks, "
        f"{cfg.node.caches.l1_mshrs} MSHRs, "
        f"{cfg.node.caches.l1_latency_cycles}-cycle latency"
    ),
    "LLC": lambda cfg: (
        f"Shared block-interleaved NUCA, "
        f"{cfg.node.caches.llc_bytes // (1024 * 1024)} MB total, "
        f"{cfg.node.caches.llc_banks} banks, "
        f"{cfg.node.caches.llc_latency_cycles}-cycle latency"
    ),
    "Coherence": lambda cfg: (
        "Directory-based (behavioral MESI: dirty-owner forwarding, "
        "invalidation snooping, eviction notifications)"
    ),
    "Memory": lambda cfg: (
        f"{cfg.node.memory.latency_ns:g} ns latency, "
        f"{cfg.node.memory.channels}x{cfg.node.memory.channel_gbps:g} GBps (DDR4)"
    ),
    "Interconnect": lambda cfg: (
        f"2D mesh {cfg.node.noc.width}x{cfg.node.noc.height}, "
        f"{cfg.node.noc.link_bytes} B links, "
        f"{cfg.node.noc.cycles_per_hop} cycles/hop"
    ),
    "RMC": lambda cfg: (
        f"3 independent pipelines (RGP, RCP, R2P2) @ "
        f"{cfg.node.rmc.freq_ghz:g} GHz; one RGP/RCP frontend per core; "
        f"{cfg.node.rmc.backends} RGP/RCP backends & R2P2s across edge"
    ),
    "LightSABRes": lambda cfg: (
        f"{cfg.node.sabre.stream_buffers} {cfg.node.sabre.stream_buffer_depth}"
        f"-entry stream buffers per R2P2 "
        f"({cfg.node.sabre.total_sram_bytes()} B SRAM)"
    ),
    "Network": lambda cfg: (
        f"Fixed {cfg.fabric.hop_latency_ns:g} ns latency per hop, "
        f"{cfg.fabric.link_gbps:g} GBps"
    ),
}


def _table2_point(ctx) -> Dict:
    cluster = ctx.params.get("cluster") or default_cluster()
    formatter = _COMPONENT_FORMATTERS[ctx.params["component"]]
    return {"parameters": formatter(cluster)}


TABLE2_SPEC = register(
    ExperimentSpec(
        name="table2",
        description="system parameters of the simulated rack, read back "
        "from the live config",
        axes={"component": tuple(_COMPONENT_FORMATTERS)},
        defaults={"cluster": None},
        headers=TABLE2_HEADERS,
        point_fn=_table2_point,
    )
)


def table2_rows(
    cfg: Optional[ClusterConfig] = None,
) -> Tuple[Sequence[str], List[Dict]]:
    """Table 2: system parameters, read back from the live config."""
    result = SweepRunner(TABLE2_SPEC, overrides={"cluster": cfg}).run()
    return TABLE2_HEADERS, result.rows

"""Experiment harness: one module per paper figure/table."""

from repro.harness.report import format_table

__all__ = ["format_table"]

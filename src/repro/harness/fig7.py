"""Figure 7: microbenchmark latency (7a) and throughput (7b).

7a (one thread, synchronous ops, remote data memory-resident):
  * single-block transfers: remote reads == both LightSABRes variants;
  * LightSABRes-no-speculation pays the serialized version read
    (~one memory access, up to ~40 % for two-block SABRes);
  * LightSABRes match remote reads, with a small gap above 2 KB from
    pinning each SABRe to a single R2P2.

7b (16 threads, asynchronous ops): remote reads and LightSABRes have
identical throughput curves, reaching the fabric-limited peak.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import ClusterConfig, SabreMode
from repro.harness.common import objects_for_memory_residency
from repro.harness.report import scaled_duration
from repro.workloads.generators import FIG7_SIZES
from repro.workloads.microbench import MicrobenchConfig, run_microbench

HEADERS_7A = ("object_size", "remote_read_ns", "sabre_no_spec_ns", "sabre_ns")
HEADERS_7B = ("object_size", "remote_read_gbps", "sabre_gbps")

_VARIANTS_7A = (
    ("remote_read_ns", "remote_read", SabreMode.SPECULATIVE),
    ("sabre_no_spec_ns", "sabre", SabreMode.NO_SPECULATION),
    ("sabre_ns", "sabre", SabreMode.SPECULATIVE),
)


def run_fig7a(
    scale: float = 1.0, sizes: Sequence[int] = FIG7_SIZES, seed: int = 5
) -> Tuple[Sequence[str], List[Dict]]:
    rows = []
    for size in sizes:
        row: Dict = {"object_size": size}
        for column, mechanism, mode in _VARIANTS_7A:
            cfg = MicrobenchConfig(
                mechanism=mechanism,
                object_size=size,
                n_objects=objects_for_memory_residency(size),
                readers=1,
                writers=0,
                duration_ns=scaled_duration(60_000.0, scale),
                warmup_ns=5_000.0,
                seed=seed,
                cluster=ClusterConfig().with_sabre_mode(mode),
            )
            row[column] = run_microbench(cfg).mean_transfer_latency_ns
        rows.append(row)
    return HEADERS_7A, rows


def run_fig7b(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG7_SIZES,
    seed: int = 5,
    readers: int = 16,
    window: int = 8,
) -> Tuple[Sequence[str], List[Dict]]:
    rows = []
    for size in sizes:
        row: Dict = {"object_size": size}
        for column, mechanism in (
            ("remote_read_gbps", "remote_read"),
            ("sabre_gbps", "sabre"),
        ):
            cfg = MicrobenchConfig(
                mechanism=mechanism,
                object_size=size,
                n_objects=objects_for_memory_residency(size),
                readers=readers,
                writers=0,
                async_window=window,
                duration_ns=scaled_duration(80_000.0, scale),
                warmup_ns=10_000.0,
                seed=seed,
            )
            row[column] = run_microbench(cfg).goodput_gbps
        rows.append(row)
    return HEADERS_7B, rows

"""Figure 7: microbenchmark latency (7a) and throughput (7b).

7a (one thread, synchronous ops, remote data memory-resident):
  * single-block transfers: remote reads == both LightSABRes variants;
  * LightSABRes-no-speculation pays the serialized version read
    (~one memory access, up to ~40 % for two-block SABRes);
  * LightSABRes match remote reads, with a small gap above 2 KB from
    pinning each SABRe to a single R2P2.

7b (16 threads, asynchronous ops): remote reads and LightSABRes have
identical throughput curves, reaching the fabric-limited peak.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.common.config import ClusterConfig, SabreMode
from repro.experiments import ExperimentSpec, SweepRunner, Variant, register
from repro.harness.common import objects_for_memory_residency
from repro.harness.report import scaled_duration
from repro.workloads.generators import FIG7_SIZES
from repro.workloads.microbench import MicrobenchConfig, run_microbench

HEADERS_7A = ("object_size", "remote_read_ns", "sabre_no_spec_ns", "sabre_ns")
HEADERS_7B = ("object_size", "remote_read_gbps", "sabre_gbps")


def _fig7a_point(ctx) -> Dict:
    p = ctx.params
    size = p["object_size"]
    cfg = MicrobenchConfig(
        mechanism=p["mechanism"],
        object_size=size,
        n_objects=objects_for_memory_residency(size),
        readers=1,
        writers=0,
        duration_ns=scaled_duration(60_000.0, ctx.scale),
        warmup_ns=5_000.0,
        seed=p["seed"],
        cluster=ClusterConfig().with_sabre_mode(p["mode"]),
    )
    return {ctx.variant: run_microbench(cfg).mean_transfer_latency_ns}


FIG7A_SPEC = register(
    ExperimentSpec(
        name="fig7a",
        description="one-sided operation latency: remote read vs SABRe "
        "variants across object sizes",
        axes={"object_size": FIG7_SIZES},
        variants=(
            Variant(
                "remote_read_ns",
                {"mechanism": "remote_read", "mode": SabreMode.SPECULATIVE},
            ),
            Variant(
                "sabre_no_spec_ns",
                {"mechanism": "sabre", "mode": SabreMode.NO_SPECULATION},
            ),
            Variant(
                "sabre_ns",
                {"mechanism": "sabre", "mode": SabreMode.SPECULATIVE},
            ),
        ),
        defaults={"seed": 5},
        headers=HEADERS_7A,
        point_fn=_fig7a_point,
        base_seed=5,
    )
)


def _fig7b_point(ctx) -> Dict:
    p = ctx.params
    size = p["object_size"]
    cfg = MicrobenchConfig(
        mechanism=p["mechanism"],
        object_size=size,
        n_objects=objects_for_memory_residency(size),
        readers=p["readers"],
        writers=0,
        async_window=p["window"],
        duration_ns=scaled_duration(80_000.0, ctx.scale),
        warmup_ns=10_000.0,
        seed=p["seed"],
    )
    return {ctx.variant: run_microbench(cfg).goodput_gbps}


FIG7B_SPEC = register(
    ExperimentSpec(
        name="fig7b",
        description="asynchronous peak throughput: remote read vs SABRe "
        "across object sizes",
        axes={"object_size": FIG7_SIZES},
        variants=(
            Variant("remote_read_gbps", {"mechanism": "remote_read"}),
            Variant("sabre_gbps", {"mechanism": "sabre"}),
        ),
        defaults={"seed": 5, "readers": 16, "window": 8},
        headers=HEADERS_7B,
        point_fn=_fig7b_point,
        base_seed=5,
    )
)


def run_fig7a(
    scale: float = 1.0, sizes: Sequence[int] = FIG7_SIZES, seed: int = 5
) -> Tuple[Sequence[str], List[Dict]]:
    result = SweepRunner(
        FIG7A_SPEC,
        scale=scale,
        axes={"object_size": sizes},
        overrides={"seed": seed},
    ).run()
    return HEADERS_7A, result.rows


def run_fig7b(
    scale: float = 1.0,
    sizes: Sequence[int] = FIG7_SIZES,
    seed: int = 5,
    readers: int = 16,
    window: int = 8,
) -> Tuple[Sequence[str], List[Dict]]:
    result = SweepRunner(
        FIG7B_SPEC,
        scale=scale,
        axes={"object_size": sizes},
        overrides={"seed": seed, "readers": readers, "window": window},
    ).run()
    return HEADERS_7B, result.rows

"""Figure 1: end-to-end latency breakdown of atomic remote object reads
using FaRM's per-cache-line-versions mechanism over soNUMA.

The paper's claim: the software atomicity check (version stripping) is
~10 % of end-to-end latency for 128 B objects but scales nearly
linearly with object size, reaching ~half of the end-to-end latency
for 8 KB objects, while the soNUMA transfer itself scales sublinearly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments import ExperimentSpec, SweepRunner, register
from repro.harness.common import objects_for_memory_residency
from repro.harness.report import scaled_duration
from repro.objstore.farm import FarmConfig, run_farm
from repro.workloads.generators import FIG1_SIZES

HEADERS = (
    "object_size",
    "transfer_ns",
    "framework_app_ns",
    "stripping_ns",
    "total_ns",
    "stripping_share",
)


def _fig1_point(ctx) -> Dict:
    p = ctx.params
    size = p["object_size"]
    cfg = FarmConfig(
        use_sabre=False,
        object_size=size,
        n_objects=objects_for_memory_residency(size),
        readers=1,
        duration_ns=scaled_duration(150_000.0, ctx.scale),
        warmup_ns=10_000.0,
        seed=p["seed"],
    )
    means = run_farm(cfg).breakdown.means()
    framework_app = means["framework"] + means["application"]
    total = means["transfer"] + framework_app + means["stripping"]
    return {
        "transfer_ns": means["transfer"],
        "framework_app_ns": framework_app,
        "stripping_ns": means["stripping"],
        "total_ns": total,
        "stripping_share": means["stripping"] / total,
    }


FIG1_SPEC = register(
    ExperimentSpec(
        name="fig1",
        description="FaRM perCL-version read latency breakdown vs object size",
        axes={"object_size": FIG1_SIZES},
        defaults={"seed": 1},
        headers=HEADERS,
        point_fn=_fig1_point,
    )
)


def run_fig1(
    scale: float = 1.0, sizes: Sequence[int] = FIG1_SIZES, seed: int = 1
) -> Tuple[Sequence[str], List[Dict]]:
    """One FaRM reader, baseline (per-cache-line versions) build."""
    result = SweepRunner(
        FIG1_SPEC,
        scale=scale,
        axes={"object_size": sizes},
        overrides={"seed": seed},
    ).run()
    return HEADERS, result.rows

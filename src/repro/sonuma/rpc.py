"""RPC over soNUMA messaging.

FaRM sends *writes* to the data owner over an RPC (§2.1); HERD-style
systems use RPCs for everything (§8).  This endpoint models a
dispatcher with a bounded worker pool: requests queue, each costs a
dispatch overhead plus a handler-defined service time, and the reply
travels back as a fabric packet.
"""

from __future__ import annotations

import itertools
from types import GeneratorType
from typing import Any, Callable, Dict, Generator, Optional, Tuple, Union

from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import (
    LinkPartitionedError,
    ProtocolError,
    ShardCrashedError,
)
from repro.fabric.packets import Packet, PacketKind
from repro.sim.engine import Event
from repro.sim.resources import FifoResource
from repro.sonuma.transfer import prune_straggler_book

#: What serving one request yields: (reply payload, extra service ns).
RpcReply = Tuple[bytes, float]

#: Handler: payload -> reply, either directly or as a *generator* that
#: yields simulation events (timed memory writes, nested RPCs, ...)
#: before returning the reply tuple — used by services whose request
#: handling has internal timing structure, like the sharded store's
#: replicated writes.  Generator handlers may also yield a bare
#: ``float`` — a plain delay in ns — which the dispatcher turns into a
#: scheduled continuation without allocating a Timeout event (the
#: per-block fast path of the sharded store's update loop).
RpcHandler = Callable[
    [bytes], Union[RpcReply, Generator[Union[Event, float], Any, RpcReply]]
]


class RpcEndpoint:
    """Per-node RPC dispatcher attached to the node's NI."""

    def __init__(self, node, workers: int = 2, costs: SoftwareCosts = DEFAULT_COSTS):
        self.node = node
        self.sim = node.sim
        self.costs = costs
        self._handlers: Dict[str, RpcHandler] = {}
        #: rpc id -> (completion, dst node, watchdog handle or None).
        self._pending: Dict[int, Tuple[Event, int, Any]] = {}
        #: rpc id -> failure time, for calls failed by a crash or a
        #: watchdog: a reply that was already on the wire for one is
        #: dropped, not a protocol error.  Pruned by
        #: :func:`prune_straggler_book` so crash soaks cannot grow
        #: this without bound.
        self._failed: Dict[int, float] = {}
        self._workers = FifoResource(self.sim, capacity=workers)
        self._rpc_id = itertools.count(node.node_id << 48)
        # Per-call constants, hoisted off the costs object (one RPC may
        # fan out to thousands of calls in the write-heavy scenarios).
        self._dispatch_ns = costs.rpc_dispatch_ns
        self._marshal_per_byte = costs.rpc_marshal_ns_per_byte
        #: name -> shared ``{"name": name}`` meta dict.  RPC packet meta
        #: is read-only downstream, so every call to the same handler
        #: can carry the same dict instead of allocating one per call.
        self._name_meta: Dict[str, Dict[str, str]] = {}
        self.served = 0
        self.failed_calls = 0
        self.timed_out_calls = 0
        #: Watchdogs that fired against a live peer and re-armed — how
        #: often gray failures *tested* the slow-not-dead hardening.
        self.watchdog_rearms = 0
        #: Gray-failure dial: scales dispatch and handler service time
        #: for every request served here.  Read at fire time, so the
        #: fault injector can open/close windows mid-request-stream.
        self.service_multiplier = 1.0
        node.attach_rpc(self._on_packet)
        node.rpc_endpoint = self

    def register(self, name: str, handler: RpcHandler) -> None:
        self._handlers[name] = handler

    # ------------------------------------------------------------------
    def call(
        self,
        dst_node: int,
        name: str,
        payload: bytes,
        timeout_ns: Optional[float] = None,
    ) -> Event:
        """Issue an RPC; the returned event triggers with the reply
        bytes — or, on failure, with a :class:`ShardCrashedError`
        *value* the caller must check for.

        Failure happens three ways: the destination's lease already
        expired when the call was issued (fail fast, nothing is sent);
        the failover subsystem fails the call at crash time
        (:meth:`fail_pending_to`); or ``timeout_ns`` elapsed with no
        reply (a client-side watchdog, cancelled when the reply lands —
        the belt to the crash notification's braces)."""
        rpc_id = next(self._rpc_id)
        completion = self.sim.event()
        fabric = self.node.fabric
        src_node = self.node.node_id
        if (
            not fabric.observed_alive(src_node, dst_node)
            or not self.node.alive
        ):
            # Destination's lease expired *in this caller's (possibly
            # skewed) view* — or this node's own did: a zombie handler
            # on a crashed node cannot send, and registering the call
            # would leak it forever (the fabric drops dead-source
            # packets, so no reply can ever arrive).  A skewed caller
            # that has not yet observed a crash sends anyway; its call
            # is failed when the delayed crash notification reaches it.
            self.failed_calls += 1
            self.sim.call_later(
                self._dispatch_ns,
                lambda: completion.succeed(
                    ShardCrashedError(dst_node, f"rpc {name!r} not sent")
                ),
            )
            return completion
        if fabric.link_severed(src_node, dst_node):
            # A partition window severs the conversation: nothing new
            # is sent (in-flight exchanges drain — the fabric stays
            # lossless).  The typed subclass keeps every crash-handling
            # path working while letting tests tell the cases apart.
            self.failed_calls += 1
            fabric.partition_refusals += 1
            self.sim.call_later(
                self._dispatch_ns,
                lambda: completion.succeed(
                    LinkPartitionedError(
                        src_node, dst_node, f"rpc {name!r} not sent"
                    )
                ),
            )
            return completion
        marshal = self._marshal_per_byte * len(payload)
        watchdog = None
        if timeout_ns is not None:
            # A skewed caller's local timer runs behind: its watchdog
            # deadline stretches by its skew, exactly like the lease
            # expiry it backstops.
            skew = fabric.clock_skew_ns(src_node)
            watchdog = self.sim.call_later(
                marshal + timeout_ns + skew,
                lambda: self._expire(rpc_id, dst_node, timeout_ns + skew),
            )
        self._pending[rpc_id] = (completion, dst_node, watchdog)
        meta = self._name_meta.get(name)
        if meta is None:
            meta = self._name_meta[name] = {"name": name}
        pkt = Packet(
            PacketKind.RPC_SEND,
            self.node.node_id,
            dst_node,
            transfer_id=rpc_id,
            size_bytes=len(payload),
            payload=payload,
            meta=meta,
        )
        self.sim.call_later(marshal, self.node.fabric.send, pkt)
        return completion

    # ------------------------------------------------------------------
    # failure paths (failover subsystem)
    # ------------------------------------------------------------------
    def _fail(self, rpc_id: int, error: ShardCrashedError) -> bool:
        entry = self._pending.pop(rpc_id, None)
        if entry is None:
            return False
        completion, _dst, watchdog = entry
        if watchdog is not None:
            self.sim.cancel_call(watchdog)
        now = self.sim.now
        self._failed = prune_straggler_book(self._failed, now)
        self._failed[rpc_id] = now
        self.failed_calls += 1
        completion.succeed(error)
        return True

    def _expire(self, rpc_id: int, dst_node: int, timeout_ns: float) -> None:
        entry = self._pending.get(rpc_id)
        if entry is None:
            return
        if self.node.fabric.observed_alive(self.node.node_id, dst_node):
            # Slow, not dead: the peer's lease is intact, so the reply
            # is still coming (and server-side effects like acquired
            # locks are real — failing now would orphan them).  Re-arm
            # and keep waiting; a real crash fails the call instantly
            # via fail_pending_to.
            self.watchdog_rearms += 1
            completion, dst, _old = entry
            watchdog = self.sim.call_later(
                timeout_ns, lambda: self._expire(rpc_id, dst_node, timeout_ns)
            )
            self._pending[rpc_id] = (completion, dst, watchdog)
            return
        if self._fail(rpc_id, ShardCrashedError(dst_node, "rpc timed out")):
            self.timed_out_calls += 1

    def fail_pending_to(self, dst_node: int) -> int:
        """Fail every pending call addressed to ``dst_node`` with a
        typed :class:`ShardCrashedError`; returns how many failed."""
        doomed = [
            rpc_id
            for rpc_id, (_ev, dst, _wd) in self._pending.items()
            if dst == dst_node
        ]
        for rpc_id in doomed:
            self._fail(rpc_id, ShardCrashedError(dst_node, "rpc in flight"))
        return len(doomed)

    def fail_all_pending(self) -> int:
        """Fail every pending call on this endpoint — used when the
        *owning node* crashes: replies addressed to its dead NI will be
        dropped, so no pending call here can ever resolve."""
        doomed = list(self._pending)
        for rpc_id in doomed:
            _ev, dst, _wd = self._pending[rpc_id]
            self._fail(
                rpc_id, ShardCrashedError(dst, "caller crashed")
            )
        return len(doomed)

    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        if pkt.kind is PacketKind.RPC_SEND:
            self._serve(pkt)
        elif pkt.kind is PacketKind.RPC_REPLY:
            entry = self._pending.pop(pkt.transfer_id, None)
            if entry is None:
                if self._failed.pop(pkt.transfer_id, None) is not None:
                    # The call was already failed (crash or watchdog);
                    # its straggler reply is dropped.
                    return
                raise ProtocolError(f"reply for unknown RPC {pkt.transfer_id}")
            completion, _dst, watchdog = entry
            if watchdog is not None:
                self.sim.cancel_call(watchdog)
            completion.succeed(pkt.payload)
        else:
            raise ProtocolError(f"RPC endpoint cannot handle {pkt.kind}")

    def _serve(self, pkt: Packet) -> None:
        """Serve one request on the worker pool.

        This is a *flattened* version of the obvious generator process
        (``yield acquire; yield timeout(dispatch); run handler; yield
        timeout(service); reply``): the common request/reply shape
        costs two scheduled callbacks instead of a full
        :class:`~repro.sim.engine.Process` plus one event per step.
        Generator handlers are driven by the same minimal trampoline
        (:meth:`_drive`), one callback per yielded event.
        """
        name = pkt.meta["name"]
        handler = self._handlers.get(name)
        if handler is None:
            raise ProtocolError(f"no RPC handler named {name!r}")
        sim = self.sim
        dispatch_ns = self._dispatch_ns

        def granted(_ev: Event) -> None:
            # service_multiplier is read at fire time on both dispatch
            # and service legs, so a gray window opening mid-queue slows
            # exactly the requests it should (1.0 costs one multiply).
            sim.call_later(dispatch_ns * self.service_multiplier, run)

        def run() -> None:
            try:
                outcome = handler(pkt.payload or b"")
            except BaseException:
                self._workers.release()
                raise
            if type(outcome) is GeneratorType:
                self._drive(outcome, None, finish)
            else:
                finish(outcome)

        def finish(outcome: RpcReply) -> None:
            try:
                reply_payload, service_ns = outcome
            except BaseException:
                # Malformed outcome (e.g. a generator handler that fell
                # off the end): release before propagating, matching
                # the old generator _serve's try/finally guarantee.
                self._workers.release()
                raise
            if service_ns > 0:
                sim.call_later(
                    service_ns * self.service_multiplier,
                    complete,
                    reply_payload,
                )
            else:
                complete(reply_payload)

        def complete(reply_payload: bytes) -> None:
            self.served += 1
            try:
                reply = Packet(
                    PacketKind.RPC_REPLY,
                    self.node.node_id,
                    pkt.src_node,
                    transfer_id=pkt.transfer_id,
                    size_bytes=len(reply_payload),
                    payload=reply_payload,
                )
                self.node.fabric.send(reply)
            finally:
                self._workers.release()

        self._workers.acquire().add_callback(granted)

    def _drive(
        self,
        gen: Generator[Event, Any, RpcReply],
        send_value: Any,
        finish: Callable[[RpcReply], None],
    ) -> None:
        """Minimal trampoline for generator handlers: step the
        generator, park its continuation directly on the yielded event
        — no per-step :class:`Process` machinery.  The worker slot is
        released on the error path so a raising handler cannot strand
        the pool."""
        try:
            target = gen.send(send_value)
        except StopIteration as stop:
            finish(stop.value)
            return
        except BaseException:
            self._workers.release()
            raise
        cls = type(target)
        if cls is float or cls is int:
            # A bare delay: schedule the continuation directly.  Same
            # (when, seq) position as a Timeout's dispatch would get,
            # minus the event allocation and callback plumbing.
            try:
                self.sim.call_later(target, self._drive, gen, None, finish)
            except BaseException:
                self._workers.release()  # e.g. a negative computed delay
                raise
            return
        if not isinstance(target, Event):
            self._workers.release()
            raise ProtocolError(
                f"RPC handler yielded {target!r}; handlers must "
                f"yield Events or float delays"
            )
        target.add_callback(
            lambda ev: self._drive(gen, ev.value, finish)
        )

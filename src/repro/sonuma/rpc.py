"""RPC over soNUMA messaging.

FaRM sends *writes* to the data owner over an RPC (§2.1); HERD-style
systems use RPCs for everything (§8).  This endpoint models a
dispatcher with a bounded worker pool: requests queue, each costs a
dispatch overhead plus a handler-defined service time, and the reply
travels back as a fabric packet.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Dict, Generator, Tuple, Union

from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ProtocolError
from repro.fabric.packets import Packet, PacketKind
from repro.sim.engine import Event
from repro.sim.resources import FifoResource

#: What serving one request yields: (reply payload, extra service ns).
RpcReply = Tuple[bytes, float]

#: Handler: payload -> reply, either directly or as a *generator* that
#: yields simulation events (timed memory writes, nested RPCs, ...)
#: before returning the reply tuple — used by services whose request
#: handling has internal timing structure, like the sharded store's
#: replicated writes.
RpcHandler = Callable[
    [bytes], Union[RpcReply, Generator[Event, Any, RpcReply]]
]


class RpcEndpoint:
    """Per-node RPC dispatcher attached to the node's NI."""

    def __init__(self, node, workers: int = 2, costs: SoftwareCosts = DEFAULT_COSTS):
        self.node = node
        self.sim = node.sim
        self.costs = costs
        self._handlers: Dict[str, RpcHandler] = {}
        self._pending: Dict[int, Event] = {}
        self._workers = FifoResource(self.sim, capacity=workers)
        self._rpc_id = itertools.count(node.node_id << 48)
        self.served = 0
        node.attach_rpc(self._on_packet)

    def register(self, name: str, handler: RpcHandler) -> None:
        self._handlers[name] = handler

    # ------------------------------------------------------------------
    def call(self, dst_node: int, name: str, payload: bytes) -> Event:
        """Issue an RPC; the returned event triggers with the reply bytes."""
        rpc_id = next(self._rpc_id)
        completion = self.sim.event()
        self._pending[rpc_id] = completion
        pkt = Packet(
            PacketKind.RPC_SEND,
            self.node.node_id,
            dst_node,
            transfer_id=rpc_id,
            size_bytes=len(payload),
            payload=payload,
            meta={"name": name},
        )
        marshal = self.costs.rpc_marshal_ns_per_byte * len(payload)
        self.sim.call_later(marshal, lambda: self.node.fabric.send(pkt))
        return completion

    # ------------------------------------------------------------------
    def _on_packet(self, pkt: Packet) -> None:
        if pkt.kind is PacketKind.RPC_SEND:
            self.sim.process(self._serve(pkt))
        elif pkt.kind is PacketKind.RPC_REPLY:
            completion = self._pending.pop(pkt.transfer_id, None)
            if completion is None:
                raise ProtocolError(f"reply for unknown RPC {pkt.transfer_id}")
            completion.succeed(pkt.payload)
        else:
            raise ProtocolError(f"RPC endpoint cannot handle {pkt.kind}")

    def _serve(self, pkt: Packet):
        handler = self._handlers.get(pkt.meta["name"])
        if handler is None:
            raise ProtocolError(f"no RPC handler named {pkt.meta['name']!r}")
        yield self._workers.acquire()
        try:
            yield self.sim.timeout(self.costs.rpc_dispatch_ns)
            outcome = handler(pkt.payload or b"")
            if inspect.isgenerator(outcome):
                reply_payload, service_ns = yield from outcome
            else:
                reply_payload, service_ns = outcome
            if service_ns > 0:
                yield self.sim.timeout(service_ns)
            self.served += 1
            reply = Packet(
                PacketKind.RPC_REPLY,
                self.node.node_id,
                pkt.src_node,
                transfer_id=pkt.transfer_id,
                size_bytes=len(reply_payload),
                payload=reply_payload,
            )
            self.node.fabric.send(reply)
        finally:
            self._workers.release()

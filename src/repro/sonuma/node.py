"""A soNUMA node (SoC + RMC) and the two-node cluster of the paper.

Each node owns a 16-core chip model, physical memory, a split-NI RMC
(per-core frontends folded into fixed WQ/CQ costs; four RGP/RCP
backends and four R2P2s along the edge, Fig. 6), and a fabric
attachment.  Remote reads unroll into cache-block requests at the
source (§5); SABRes send a registration packet first and stay pinned
to one destination R2P2 (§5.1).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.atomicity.locks import ReaderWriterLockTable
from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolError, SimulationError
from repro.common.units import CACHE_BLOCK, blocks_in
from repro.core.r2p2 import R2P2Engine
from repro.fabric.network import Fabric
from repro.fabric.packets import (
    Packet,
    PacketKind,
    cas_request,
    read_request,
    sabre_registration,
    sabre_request,
    write_request,
)
from repro.mem.backing import PhysicalMemory
from repro.mem.system import ChipMemorySystem
from repro.noc.mesh import Mesh
from repro.sim.engine import Event, Simulator, block_mode
from repro.sim.resources import BandwidthServer
from repro.sim.stats import Counter
from repro.sonuma.transfer import (
    OpKind,
    SourceTransfer,
    TransferResult,
    TransferTimings,
    prune_straggler_book,
)

#: How long the source RMC takes to fail a WQ entry whose destination's
#: lease already expired (a local table lookup plus the CQ round trip —
#: no packet ever leaves the node).
CRASH_NOTICE_NS = 40.0

#: NI dispatch uses the precomputed ``PacketKind.route`` ints (see
#: :mod:`repro.fabric.packets`) instead of frozenset probes through
#: ``Enum.__hash__`` — dispatch is one of the hottest paths here.


class SoNode:
    """One rack node: chip + memory + RMC + NI."""

    __slots__ = ("sim", "node_id", "cfg", "cluster_cfg", "fabric", "mesh", "phys", "chip", "counters", "lock_table", "r2p2s", "_tid", "_transfers", "_completions", "_aborted", "_rgp", "_rcp", "_rmc_cycle", "_rcp_service", "_rpc_handler", "_alive_vec", "_batched", "rpc_endpoint")

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cluster_cfg: ClusterConfig,
        fabric: Fabric,
    ):
        self.sim = sim
        self.node_id = node_id
        self.cluster_cfg = cluster_cfg
        self.cfg = cluster_cfg.node
        self.fabric = fabric
        self.phys = PhysicalMemory(base=0x100000 * (node_id + 1))
        self.mesh = Mesh(self.cfg.noc)
        self.chip = ChipMemorySystem(
            sim, self.cfg, self.mesh, self.phys, name=f"node{node_id}"
        )
        self.lock_table = ReaderWriterLockTable()
        self.counters = Counter()

        backends = self.cfg.rmc.backends
        self.r2p2s = [
            R2P2Engine(
                sim,
                self.cfg,
                self.chip,
                node_id,
                index=i,
                tile=self.mesh.rmc_tile(i),
                # Late-binding on purpose: instrumentation (and tests)
                # may wrap fabric.send after construction.
                send_packet=self._send,
                lock_table=self.lock_table,
                counters=self.counters,
            )
            for i in range(backends)
        ]
        cycle = self.cfg.rmc.cycle_ns
        self._rgp = [
            BandwidthServer(sim, 1.0, f"n{node_id}.rgp[{i}]")
            for i in range(backends)
        ]
        self._rcp = [
            BandwidthServer(sim, 1.0, f"n{node_id}.rcp[{i}]")
            for i in range(backends)
        ]
        self._rmc_cycle = cycle
        # Reply pipeline service time, hoisted (same division
        # BandwidthServer.request would perform, bit-for-bit).
        self._rcp_service = cycle / self._rcp[0].rate
        self._transfers: Dict[int, SourceTransfer] = {}
        self._completions: Dict[int, Event] = {}
        #: Transfer id -> abort time, for transfers failed by
        #: :meth:`fail_transfers_to`; replies for them that were
        #: already on the wire at crash time are dropped silently
        #: instead of tripping the unknown-reply invariant.  Pruned by
        #: :func:`prune_straggler_book` so long crash soaks cannot
        #: grow it without bound.
        self._aborted: Dict[int, float] = {}
        self._tid = itertools.count(node_id << 32)
        self._rpc_handler = None
        #: Back-pointer set by RpcEndpoint.__init__ — the fault
        #: injector's handle on this node's RPC plane.
        self.rpc_endpoint = None
        # The fabric's aliveness vector mutates in place, so holding a
        # direct reference keeps the per-packet dead-NI check one list
        # index instead of two attribute hops and a method call.
        self._alive_vec = fabric._alive
        self._batched = block_mode() == "batched"
        fabric.attach(node_id, self._handle_packet)

    @property
    def alive(self) -> bool:
        """This node's membership as the fabric sees it (lease view)."""
        return self.fabric.alive(self.node_id)

    # ------------------------------------------------------------------
    # memory helpers
    # ------------------------------------------------------------------
    def alloc_buffer(self, size: int) -> int:
        """Allocate a node-local buffer (e.g. a reader's landing zone)."""
        return self.phys.allocate(max(size, CACHE_BLOCK), align=CACHE_BLOCK)

    # ------------------------------------------------------------------
    # one-sided operations (core-facing API)
    # ------------------------------------------------------------------
    def remote_read(
        self, dst_node: int, remote_addr: int, size: int, local_addr: int
    ) -> Event:
        """Post a one-sided remote read; the returned event triggers
        with a :class:`TransferResult` when the CQ entry is consumed."""
        return self._post(OpKind.REMOTE_READ, dst_node, remote_addr, size, local_addr)

    def sabre_read(
        self, dst_node: int, remote_addr: int, size: int, local_addr: int
    ) -> Event:
        """Post a SABRe (single-site atomic bulk read)."""
        return self._post(OpKind.SABRE, dst_node, remote_addr, size, local_addr)

    def remote_write(self, dst_node: int, remote_addr: int, data: bytes) -> Event:
        """Post a one-sided remote write (cache-block atomicity only)."""
        return self._post(
            OpKind.REMOTE_WRITE, dst_node, remote_addr, len(data), 0, payload=data
        )

    def remote_cas(
        self, dst_node: int, remote_addr: int, expected: int, desired: int
    ) -> Event:
        """Post a remote compare-and-swap on one 64-bit word — the
        cache-block-sized atomic RDMA offers (§1).  The completion's
        ``success`` reports whether the swap happened and
        ``cas_old_value`` the observed word."""
        rmc = self.cfg.rmc
        tid = next(self._tid)
        transfer = SourceTransfer(
            transfer_id=tid,
            op=OpKind.REMOTE_CAS,
            dst_node=dst_node,
            remote_addr=remote_addr,
            size_bytes=8,
            local_addr=0,
            total_blocks=1,
            backend=tid % rmc.backends,
        )
        transfer.timings.posted = self.sim.now
        self._transfers[tid] = transfer
        completion = self.sim.event()
        self._completions[tid] = completion
        fabric = self.fabric
        if not fabric.observed_alive(self.node_id, dst_node):
            return self._fail_transfer(transfer)
        if fabric.link_severed(self.node_id, dst_node):
            fabric.partition_refusals += 1
            return self._fail_transfer(transfer)
        pickup = rmc.wq_post_ns + rmc.wq_pickup_ns

        def unroll() -> None:
            transfer.timings.pickup = self.sim.now
            pkt = cas_request(
                self.node_id, dst_node, tid, remote_addr, expected, desired
            )
            pkt.meta["r2p2"] = (remote_addr // CACHE_BLOCK) % rmc.backends
            t = self._rgp[transfer.backend].request(self._rmc_cycle)
            transfer.timings.first_request = max(t, self.sim.now)
            self.sim.call_at(t, self.fabric.send, pkt)

        self.sim.call_later(pickup, unroll)
        return completion

    def _post(
        self,
        op: OpKind,
        dst_node: int,
        remote_addr: int,
        size: int,
        local_addr: int,
        payload: Optional[bytes] = None,
    ) -> Event:
        if size <= 0:
            raise SimulationError(f"transfer size must be positive: {size}")
        if dst_node == self.node_id:
            raise SimulationError("one-sided ops target remote nodes")
        rmc = self.cfg.rmc
        tid = next(self._tid)
        backend = tid % rmc.backends
        transfer = SourceTransfer(
            transfer_id=tid,
            op=op,
            dst_node=dst_node,
            remote_addr=remote_addr,
            size_bytes=size,
            local_addr=local_addr,
            total_blocks=blocks_in(size),
            backend=backend,
            payload=payload,
        )
        transfer.timings.posted = self.sim.now
        self._transfers[tid] = transfer
        completion = self.sim.event()
        self._completions[tid] = completion
        fabric = self.fabric
        if not fabric.observed_alive(self.node_id, dst_node):
            # In the poster's (possibly skewed) lease view the target
            # is down; a drop window between the pair refuses the post
            # the same way — a one-sided read whose reply cannot return
            # is as failed as one that cannot be sent.
            return self._fail_transfer(transfer)
        if fabric.link_severed(self.node_id, dst_node):
            fabric.partition_refusals += 1
            return self._fail_transfer(transfer)
        pickup_delay = rmc.wq_post_ns + rmc.wq_pickup_ns
        self.sim.call_later(pickup_delay, self._unroll, transfer)
        return completion

    # ------------------------------------------------------------------
    # failover: transfer failure paths
    # ------------------------------------------------------------------
    def _fail_transfer(self, transfer: SourceTransfer) -> Event:
        """Complete ``transfer`` as crash-failed: ``success=False`` and
        ``crashed=True`` in the CQ entry, delivered after the local
        lease-table lookup.  Used both for posts targeting an already
        dead node and for in-flight transfers aborted at crash time."""
        transfer.completed = True
        completion = self._completions.pop(transfer.transfer_id)
        del self._transfers[transfer.transfer_id]

        def deliver() -> None:
            transfer.timings.completed = self.sim.now
            completion.succeed(
                TransferResult(
                    transfer_id=transfer.transfer_id,
                    op=transfer.op,
                    success=False,
                    size_bytes=transfer.size_bytes,
                    local_addr=transfer.local_addr,
                    timings=transfer.timings,
                    crashed=True,
                )
            )

        self.sim.call_later(CRASH_NOTICE_NS, deliver)
        return completion

    def fail_transfers_to(self, dst_node: int) -> int:
        """Abort every in-flight transfer targeting ``dst_node`` (its
        lease expired).  Replies already on the wire for these transfers
        are dropped on arrival.  Returns how many were aborted."""
        now = self.sim.now
        self._aborted = prune_straggler_book(self._aborted, now)
        failed = 0
        for tid, transfer in list(self._transfers.items()):
            if transfer.dst_node == dst_node and not transfer.completed:
                self._aborted[tid] = now
                self._fail_transfer(transfer)
                failed += 1
        return failed

    # ------------------------------------------------------------------
    # RGP: source unrolling (§5)
    # ------------------------------------------------------------------
    def _unroll(self, transfer: SourceTransfer) -> None:
        """Unroll one WQ entry into its registration/request packets.

        The batched kernel computes the whole run's send timestamps in
        one pass — the RGP is a private serial server, so its
        per-request completion times are pure arithmetic — and injects
        them with one :meth:`~repro.sim.engine.Simulator.schedule_batch`
        call.  ``REPRO_SIM_BLOCKS=stepwise`` keeps the original
        one-``call_at``-per-block reference path."""
        if not self._batched:
            return self._unroll_stepwise(transfer)
        sim = self.sim
        now = sim._now
        transfer.timings.pickup = now
        rgp = self._rgp[transfer.backend]
        dest_backends = self.cfg.rmc.backends
        sabre = self.cfg.sabre
        send = self.fabric.send
        tid = transfer.transfer_id
        dst = transfer.dst_node
        op = transfer.op
        # Serial-server bookkeeping inlined: the same float operations
        # BandwidthServer.request performs, applied run-at-once.
        rate = rgp.rate
        next_free = rgp._next_free
        busy = rgp._busy_ns
        nbytes = rgp._bytes
        entries = []

        if op is OpKind.SABRE:
            r2p2 = tid % dest_backends
            reg = sabre_registration(self.node_id, dst, tid, transfer.total_blocks)
            reg.meta.update(
                addr=transfer.remote_addr,
                size=transfer.size_bytes,
                r2p2=r2p2,
                rgp=transfer.backend,
            )
            start = next_free if next_free > now else now
            service = self._rmc_cycle / rate
            next_free = start + service
            busy += service
            nbytes += self._rmc_cycle
            entries.append((next_free, send, (reg,)))
            # Pinned SABRes share one immutable meta dict across the
            # whole request run (nobody mutates request meta).
            shared_meta = (
                {"r2p2": r2p2, "rgp": transfer.backend}
                if sabre.pin_to_single_r2p2
                else None
            )

        req_cost = self._rmc_cycle * self.cfg.rmc.rgp_request_cycles
        service = req_cost / rate
        for offset in range(transfer.total_blocks):
            if op is OpKind.SABRE:
                meta = shared_meta
                if meta is None:
                    meta = {
                        "r2p2": offset % dest_backends,
                        "rgp": transfer.backend,
                    }
                pkt = Packet(
                    PacketKind.SABRE_REQUEST, self.node_id, dst, tid,
                    offset, size_bytes=8, meta=meta,
                )
            elif op is OpKind.REMOTE_WRITE:
                addr = transfer.remote_addr + offset * CACHE_BLOCK
                lo = offset * CACHE_BLOCK
                hi = min(len(transfer.payload), lo + CACHE_BLOCK)
                payload = transfer.payload[lo:hi]
                pkt = Packet(
                    PacketKind.WRITE_REQUEST, self.node_id, dst, tid,
                    offset,
                    size_bytes=len(payload) + 8,
                    payload=payload,
                    meta={
                        "addr": addr,
                        "r2p2": (addr // CACHE_BLOCK) % dest_backends,
                    },
                )
            else:
                addr = transfer.remote_addr + offset * CACHE_BLOCK
                pkt = Packet(
                    PacketKind.READ_REQUEST, self.node_id, dst, tid,
                    offset,
                    size_bytes=8,
                    meta={
                        "addr": addr,
                        "size": self._payload_size(transfer, offset),
                        # Remote reads balance across R2P2s per block
                        # (§7.1): steer by block *address*.
                        "r2p2": (addr // CACHE_BLOCK) % dest_backends,
                    },
                )
            start = next_free if next_free > now else now
            next_free = start + service
            busy += service
            nbytes += req_cost
            if offset == 0:
                transfer.timings.first_request = (
                    next_free if next_free > now else now
                )
            entries.append((next_free, send, (pkt,)))

        rgp._next_free = next_free
        rgp._busy_ns = busy
        rgp._bytes = nbytes
        sim.schedule_batch(entries)

    def _unroll_stepwise(self, transfer: SourceTransfer) -> None:
        transfer.timings.pickup = self.sim.now
        rgp = self._rgp[transfer.backend]
        dest_backends = self.cfg.rmc.backends
        sabre = self.cfg.sabre

        if transfer.op is OpKind.SABRE:
            r2p2 = transfer.transfer_id % dest_backends
            reg = sabre_registration(
                self.node_id,
                transfer.dst_node,
                transfer.transfer_id,
                transfer.total_blocks,
            )
            reg.meta.update(
                addr=transfer.remote_addr,
                size=transfer.size_bytes,
                r2p2=r2p2,
                rgp=transfer.backend,
            )
            t = rgp.request(self._rmc_cycle)
            self.sim.call_at(t, self.fabric.send, reg)

        for offset in range(transfer.total_blocks):
            if transfer.op is OpKind.SABRE:
                pkt = sabre_request(
                    self.node_id, transfer.dst_node, transfer.transfer_id, offset
                )
                # Pinned to a single R2P2 (§5.1) unless the rejected
                # striping design is being ablated.
                pkt.meta["r2p2"] = (
                    transfer.transfer_id % dest_backends
                    if sabre.pin_to_single_r2p2
                    else offset % dest_backends
                )
                pkt.meta["rgp"] = transfer.backend
            elif transfer.op is OpKind.REMOTE_WRITE:
                addr = transfer.remote_addr + offset * CACHE_BLOCK
                lo = offset * CACHE_BLOCK
                hi = min(len(transfer.payload), lo + CACHE_BLOCK)
                pkt = write_request(
                    self.node_id,
                    transfer.dst_node,
                    transfer.transfer_id,
                    offset,
                    transfer.payload[lo:hi],
                )
                pkt.meta["addr"] = addr
                pkt.meta["r2p2"] = (addr // CACHE_BLOCK) % dest_backends
            else:
                pkt = read_request(
                    self.node_id, transfer.dst_node, transfer.transfer_id, offset
                )
                addr = transfer.remote_addr + offset * CACHE_BLOCK
                pkt.meta["addr"] = addr
                pkt.meta["size"] = self._payload_size(transfer, offset)
                # Remote reads balance across R2P2s per block (§7.1):
                # steer by block *address* so single-block transfers to
                # different objects also spread across the R2P2s.
                pkt.meta["r2p2"] = (addr // CACHE_BLOCK) % dest_backends
            t = rgp.request(self._rmc_cycle * self.cfg.rmc.rgp_request_cycles)
            if offset == 0:
                transfer.timings.first_request = max(t, self.sim.now)
            self.sim.call_at(t, self.fabric.send, pkt)

    @staticmethod
    def _payload_size(transfer: SourceTransfer, offset: int) -> int:
        remaining = transfer.size_bytes - offset * CACHE_BLOCK
        return max(0, min(CACHE_BLOCK, remaining))

    # ------------------------------------------------------------------
    # NI dispatch
    # ------------------------------------------------------------------
    def _send(self, pkt: Packet) -> None:
        self.fabric.send(pkt)

    def _handle_packet(self, pkt: Packet) -> None:
        if not self._alive_vec[self.node_id]:
            # Dead NI: packets that were already in flight when the
            # node crashed arrive at nothing and vanish.
            return
        kind = pkt.kind
        if kind is PacketKind.SABRE_REQUEST:
            # Most frequent kind: skip both dispatch tables.
            self.r2p2s[pkt.meta.get("r2p2", 0)]._handle_sabre_request(pkt)
            return
        if kind is PacketKind.SABRE_REPLY:
            self._on_reply(pkt)
            return
        route = kind.route
        if route == 0:  # ROUTE_REQUEST
            self.r2p2s[pkt.meta.get("r2p2", 0)].handle_packet(pkt)
        elif route == 1:  # ROUTE_REPLY
            self._on_reply(pkt)
        else:  # ROUTE_RPC
            if self._rpc_handler is None:
                raise ProtocolError(f"node {self.node_id} has no RPC endpoint")
            self._rpc_handler(pkt)

    def attach_rpc(self, handler) -> None:
        self._rpc_handler = handler

    # ------------------------------------------------------------------
    # RCP: reply processing and completion (§5.2)
    # ------------------------------------------------------------------
    def _on_reply(self, pkt: Packet) -> None:
        transfer = self._transfers.get(pkt.transfer_id)
        if transfer is None or transfer.completed:
            if pkt.transfer_id in self._aborted:
                # A reply that was on the wire when its transfer was
                # crash-aborted: drop it (the CQ entry already failed).
                return
            raise ProtocolError(
                f"reply for unknown/completed transfer {pkt.transfer_id}"
            )
        # BandwidthServer.request inlined (once per reply packet).
        rcp = self._rcp[transfer.backend]
        sim = self.sim
        start = sim._now
        next_free = rcp._next_free
        if next_free > start:
            start = next_free
        service = self._rcp_service
        next_free = start + service
        rcp._next_free = next_free
        rcp._busy_ns += service
        rcp._bytes += self._rmc_cycle
        sim.call_at(next_free, self._process_reply, transfer, pkt)

    def _process_reply(self, transfer: SourceTransfer, pkt: Packet) -> None:
        if transfer.completed:
            # Crash-aborted while this reply sat in the RCP pipeline:
            # the CQ entry already failed, drop the reply.
            return
        kind = pkt.kind
        if kind is PacketKind.SABRE_REPLY or kind is PacketKind.READ_REPLY:
            # Hot path first: the unrolled data replies.
            payload = pkt.payload
            if payload is not None and pkt.size_bytes:
                # PhysicalMemory.write's region fast path, inlined.
                phys = self.phys
                addr = transfer.local_addr + pkt.block_offset * CACHE_BLOCK
                size = len(payload)
                base, end, buf = phys._last
                if base <= addr and addr + size <= end:
                    off = addr - base
                    buf[off : off + size] = payload
                else:
                    phys.write(addr, payload)
            transfer.replies_received += 1
            transfer.timings.last_reply = self.sim._now
        elif kind is PacketKind.SABRE_VALIDATION:
            transfer.validation = pkt.meta["success"]
            transfer.remote_version = pkt.meta.get("version")
        elif kind is PacketKind.CAS_REPLY:
            transfer.cas_old_value = pkt.meta["old_value"]
            transfer.cas_swapped = pkt.meta["swapped"]
            transfer.replies_received += 1
            transfer.timings.last_reply = self.sim._now
        else:  # WRITE_ACK
            transfer.replies_received += 1
            transfer.timings.last_reply = self.sim._now
        # transfer.done inlined (property call per reply adds up).
        if transfer.replies_received >= transfer.total_blocks and (
            transfer.op is not OpKind.SABRE or transfer.validation is not None
        ):
            self._complete(transfer)

    def _complete(self, transfer: SourceTransfer) -> None:
        transfer.completed = True
        rmc = self.cfg.rmc
        delay = rmc.cq_write_ns + rmc.cq_poll_ns

        def deliver() -> None:
            transfer.timings.completed = self.sim.now
            if transfer.op is OpKind.SABRE:
                success = bool(transfer.validation)
            elif transfer.op is OpKind.REMOTE_CAS:
                success = bool(transfer.cas_swapped)
            else:
                success = True
            result = TransferResult(
                transfer_id=transfer.transfer_id,
                op=transfer.op,
                success=success,
                size_bytes=transfer.size_bytes,
                local_addr=transfer.local_addr,
                timings=transfer.timings,
                remote_version=transfer.remote_version,
                cas_old_value=transfer.cas_old_value,
            )
            del self._transfers[transfer.transfer_id]
            self._completions.pop(transfer.transfer_id).succeed(result)

        self.sim.call_later(delay, deliver)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def read_local(self, addr: int, size: int) -> bytes:
        return self.phys.read(addr, size)

    @property
    def in_flight(self) -> int:
        return len(self._transfers)


class Cluster:
    """A soNUMA rack: N nodes on a lossless fabric (paper: N=2)."""

    def __init__(self, cfg: Optional[ClusterConfig] = None):
        self.cfg = cfg or ClusterConfig()
        self.cfg.validate()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, self.cfg.fabric, self.cfg.nodes)
        self.nodes = [
            SoNode(self.sim, i, self.cfg, self.fabric)
            for i in range(self.cfg.nodes)
        ]

    def node(self, node_id: int) -> SoNode:
        return self.nodes[node_id]

    def run(self, until: float = float("inf")) -> float:
        return self.sim.run(until)

"""Source-side transfer state: WQ/CQ entries and transfer results.

Cores talk to the RMC through memory-mapped Work Queues and Completion
Queues (Fig. 5).  We model the queues' costs (post, pickup, CQ write,
poll) and keep per-transfer timing so experiments can report the
paper's latency breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

#: How long the id of a crash-failed RPC/transfer is remembered so its
#: straggler replies can be dropped instead of tripping the
#: unknown-reply invariants.  Replies only straggle while already-sent
#: packets and zombie handlers on a crashed-then-recovered node drain —
#: microseconds, far below this horizon — so pruning behind it keeps
#: the bookkeeping bounded across arbitrarily long crash soaks.
STRAGGLER_HORIZON_NS = 1_000_000.0


def prune_straggler_book(
    book: Dict[int, float], now: float, limit: int = 256
) -> Dict[int, float]:
    """Shared prune for the ``id -> failure time`` straggler books kept
    by :class:`~repro.sonuma.node.SoNode` and
    :class:`~repro.sonuma.rpc.RpcEndpoint`: once past ``limit``
    entries, drop everything older than :data:`STRAGGLER_HORIZON_NS`.
    Returns the (possibly new) book."""
    if len(book) <= limit:
        return book
    horizon = now - STRAGGLER_HORIZON_NS
    return {key: t for key, t in book.items() if t >= horizon}


class OpKind(Enum):
    REMOTE_READ = "remote_read"
    REMOTE_WRITE = "remote_write"
    REMOTE_CAS = "remote_cas"
    SABRE = "sabre"


@dataclass(slots=True)
class TransferTimings:
    """Wall-clock (simulated ns) milestones of one transfer."""

    posted: float = 0.0
    pickup: float = 0.0
    first_request: float = 0.0
    last_reply: float = 0.0
    completed: float = 0.0

    @property
    def end_to_end_ns(self) -> float:
        return self.completed - self.posted

    @property
    def unroll_to_last_reply_ns(self) -> float:
        return self.last_reply - self.pickup


@dataclass(slots=True)
class TransferResult:
    """What the core observes in the Completion Queue entry.

    ``success`` is the SABRe atomicity field (§5.2); plain remote
    reads/writes always succeed at the transport level; for remote CAS
    it reports whether the swap happened."""

    transfer_id: int
    op: OpKind
    success: bool
    size_bytes: int
    local_addr: int
    timings: TransferTimings
    remote_version: Optional[int] = None
    cas_old_value: Optional[int] = None
    #: The destination node crashed while (or before) this transfer was
    #: in flight; the landing buffer contents are undefined and must not
    #: be consumed.  Set by the failover subsystem's abort path only.
    crashed: bool = False


@dataclass(slots=True)
class SourceTransfer:
    """RMC-internal bookkeeping for one in-flight transfer."""

    transfer_id: int
    op: OpKind
    dst_node: int
    remote_addr: int
    size_bytes: int
    local_addr: int
    total_blocks: int
    backend: int
    timings: TransferTimings = field(default_factory=TransferTimings)
    replies_received: int = 0
    validation: Optional[bool] = None
    remote_version: Optional[int] = None
    completed: bool = False
    payload: Optional[bytes] = None  # outbound data for REMOTE_WRITE
    cas_old_value: Optional[int] = None
    cas_swapped: Optional[bool] = None

    @property
    def data_done(self) -> bool:
        return self.replies_received >= self.total_blocks

    @property
    def done(self) -> bool:
        if self.op is OpKind.SABRE:
            return self.data_done and self.validation is not None
        return self.data_done

"""soNUMA substrate: RMC pipelines, queue pairs, nodes, cluster, RPC."""

from repro.sonuma.node import Cluster, SoNode
from repro.sonuma.transfer import OpKind, TransferResult, TransferTimings

__all__ = ["Cluster", "OpKind", "SoNode", "TransferResult", "TransferTimings"]

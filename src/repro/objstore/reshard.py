"""Live resharding and workload-aware placement for the sharded store.

ROADMAP item 4's elastic half: the deployment's topology is no longer
frozen at construction.  A :class:`ReshardManager` — the planned-change
sibling of :class:`~repro.objstore.failover.FailoverManager`, sharing
its epoch fencing — executes scale-out/scale-in under load, and a small
rebalance policy loop promotes extra read replicas for hot keys.

**Scale-out protocol** (``scale_out``), per added shard:

1. *Activate* a provisioned spare slot (epoch bump).  Nothing routes to
   it yet — the ring has not grown — so activation is invisible to
   clients beyond the fence.
2. Grow the ring incrementally (:meth:`HashRing.add_shard`), which
   reports the exact moved arcs as :class:`RangeDelta` entries.  Only
   keys on those arcs (plus keys gaining the new shard as a backup)
   migrate; everything else never notices.
3. *Per-vnode handoff*: moved keys are batched by the vnode whose arc
   they sit on and migrated batch by batch — a fixed handshake charge,
   then per-key migration (below), then an epoch bump that redirects
   writers of the batch to the new owner through the existing
   busy/fenced retry path with their *remaining* deadline budget.
4. *Drain*, then prune: after ``drain_ns`` of double-read grace the
   migrated keys' placements collapse to exactly the fresh-ring replica
   lists and the double-read marks drop.  A finished migration is
   placement-identical to a fresh deployment at the new shard count.

**Per-key migration** (the heart of the invariant): the key's current
primary is *locked* (odd version, owner-token guarded, applied before
the first yield — atomic against racing writers and commit handlers),
the key enters its **double-read window** (readers walk old and new
owners even with fallback disabled, so a detecting protocol can always
find a committed copy and the torn-read audit stays at zero mid-
migration), the committed image is copied to each new holder through
the *destination's timed memory hierarchy* block by block, the
placement flips with the old owners kept on the tail (double-read),
and the source unlocks.  A source crash at any yield is detected by
token revalidation (re-sync clears lock owners) and the key simply
re-migrates from the promoted primary.

**Scale-in** (``scale_in``) runs the same machinery from the other
side: the ring shrinks first (reads keep working — the departing shard
still serves its copies during drain-out), hosted keys migrate to
their successors, and only when nothing routes to the shard anymore is
it demoted back to a spare slot.

**Hotspot rebalancing** (:meth:`start_rebalancer`): a policy loop
samples the per-key consumed-read counters every ``interval_ns``,
promotes extra read replicas for keys concentrating more than
``hot_share`` of the interval's reads (Zipfian heads), and demotes
them once their share falls below ``cool_share``.  Promotion reuses
the migration copy path (lock, timed copy, placement append, epoch
bump), so a promoted replica is committed-fresh and covered by the
primary's replication fan-out from the moment readers can reach it;
demotion mirrors the migration drain — routing stops at once but the
ex-extra stays on the placement tail (replicated-to, readable) for
``drain_ns`` before the placement collapses, so in-flight reads never
land on a copy a newer write has left stale.

Everything is deterministic: batch and key order are sorted, tokens
come from a dedicated counter (disjoint from transaction tokens), and
the copy path's cost is independent of block-execution mode — elastic
runs are byte-identical under parallel sweeps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK
from repro.objstore.failover import (
    DEFAULT_REROUTE_CHECK_NS,
    DEFAULT_RPC_TIMEOUT_NS,
)
from repro.objstore.layout import is_locked, lock_version, stamped_payload
from repro.objstore.sharded import (
    LOCK_SPIN_NS,
    OUTAGE_POLL_NS,
    RangeDelta,
    ShardedKV,
)

#: Fixed per-vnode handoff handshake (ownership-transfer metadata, the
#: coordination a FaRM-style reconfiguration round costs) charged
#: before a batch's keys migrate.
DEFAULT_HANDOFF_FIXED_NS = 400.0

#: Double-read grace after the last batch of a topology change: how
#: long readers keep consulting old owners before placements collapse
#: to the fresh-ring lists.  Covers every in-flight read that computed
#: its route against the pre-flip view (bounded by the reroute check).
DEFAULT_DRAIN_NS = 5_000.0

#: Migration lock tokens live in their own number space, far above any
#: transaction token (:class:`~repro.objstore.txn.TxnManager` counts
#: from 1), so a migration's lock can never be committed or released by
#: a transaction straggler holding an aliased token.
RESHARD_TOKEN_BASE = 1 << 62


# ----------------------------------------------------------------------
# plan + stats
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReshardOp:
    """One planned topology change: ``kind`` is ``"add"`` or
    ``"remove"``; ``shard`` is the slot index."""

    kind: str
    shard: int

    def validate(self, kv: ShardedKV) -> None:
        if self.kind not in ("add", "remove"):
            raise ConfigError(f"unknown reshard op kind {self.kind!r}")
        if not 0 <= self.shard < kv.provisioned:
            raise ConfigError(
                f"shard {self.shard} outside the provisioned slots "
                f"(0..{kv.provisioned - 1}); raise max_shards"
            )


@dataclass
class ReshardStats:
    """Counters over every executed topology change and rebalance."""

    shards_added: int = 0
    shards_removed: int = 0
    #: Per-vnode handoff batches executed (one handshake charge each).
    vnode_handoffs: int = 0
    #: Keys whose placement was migrated (flipped) by a topology change.
    keys_migrated: int = 0
    #: Timed object copies onto new holders (migration + promotion).
    replica_copies: int = 0
    hot_promotions: int = 0
    hot_demotions: int = 0
    #: Outer retries of a per-key migration after the locked source
    #: crashed mid-copy (token revalidation caught it).
    migration_retries: int = 0
    #: Spin-waits behind a writer/transaction lock before a migration
    #: could lock its source, or behind a straggler replica update
    #: still writing a copy a migration wants to overwrite.
    lock_waits: int = 0
    #: Total simulated time spent inside topology changes.
    migration_ns: float = 0.0


@dataclass
class RebalanceConfig:
    """Hotspot policy knobs.

    Every ``interval_ns`` the loop looks at the consumed-read counters'
    delta.  A key concentrating ``>= hot_share`` of the interval's
    reads gains an extra read replica (up to ``max_extra``); a promoted
    key falling below ``cool_share`` loses them again.  Intervals with
    fewer than ``min_reads`` total reads only demote (no promotion on
    noise)."""

    interval_ns: float = 20_000.0
    hot_share: float = 0.06
    cool_share: float = 0.02
    max_extra: int = 2
    min_reads: int = 32

    def validate(self) -> None:
        if self.interval_ns <= 0:
            raise ConfigError("rebalance interval must be positive")
        if not 0.0 < self.cool_share <= self.hot_share <= 1.0:
            raise ConfigError(
                "need 0 < cool_share <= hot_share <= 1, got "
                f"{self.cool_share}/{self.hot_share}"
            )
        if self.max_extra < 0 or self.min_reads < 0:
            raise ConfigError("max_extra/min_reads cannot be negative")


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------


class ReshardManager:
    """Executes planned topology changes and the rebalance policy over
    one :class:`ShardedKV`.

    Attach at most one per service; it may coexist with a
    :class:`~repro.objstore.failover.FailoverManager` (the fuzz lanes
    run both).  Attaching arms the same client-side reroute/watchdog
    bounds failover arms, so readers re-route promptly mid-handoff."""

    def __init__(
        self,
        kv: ShardedKV,
        handoff_fixed_ns: float = DEFAULT_HANDOFF_FIXED_NS,
        drain_ns: float = DEFAULT_DRAIN_NS,
        reroute_check_ns: float = DEFAULT_REROUTE_CHECK_NS,
        rpc_timeout_ns: Optional[float] = DEFAULT_RPC_TIMEOUT_NS,
    ):
        if handoff_fixed_ns < 0 or drain_ns < 0:
            raise ConfigError("handoff/drain costs cannot be negative")
        self.kv = kv
        self.handoff_fixed_ns = handoff_fixed_ns
        self.drain_ns = drain_ns
        self.stats = ReshardStats()
        self.events: List[Tuple[float, str, int]] = []
        kv.reroute_check_ns = min(kv.reroute_check_ns, reroute_check_ns)
        if kv.rpc_timeout_ns is None:
            kv.rpc_timeout_ns = rpc_timeout_ns
        self._tokens = itertools.count(RESHARD_TOKEN_BASE)
        #: Topology mutex: one migration or promotion mutates placement
        #: at a time (concurrent plans queue behind it).
        self._busy = False
        #: Nesting count of in-flight topology changes (scheduled plans
        #: queued behind the mutex included), for workload metering.
        self.migrating = 0
        #: Slots claimed by a scheduled (not yet executed) scale-out /
        #: scale-in: pending adds and pending removals.  Together with
        #: current membership they are the *intent* every new plan is
        #: validated against at schedule time.
        self._claimed: set = set()
        self._leaving: set = set()
        self._stop_rebalance = False

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def any_migrating(self) -> bool:
        """True while any scheduled topology change has started and not
        yet finished draining (metering windows key on this)."""
        return self.migrating > 0

    def spare_slots(self) -> List[int]:
        """Provisioned slots not currently ring members and not claimed
        by an already-scheduled scale-out, ascending."""
        return [
            s
            for s in range(self.kv.provisioned)
            if not self.kv.members[s] and s not in self._claimed
        ]

    def scale_out(self, count: int, at_ns: float) -> List[int]:
        """Schedule ``count`` spare slots to join at ``at_ns``; returns
        the slot ids chosen (lowest spares first, deterministic)."""
        if count < 1:
            raise ConfigError(f"scale_out needs count >= 1: {count}")
        spares = self.spare_slots()
        if len(spares) < count:
            raise ConfigError(
                f"scale_out of {count} wants more spare slots than the "
                f"{len(spares)} provisioned; raise max_shards"
            )
        chosen = spares[:count]
        self.schedule([ReshardOp("add", s) for s in chosen], at_ns)
        return chosen

    def scale_in(self, shards: Sequence[int], at_ns: float) -> None:
        """Schedule ``shards`` to drain out and leave at ``at_ns``."""
        if not shards:
            raise ConfigError("scale_in needs at least one shard")
        self.schedule([ReshardOp("remove", s) for s in shards], at_ns)

    def schedule(self, ops: Sequence[ReshardOp], at_ns: float) -> None:
        """Schedule a validated op sequence to execute at ``at_ns``
        (plans landing while another runs queue behind its mutex).

        Membership *intent* is validated here, against the membership
        every already-scheduled plan will have produced: adding a
        member (or a slot another plan already claims), removing a
        spare (or a shard already scheduled to leave), and draining
        below the replication factor are all rejected up front —
        never deep inside the simulation at execution time."""
        ops = list(ops)
        kv = self.kv
        intent = list(kv.members)
        for s in self._claimed:
            intent[s] = True
        for s in self._leaving:
            intent[s] = False
        for op in ops:
            op.validate(kv)
            if op.kind == "add":
                if intent[op.shard]:
                    raise ConfigError(
                        f"shard {op.shard} is already a member (or "
                        "claimed by a scheduled scale-out)"
                    )
                intent[op.shard] = True
            else:
                if not intent[op.shard]:
                    raise ConfigError(
                        f"shard {op.shard} is not a member (or already "
                        "scheduled to leave)"
                    )
                survivors = sum(intent) - 1
                if survivors < kv.cfg.replication:
                    raise ConfigError(
                        f"removing shard {op.shard} leaves {survivors} "
                        "members, fewer than replication="
                        f"{kv.cfg.replication}"
                    )
                intent[op.shard] = False
        for op in ops:
            claims = self._claimed if op.kind == "add" else self._leaving
            claims.add(op.shard)
        sim = kv.cluster.sim
        sim.call_at(at_ns, lambda: sim.process(self._execute(ops)))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, ops: List[ReshardOp]):
        sim = self.kv.cluster.sim
        self.migrating += 1
        while self._busy:
            yield sim.timeout(OUTAGE_POLL_NS)
        self._busy = True
        t0 = sim.now
        try:
            for op in ops:
                try:
                    if op.kind == "add":
                        yield from self._add(op.shard)
                    else:
                        yield from self._remove(op.shard)
                except ConfigError:
                    # Execution-time surprises (a fault window changed
                    # membership under an intent-validated plan) abort
                    # the op and release its claim — never the run.
                    self._claimed.discard(op.shard)
                    self._leaving.discard(op.shard)
                    self.events.append((sim.now, "plan_error", op.shard))
        finally:
            self._busy = False
            self.migrating -= 1
            self.stats.migration_ns += sim.now - t0

    def _add(self, shard: int):
        kv = self.kv
        sim = kv.cluster.sim
        if kv.members[shard]:
            raise ConfigError(f"shard {shard} is already a member")
        kv.activate_shard(shard)
        self._claimed.discard(shard)
        self.events.append((sim.now, "activate", shard))
        deltas = kv.ring.add_shard(shard)
        plan = self._plan_moves(deltas, affected=shard)
        yield from self._run_batches(plan)
        yield from self._drain_and_prune([idx for _b, idx, _p in plan])
        self.stats.shards_added += 1
        self.events.append((sim.now, "added", shard))

    def _remove(self, shard: int):
        kv = self.kv
        sim = kv.cluster.sim
        if not kv.members[shard]:
            raise ConfigError(f"shard {shard} is not a member")
        survivors = len(kv.member_shards()) - 1
        if survivors < kv.cfg.replication:
            raise ConfigError(
                f"removing shard {shard} leaves {survivors} members, "
                f"fewer than replication={kv.cfg.replication}"
            )
        self._leaving.discard(shard)
        self.events.append((sim.now, "draining", shard))
        # Ring shrinks first; the departing shard keeps serving its
        # copies (placement still routes to it) until keys migrate.
        deltas = kv.ring.remove_shard(shard)
        plan = self._plan_moves(deltas, affected=shard)
        yield from self._run_batches(plan)
        yield from self._drain_and_prune([idx for _b, idx, _p in plan])
        kv.deactivate_shard(shard)
        self.stats.shards_removed += 1
        self.events.append((sim.now, "removed", shard))

    def _plan_moves(
        self, deltas: List[RangeDelta], affected: int
    ) -> List[Tuple[int, int, Tuple[int, ...]]]:
        """The migration work list: ``(batch, obj_id, new_placement)``
        sorted by batch then key.  Keys whose *primary* moved batch by
        the vnode whose arc they sit on (per-vnode handoff); keys where
        ``affected`` only enters/leaves the backup tail share one final
        batch (replication fan-in, no ownership handshake per vnode)."""
        kv = self.kv
        arcs = {d.vnode: d for d in deltas}
        backup_batch = (
            max(arcs) + 1 if arcs else 0
        )  # after every vnode batch
        plan: List[Tuple[int, int, Tuple[int, ...]]] = []
        for idx in range(kv.cfg.n_objects):
            key = kv.key_name(idx)
            new_place = kv.ring.replicas(key, kv.cfg.replication)
            if tuple(new_place) == tuple(kv._placement[idx][: len(new_place)]):
                # Placement prefix unchanged — but a scale-in still has
                # to migrate keys keeping the leaver only in a promoted
                # tail; those are pruned with the rest below.
                if affected not in kv._placement[idx]:
                    continue
            h = kv.ring.key_hash(key)
            batch = backup_batch
            for vnode in sorted(arcs):
                if arcs[vnode].covers(h):
                    batch = vnode
                    break
            plan.append((batch, idx, new_place))
        plan.sort()
        return plan

    def _run_batches(self, plan: List[Tuple[int, int, Tuple[int, ...]]]):
        kv = self.kv
        sim = kv.cluster.sim
        current_batch: Optional[int] = None
        for batch, idx, new_place in plan:
            if batch != current_batch:
                if current_batch is not None:
                    # Close the previous batch: redirect its writers.
                    kv.epoch += 1
                current_batch = batch
                self.stats.vnode_handoffs += 1
                yield sim.timeout(self.handoff_fixed_ns)
            yield from self._migrate_key(idx, new_place)
        if current_batch is not None:
            kv.epoch += 1

    def _drain_and_prune(self, moved: List[int]):
        """Double-read grace, then collapse the moved keys' placements
        to exactly the fresh-ring replica lists."""
        kv = self.kv
        sim = kv.cluster.sim
        yield sim.timeout(self.drain_ns)
        for idx in moved:
            new_place = kv.ring.replicas(
                kv.key_name(idx), kv.cfg.replication
            )
            kv._placement[idx] = tuple(new_place)
            kv.double_read.discard(idx)
            kv.hot_replicas.pop(idx, None)
        if moved:
            kv.epoch += 1

    # ------------------------------------------------------------------
    # per-key migration
    # ------------------------------------------------------------------
    def _migrate_key(self, idx: int, new_place: Tuple[int, ...]):
        """Lock-copy-flip-unlock for one key (a sim generator).

        The lock is applied before the first yield, so no writer or
        commit handler can interleave with the lock check; after every
        subsequent yield the owner token is revalidated — a source
        crash clears it (re-sync wipes lock owners) and the key simply
        restarts from the promoted primary."""
        kv = self.kv
        sim = kv.cluster.sim
        while True:
            src = kv.current_primary_by_index(idx)
            if src is None:
                yield sim.timeout(OUTAGE_POLL_NS)
                continue
            store = kv.stores[src]
            version = store.current_version(idx)
            if is_locked(version):
                self.stats.lock_waits += 1
                yield sim.timeout(LOCK_SPIN_NS)
                continue
            token = next(self._tokens)
            kv.lock_owners[src][idx] = token
            node = kv.shards[src]
            core = kv.next_writer_core(src)
            floor = kv.cfg.costs.writer_block_ns
            latency = node.chip.write_block(
                core,
                store.version_addr(idx),
                lock_version(version).to_bytes(8, "little"),
            )
            # Readers may observe the odd version from here on: the key
            # is in its double-read window before the first yield, so a
            # detecting protocol always has a committed copy to walk to.
            kv.double_read.add(idx)
            yield sim.timeout(max(latency, floor))
            if not self._still_mine(src, idx, token):
                self.stats.migration_retries += 1
                continue

            lost = False
            for dest in new_place:
                if dest in kv._placement[idx] and idx in kv.stores[dest]:
                    # A current placement member is replicated-to, so
                    # its copy is already the committed image.  Anyone
                    # else — including a shard that hosted this key on
                    # an earlier tour (scale-out/in round trip, hot-key
                    # re-promotion) and kept a stale at-rest image —
                    # must be (re)copied, never trusted.
                    continue
                # A straggler replica update from before ``dest`` left
                # this key's placement may still be writing its copy;
                # let it finish (it is live and bounded) rather than
                # tear its block writes with the copy's.
                while (
                    idx in kv.stores[dest]
                    and kv.serving[dest]
                    and is_locked(kv.stores[dest].current_version(idx))
                ):
                    self.stats.lock_waits += 1
                    yield sim.timeout(LOCK_SPIN_NS)
                    if not self._still_mine(src, idx, token):
                        lost = True
                        break
                if lost:
                    break
                yield from self._copy_object(idx, dest, version)
                if not self._still_mine(src, idx, token):
                    lost = True
                    break
            if lost:
                self.stats.migration_retries += 1
                continue

            old_place = kv._placement[idx]
            kv._placement[idx] = tuple(new_place) + tuple(
                s for s in old_place if s not in new_place
            )
            # Unlock the source: committed version back, token dropped.
            # (Functionally first — the token check above means no one
            # else wrote the header while we held it.)
            del kv.lock_owners[src][idx]
            latency = node.chip.write_block(
                core,
                store.version_addr(idx),
                version.to_bytes(8, "little"),
            )
            yield sim.timeout(max(latency, floor))
            self.stats.keys_migrated += 1
            return

    def _still_mine(self, src: int, idx: int, token: int) -> bool:
        return (
            self.kv.serving[src]
            and self.kv.lock_owners[src].get(idx) == token
        )

    def _copy_object(self, idx: int, dest: int, version: int):
        """Install object ``idx``'s committed image ``version`` on
        ``dest`` and charge the copy through the destination's timed
        memory hierarchy block by block.  The destination is not
        routed to (readers cannot observe the intermediate states),
        but a straggler replica update from an earlier placement tour
        could still race the copy — so the destination's version word
        stays *locked* (odd) until the last block has landed, making
        any racing handler spin instead of interleaving its stale
        blocks with the copy's; the committed header is the copy's
        final write, exactly like a local writer's."""
        kv = self.kv
        sim = kv.cluster.sim
        payload = stamped_payload(version, kv.cfg.payload_len)
        dstore = kv.stores[dest]
        if idx in dstore:
            dstore.phys.write(
                dstore.handle(idx).base_addr,
                kv.layout.pack(version, payload),
            )
        else:
            dstore.create(idx, payload, version=version)
        vaddr = dstore.version_addr(idx)
        dstore.phys.write(
            vaddr, lock_version(version).to_bytes(8, "little")
        )
        handle = dstore.handle(idx)
        image = dstore.phys.read(handle.base_addr, handle.wire_size)
        node = kv.shards[dest]
        core = kv.next_writer_core(dest)
        floor = kv.cfg.costs.writer_block_ns
        for off in range(0, len(image), CACHE_BLOCK):
            latency = node.chip.write_block(
                core, handle.base_addr + off, image[off : off + CACHE_BLOCK]
            )
            yield sim.timeout(max(latency, floor))
        latency = node.chip.write_block(
            core, vaddr, version.to_bytes(8, "little")
        )
        yield sim.timeout(max(latency, floor))
        self.stats.replica_copies += 1

    # ------------------------------------------------------------------
    # hotspot rebalancing
    # ------------------------------------------------------------------
    def start_rebalancer(
        self,
        cfg: Optional[RebalanceConfig] = None,
        until_ns: float = float("inf"),
    ):
        """Run the promote/demote policy loop until ``until_ns`` (or
        :meth:`stop_rebalancer`).  An unbounded loop keeps the event
        heap non-empty forever — pass ``until_ns`` when the run relies
        on ``sim.run()`` draining."""
        cfg = cfg or RebalanceConfig()
        cfg.validate()
        self._stop_rebalance = False
        return self.kv.cluster.sim.process(
            self._rebalance_loop(cfg, until_ns)
        )

    def stop_rebalancer(self) -> None:
        self._stop_rebalance = True

    def _routed_snapshot(self) -> List[int]:
        return [s.reads_routed for s in self.kv.merged_shard_stats()]

    def _rebalance_loop(self, cfg: RebalanceConfig, until_ns: float):
        kv = self.kv
        sim = kv.cluster.sim
        last = list(kv.key_reads)
        last_routed = self._routed_snapshot()
        while not self._stop_rebalance and sim.now < until_ns:
            yield sim.timeout(min(cfg.interval_ns, until_ns - sim.now))
            if self._stop_rebalance:
                return
            current = list(kv.key_reads)
            delta = [c - p for c, p in zip(current, last)]
            last = current
            routed = self._routed_snapshot()
            routed_delta = [c - p for c, p in zip(routed, last_routed)]
            last_routed = routed
            if self._busy:
                # A topology change owns placement right now; skip the
                # interval rather than interleave with its yields.
                continue
            total = sum(delta)
            for idx in sorted(kv.hot_replicas):
                share = delta[idx] / total if total else 0.0
                if share < cfg.cool_share:
                    self._demote(idx)
            if total < cfg.min_reads:
                continue
            ranked = sorted(
                range(len(delta)), key=lambda i: (-delta[i], i)
            )
            for idx in ranked:
                if delta[idx] / total < cfg.hot_share:
                    break
                yield from self._promote(idx, cfg, routed_delta)

    def _promote(
        self,
        idx: int,
        cfg: RebalanceConfig,
        routed: Optional[Sequence[int]] = None,
    ):
        """Add one extra read replica for hot key ``idx`` (lock, timed
        copy, placement append, epoch bump — the migration copy path,
        so the new copy is committed-fresh and replicated-to)."""
        kv = self.kv
        if self._busy or idx in kv.double_read:
            return
        extras = kv.hot_replicas.get(idx, [])
        if len(extras) >= cfg.max_extra:
            return
        placed = set(kv._placement[idx])
        # Coldest serving member over the *sampling interval* first:
        # the interval's routed-read delta is the load signal, so a
        # promotion lands where pressure is low right now — lifetime
        # totals would let early-run history keep steering promotions
        # onto a currently-hot shard late in a long run.
        if routed is None:
            routed = [0] * kv.provisioned
        candidates = sorted(
            (
                s
                for s in kv.member_shards()
                if kv.serving[s] and s not in placed
            ),
            key=lambda s: (routed[s], s),
        )
        if not candidates:
            return
        dest = candidates[0]
        self._busy = True
        try:
            yield from self._migrate_key(
                idx, tuple(kv._placement[idx]) + (dest,)
            )
        finally:
            self._busy = False
        kv.double_read.discard(idx)
        kv.hot_replicas.setdefault(idx, []).append(dest)
        kv.epoch += 1
        self.stats.hot_promotions += 1
        self.events.append((kv.cluster.sim.now, "promote", idx))

    def _demote(self, idx: int) -> None:
        """Drop key ``idx``'s promoted extras.

        Routing stops immediately (the lookup rotation keys off
        ``hot_replicas``), but — mirroring the migration drain — the
        ex-extras stay on the placement tail for ``drain_ns``: still
        replicated-to and still readable, so an in-flight read that
        computed its route pre-demotion can never consume a copy a
        subsequent write has left stale.  Only after the grace does
        the placement collapse."""
        kv = self.kv
        extras = kv.hot_replicas.pop(idx, [])
        if not extras:
            return
        kv.epoch += 1
        self.stats.hot_demotions += 1
        self.events.append((kv.cluster.sim.now, "demote", idx))
        kv.cluster.sim.process(self._prune_demoted(idx, set(extras)))

    def _prune_demoted(self, idx: int, gone: set):
        """After the demotion grace, drop ``gone`` from key ``idx``'s
        placement — unless a shard was legitimately re-placed in the
        meantime (fresh-ring ownership after a topology change, or a
        re-promotion) in which case it stays."""
        kv = self.kv
        sim = kv.cluster.sim
        yield sim.timeout(self.drain_ns)
        fresh = set(
            kv.ring.replicas(kv.key_name(idx), kv.cfg.replication)
        )
        drop = gone - fresh - set(kv.hot_replicas.get(idx, ()))
        pruned = tuple(
            s for s in kv._placement[idx] if s not in drop
        )
        if pruned != kv._placement[idx]:
            kv._placement[idx] = pruned
            kv.epoch += 1

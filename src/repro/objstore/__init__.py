"""FaRM-like distributed object store: layouts, allocation, KV, and
multi-object transactions."""

from repro.objstore.layout import (
    DATA_PER_LINE,
    ChecksumLayout,
    ObjectLayout,
    PerCacheLineLayout,
    RawLayout,
)
from repro.objstore.store import ObjectHandle, ObjectStore
from repro.objstore.txn import (
    TxnManager,
    TxnOutcome,
    TxnRead,
    TxnSession,
    TxnStats,
)

__all__ = [
    "DATA_PER_LINE",
    "ChecksumLayout",
    "ObjectHandle",
    "ObjectLayout",
    "ObjectStore",
    "PerCacheLineLayout",
    "RawLayout",
    "TxnManager",
    "TxnOutcome",
    "TxnRead",
    "TxnSession",
    "TxnStats",
]

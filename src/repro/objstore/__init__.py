"""FaRM-like distributed object store: layouts, allocation, KV."""

from repro.objstore.layout import (
    DATA_PER_LINE,
    ChecksumLayout,
    ObjectLayout,
    PerCacheLineLayout,
    RawLayout,
)
from repro.objstore.store import ObjectHandle, ObjectStore

__all__ = [
    "DATA_PER_LINE",
    "ChecksumLayout",
    "ObjectHandle",
    "ObjectLayout",
    "ObjectStore",
    "PerCacheLineLayout",
    "RawLayout",
]

"""Optimistic multi-object transactions over the sharded KV service.

FaRM's real workload is not single-key lookups but multi-object
transactions whose read sets are validated by exactly the per-object
atomicity mechanisms Table 1 compares (§2.1).  This module adds that
layer on top of :class:`~repro.objstore.sharded.ShardedKV`:

* A :class:`TxnSession` executes the **read phase** through the
  session's pluggable :class:`~repro.workloads.protocols.ReadProtocol`
  — each consumed read carries the committed version the mechanism
  vouched for (for SABRes, the hardware verdict's version) plus the
  payload snapshot, recorded as a :class:`TxnRead`.
* The **commit phase** is FaRM-style optimistic concurrency control
  over :class:`~repro.sonuma.rpc.RpcEndpoint` generator handlers, so
  every lock/apply write is charged through the owner's *timed* memory
  hierarchy and destination-side SABRe hardware snoops it exactly like
  any local writer:

  1. ``txn_lock`` — try-lock every write-set object on its primary
     (version goes odd through the timed chip).  The reply carries the
     pre-lock versions, which double as the write-set validation: a
     pre-lock version differing from the version the read observed
     means a conflicting commit slipped in between.
  2. ``txn_validate`` — for read-only keys, re-check that the primary
     still holds exactly the version the read observed (and that no
     writer holds the lock).
  3. ``txn_commit`` — apply each new image block-by-block through the
     timed memory system and publish the even version; backups get the
     same asynchronous replication RPCs as the plain write path.
  4. ``txn_release`` — abort path: restore the pre-lock versions (the
     data was never touched, so readers simply keep seeing the old
     committed image).

  Locks are acquired in globally sorted ``(shard, object)`` order and
  every lock is a *try*-lock, so transactions cannot deadlock: a
  conflict aborts (and retries) instead of waiting.

* :class:`TxnStats` tracks the per-shard outcome counters — commits,
  validation aborts, lock conflicts, retries — plus a transaction-side
  torn-read audit: every read-set payload is checked against the
  ground truth (:func:`~repro.objstore.layout.torn_words`), which is
  how the fuzz suite shows ``remote_read`` consuming torn snapshots
  that every detecting mechanism rejects.

Values follow the repo-wide ground-truth convention: an object's
committed payload is its version stamped into every word, so a
transactional write is "bump the version by two and restamp" and the
audit stays byte-exact across protocols, shards, and replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.objstore.layout import (
    commit_version,
    is_locked,
    lock_version,
    stamped_payload,
    torn_words,
)
from repro.objstore.sharded import ReaderSession, ShardedKV

#: Reply tags for the commit-protocol RPCs.
_OK = b"\x01"
_FAIL = b"\x00"


def _encode_u64s(values: Sequence[int]) -> bytes:
    return b"".join(v.to_bytes(8, "little") for v in values)


def _decode_u64s(blob: bytes) -> List[int]:
    return [
        int.from_bytes(blob[i : i + 8], "little")
        for i in range(0, len(blob), 8)
    ]


# ----------------------------------------------------------------------
# statistics and read-set entries
# ----------------------------------------------------------------------


@dataclass
class TxnStats:
    """Per-shard transaction counters (attributed to a key's *primary*
    shard; increments happen between simulation yields, so they are
    race-free like every other counter in the repo)."""

    commits: int = 0
    validation_aborts: int = 0
    lock_conflicts: int = 0
    retries: int = 0
    lock_rpcs: int = 0
    validate_rpcs: int = 0
    commit_rpcs: int = 0
    release_rpcs: int = 0
    #: Read-set payloads the ground-truth audit found torn.  Detecting
    #: protocols never consume one; ``remote_read`` does under
    #: conflicting writers — the fuzz suite pins both directions.
    torn_reads_observed: int = 0

    def merge(self, other: "TxnStats") -> None:
        self.commits += other.commits
        self.validation_aborts += other.validation_aborts
        self.lock_conflicts += other.lock_conflicts
        self.retries += other.retries
        self.lock_rpcs += other.lock_rpcs
        self.validate_rpcs += other.validate_rpcs
        self.commit_rpcs += other.commit_rpcs
        self.release_rpcs += other.release_rpcs
        self.torn_reads_observed += other.torn_reads_observed

    def as_dict(self) -> Dict[str, int]:
        return {
            "commits": self.commits,
            "validation_aborts": self.validation_aborts,
            "lock_conflicts": self.lock_conflicts,
            "retries": self.retries,
            "lock_rpcs": self.lock_rpcs,
            "validate_rpcs": self.validate_rpcs,
            "commit_rpcs": self.commit_rpcs,
            "release_rpcs": self.release_rpcs,
            "torn_reads_observed": self.torn_reads_observed,
        }


@dataclass(frozen=True)
class TxnRead:
    """One read-set entry: what the protocol observed for ``key``."""

    key: str
    shard: int
    version: int
    data: Optional[bytes]

    @property
    def torn(self) -> bool:
        """Ground-truth audit of the observed payload."""
        if self.data is None:
            return False
        torn, _words = torn_words(self.data)
        return torn


@dataclass
class TxnOutcome:
    """Result of :meth:`TxnSession.run`: the final attempt's read set
    plus how the transaction got there."""

    committed: bool
    attempts: int = 0
    lock_aborts: int = 0
    validation_aborts: int = 0
    timed_out: bool = False
    reads: Dict[str, TxnRead] = field(default_factory=dict)

    @property
    def aborts(self) -> int:
        return self.lock_aborts + self.validation_aborts


# ----------------------------------------------------------------------
# the owner-side commit protocol (RPC handlers)
# ----------------------------------------------------------------------


class TxnManager:
    """Registers the commit-protocol handlers on every shard's RPC
    endpoint and owns the per-shard :class:`TxnStats`.

    Create one manager per :class:`ShardedKV`; sessions come from
    :meth:`session`.  The manager piggybacks on the service's existing
    endpoints and worker pools — a transaction commit competes with
    plain puts for the same dispatcher, which is exactly the contention
    the experiments measure.
    """

    def __init__(self, kv: ShardedKV):
        self.kv = kv
        self.stats = [TxnStats() for _ in range(kv.cfg.n_shards)]
        self.sessions: List["TxnSession"] = []
        for shard in range(kv.cfg.n_shards):
            endpoint = kv.shard_rpc(shard)
            endpoint.register("txn_lock", self._make_lock_handler(shard))
            endpoint.register("txn_validate", self._make_validate_handler(shard))
            endpoint.register("txn_commit", self._make_commit_handler(shard))
            endpoint.register("txn_release", self._make_release_handler(shard))

    def session(self, client_index: int) -> "TxnSession":
        session = TxnSession(self, client_index)
        self.sessions.append(session)
        return session

    # ------------------------------------------------------------------
    def merged_stats(self) -> TxnStats:
        merged = TxnStats()
        for stats in self.stats:
            merged.merge(stats)
        return merged

    def txn_rows(self) -> List[Dict[str, int]]:
        """One row per shard: the txn counters keyed for tables."""
        rows = []
        for shard, stats in enumerate(self.stats):
            row: Dict[str, int] = {"shard": shard}
            row.update(stats.as_dict())
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # handlers — owner-side, on the shard's timed memory hierarchy
    # ------------------------------------------------------------------
    def _make_lock_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Try-lock each object; all checks *and* lock stores land
            before the first yield, so the acquisition is atomic with
            respect to every other handler and reader process."""
            sim = kv.cluster.sim
            costs = kv.cfg.costs
            store = kv.stores[shard]
            node = kv.shards[shard]
            ids = _decode_u64s(payload)
            pre: List[int] = []
            for obj in ids:
                version = store.current_version(obj)
                if is_locked(version):
                    # Held by a writer or another transaction: fail
                    # fast — the client releases and retries, which is
                    # what makes the protocol deadlock-free.
                    return _FAIL, costs.writer_block_ns * len(ids)
                pre.append(version)
            core = kv.next_writer_core(shard)
            latency = 0.0
            for obj, version in zip(ids, pre):
                block_ns = node.chip.write_block(
                    core,
                    store.version_addr(obj),
                    lock_version(version).to_bytes(8, "little"),
                )
                latency += max(block_ns, costs.writer_block_ns)
            # Lock hold time is simulated time: the timed stores above
            # (plus the writer's fixed overhead) are charged before the
            # reply leaves, and the locks stay odd throughout.
            yield sim.timeout(costs.writer_fixed_ns + latency)
            return _OK + _encode_u64s(pre), 0.0

        return handler

    def _make_validate_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Read-set validation: the primary must still hold exactly
            the committed version the read observed."""
            words = _decode_u64s(payload)
            store = kv.stores[shard]
            ok = True
            for i in range(0, len(words), 2):
                obj, expected = words[i], words[i + 1]
                if store.current_version(obj) != expected:
                    ok = False
                    break
            # One header re-read per object, charged as service time.
            cost = kv.cfg.costs.writer_block_ns * (len(words) // 2)
            return (_OK if ok else _FAIL), cost

        return handler

    def _make_commit_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Apply phase: each locked object gets its new committed
            image written block-by-block through the timed chip (so
            in-flight SABRes snoop the stores), then replicates to its
            backups asynchronously — the same tail as a plain put."""
            sim = kv.cluster.sim
            cfg = kv.cfg
            store = kv.stores[shard]
            node = kv.shards[shard]
            ws = kv.write_stats[shard]
            ids = _decode_u64s(payload)
            core = kv.next_writer_core(shard)
            yield sim.timeout(cfg.costs.writer_fixed_ns)
            for obj in ids:
                committed = commit_version(store.current_version(obj))
                data = stamped_payload(committed, cfg.payload_len)
                steps, _version = store.commit_steps(obj, data)
                for addr, chunk in steps:
                    block_ns = node.chip.write_block(core, addr, chunk)
                    yield sim.timeout(max(block_ns, cfg.costs.writer_block_ns))
                ws.primary_updates += 1
            for obj in ids:
                replica_payload = obj.to_bytes(8, "little") + bytes(
                    cfg.payload_len
                )
                for backup in kv.replicas_of(kv.key_name(obj))[1:]:
                    kv.shard_rpc(shard).call(
                        kv.shards[backup].node_id,
                        "shard_replicate",
                        replica_payload,
                    )
            return _OK, 0.0

        return handler

    def _make_release_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Abort path: restore each pre-lock version.  The data
            blocks were never touched, so the old committed image
            simply becomes visible again."""
            sim = kv.cluster.sim
            costs = kv.cfg.costs
            store = kv.stores[shard]
            node = kv.shards[shard]
            words = _decode_u64s(payload)
            core = kv.next_writer_core(shard)
            latency = 0.0
            for i in range(0, len(words), 2):
                obj, restore = words[i], words[i + 1]
                block_ns = node.chip.write_block(
                    core, store.version_addr(obj), restore.to_bytes(8, "little")
                )
                latency += max(block_ns, costs.writer_block_ns)
            yield sim.timeout(latency)
            return _OK, 0.0

        return handler


# ----------------------------------------------------------------------
# the client side
# ----------------------------------------------------------------------


class TxnSession:
    """One client's transaction endpoint.

    Owns a :class:`~repro.objstore.sharded.ReaderSession` (so read-set
    reads share the per-shard stats, audit, and retry machinery with
    plain lookups) and drives the commit protocol over the client
    node's RPC endpoint.  Create one per transactional process.
    """

    def __init__(self, manager: TxnManager, client_index: int):
        self.manager = manager
        self.kv = manager.kv
        self.client_index = client_index
        self.reader: ReaderSession = self.kv.reader_session(client_index)
        self._rpc = self.kv.client_rpc(client_index)

    # ------------------------------------------------------------------
    # read phase
    # ------------------------------------------------------------------
    def read(self, key: str, t_end: float):
        """One read-set read of ``key`` from its primary (a simulation
        generator).  Returns a :class:`TxnRead` on a consumed read or
        ``None`` when ``t_end`` arrived first.  The observed payload is
        audited against ground truth into the shard's txn stats."""
        kv = self.kv
        idx = kv.key_index(key)
        shard = kv.primary_of(key)
        self.reader.stats[shard].reads_routed += 1
        ok = yield from self.reader.attempt(shard, idx, t_end)
        if not ok:
            return None
        version, data = self.reader.last_read(shard)
        entry = TxnRead(key=key, shard=shard, version=version, data=data)
        if entry.torn:
            self.manager.stats[shard].torn_reads_observed += 1
        return entry

    # ------------------------------------------------------------------
    # one optimistic attempt
    # ------------------------------------------------------------------
    def attempt(
        self,
        read_keys: Sequence[str],
        write_keys: Sequence[str],
        t_end: float,
    ):
        """One read-validate-commit attempt (a simulation generator).

        Returns ``(status, reads)`` where status is ``"committed"``,
        ``"abort_lock"``, ``"abort_validate"``, or ``"timeout"``.
        Write-set keys are always read first (read-modify-write), so
        the pre-lock versions returned by ``txn_lock`` validate them;
        remaining read-only keys go through ``txn_validate``.
        """
        kv = self.kv
        write_set = set(write_keys)
        for key in write_set | set(read_keys):
            kv.key_index(key)  # raises on unknown keys

        # -- read phase (deterministic key order) ----------------------
        reads: Dict[str, TxnRead] = {}
        for key in sorted(write_set | set(read_keys), key=kv.key_index):
            entry = yield from self.read(key, t_end)
            if entry is None:
                return "timeout", reads

            reads[key] = entry

        # -- lock phase: primaries in ascending shard order ------------
        by_shard: Dict[int, List[str]] = {}
        for key in sorted(write_set, key=kv.key_index):
            by_shard.setdefault(kv.primary_of(key), []).append(key)
        locked: List[Tuple[int, List[int], List[int]]] = []
        for shard in sorted(by_shard):
            keys = by_shard[shard]
            ids = [kv.key_index(k) for k in keys]
            stats = self.manager.stats[shard]
            stats.lock_rpcs += 1
            reply = yield self._rpc.call(
                kv.shards[shard].node_id, "txn_lock", _encode_u64s(ids)
            )
            if not reply.startswith(_OK):
                stats.lock_conflicts += 1
                yield from self._release(locked)
                return "abort_lock", reads
            pre_versions = _decode_u64s(reply[1:])
            locked.append((shard, ids, pre_versions))
            # Write-set validation rides on the lock reply: the version
            # the lock found must be the version the read observed.
            for key, pre in zip(keys, pre_versions):
                if pre != reads[key].version:
                    stats.validation_aborts += 1
                    yield from self._release(locked)
                    return "abort_validate", reads

        # -- validate phase: read-only keys ----------------------------
        ro_by_shard: Dict[int, List[str]] = {}
        for key in sorted(set(read_keys) - write_set, key=kv.key_index):
            ro_by_shard.setdefault(kv.primary_of(key), []).append(key)
        for shard in sorted(ro_by_shard):
            pairs: List[int] = []
            for key in ro_by_shard[shard]:
                pairs.extend((kv.key_index(key), reads[key].version))
            stats = self.manager.stats[shard]
            stats.validate_rpcs += 1
            reply = yield self._rpc.call(
                kv.shards[shard].node_id, "txn_validate", _encode_u64s(pairs)
            )
            if reply != _OK:
                stats.validation_aborts += 1
                yield from self._release(locked)
                return "abort_validate", reads

        # -- apply phase ----------------------------------------------
        for shard, ids, _pre in locked:
            self.manager.stats[shard].commit_rpcs += 1
            yield self._rpc.call(
                kv.shards[shard].node_id, "txn_commit", _encode_u64s(ids)
            )
        for shard in self._touched_shards(reads):
            self.manager.stats[shard].commits += 1
        return "committed", reads

    def _release(self, locked):
        """Roll back every acquired lock (abort path)."""
        for shard, ids, pre_versions in locked:
            pairs: List[int] = []
            for obj, pre in zip(ids, pre_versions):
                pairs.extend((obj, pre))
            self.manager.stats[shard].release_rpcs += 1
            yield self._rpc.call(
                self.kv.shards[shard].node_id, "txn_release", _encode_u64s(pairs)
            )

    @staticmethod
    def _touched_shards(reads: Dict[str, TxnRead]):
        return sorted({entry.shard for entry in reads.values()})

    # ------------------------------------------------------------------
    # retry loop
    # ------------------------------------------------------------------
    def run(
        self,
        read_keys: Sequence[str],
        write_keys: Sequence[str] = (),
        t_end: float = float("inf"),
        max_attempts: Optional[int] = None,
    ):
        """Run one transaction to commit, retrying aborted attempts
        (§7.2's retry-same-object policy, lifted to transactions), as a
        simulation generator returning a :class:`TxnOutcome`."""
        if max_attempts is not None and max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1: {max_attempts}")
        sim = self.kv.cluster.sim
        outcome = TxnOutcome(committed=False)
        while True:
            outcome.attempts += 1
            status, reads = yield from self.attempt(read_keys, write_keys, t_end)
            outcome.reads = reads
            if status == "committed":
                outcome.committed = True
                return outcome
            if status == "abort_lock":
                outcome.lock_aborts += 1
            elif status == "abort_validate":
                outcome.validation_aborts += 1
            else:  # timeout
                outcome.timed_out = True
                return outcome
            if max_attempts is not None and outcome.attempts >= max_attempts:
                return outcome
            if sim.now >= t_end:
                outcome.timed_out = True
                return outcome
            for shard in self._touched_shards(reads):
                self.manager.stats[shard].retries += 1

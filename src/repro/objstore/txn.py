"""Optimistic multi-object transactions over the sharded KV service.

FaRM's real workload is not single-key lookups but multi-object
transactions whose read sets are validated by exactly the per-object
atomicity mechanisms Table 1 compares (§2.1).  This module adds that
layer on top of :class:`~repro.objstore.sharded.ShardedKV`:

* A :class:`TxnSession` executes the **read phase** through the
  session's pluggable :class:`~repro.workloads.protocols.ReadProtocol`
  — each consumed read carries the committed version the mechanism
  vouched for (for SABRes, the hardware verdict's version) plus the
  payload snapshot, recorded as a :class:`TxnRead`.
* The **commit phase** is FaRM-style optimistic concurrency control
  over :class:`~repro.sonuma.rpc.RpcEndpoint` generator handlers, so
  every lock/apply write is charged through the owner's *timed* memory
  hierarchy and destination-side SABRe hardware snoops it exactly like
  any local writer:

  1. ``txn_lock`` — try-lock every write-set object on its primary
     (version goes odd through the timed chip).  The reply carries the
     pre-lock versions, which double as the write-set validation: a
     pre-lock version differing from the version the read observed
     means a conflicting commit slipped in between.
  2. ``txn_validate`` — for read-only keys, re-check that the primary
     still holds exactly the version the read observed (and that no
     writer holds the lock).
  3. ``txn_commit`` — apply each new image block-by-block through the
     timed memory system and publish the even version; backups get the
     same asynchronous replication RPCs as the plain write path.
  4. ``txn_release`` — abort path: restore the pre-lock versions (the
     data was never touched, so readers simply keep seeing the old
     committed image).

  Locks are acquired in globally sorted ``(shard, object)`` order and
  every lock is a *try*-lock, so transactions cannot deadlock: a
  conflict aborts (and retries) instead of waiting.

* :class:`TxnStats` tracks the per-shard outcome counters — commits,
  validation aborts, lock conflicts, retries — plus a transaction-side
  torn-read audit: every read-set payload is checked against the
  ground truth (:func:`~repro.objstore.layout.torn_words`), which is
  how the fuzz suite shows ``remote_read`` consuming torn snapshots
  that every detecting mechanism rejects.

Values follow the repo-wide ground-truth convention: an object's
committed payload is its version stamped into every word, so a
transactional write is "bump the version by two and restamp" and the
audit stays byte-exact across protocols, shards, and replicas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigError,
    LinkPartitionedError,
    ShardCrashedError,
)
from repro.objstore.layout import (
    commit_version,
    is_locked,
    lock_version,
    stamped_payload,
    torn_words,
)
from repro.objstore.sharded import (
    OUTAGE_POLL_NS,
    REPLY_BUSY,
    REPLY_FENCED,
    REPLY_OK,
    ReaderSession,
    ShardedKV,
)

#: Reply tags for the commit-protocol RPCs — the same wire tags the put
#: path uses (:mod:`repro.objstore.sharded`), aliased to this layer's
#: vocabulary (a failed try-lock is "busy": the client retries).
_OK = REPLY_OK
_FAIL = REPLY_BUSY
_FENCED = REPLY_FENCED

#: Poll interval for a lock release refused by a partition window (a
#: lock on a live-but-unreachable shard must not leak; see
#: :meth:`TxnSession._release`).
RELEASE_RETRY_NS = 1_000.0


def _encode_u64s(values: Sequence[int]) -> bytes:
    return b"".join(v.to_bytes(8, "little") for v in values)


def _decode_u64s(blob: bytes) -> List[int]:
    return [
        int.from_bytes(blob[i : i + 8], "little")
        for i in range(0, len(blob), 8)
    ]


# ----------------------------------------------------------------------
# statistics and read-set entries
# ----------------------------------------------------------------------


@dataclass
class TxnStats:
    """Per-shard transaction counters (attributed to a key's *primary*
    shard; increments happen between simulation yields, so they are
    race-free like every other counter in the repo)."""

    commits: int = 0
    validation_aborts: int = 0
    lock_conflicts: int = 0
    retries: int = 0
    lock_rpcs: int = 0
    validate_rpcs: int = 0
    commit_rpcs: int = 0
    release_rpcs: int = 0
    #: Release RPCs re-sent because a partition window refused them:
    #: locks on a *live* shard must never leak, so the abort path
    #: polls until the link heals (or the shard actually crashes).
    release_retries: int = 0
    #: Attempts force-aborted because a shard crashed (typed RPC
    #: failure) or fenced the attempt after a view change — the
    #: distinct abort reason failover injects, separate from the
    #: optimistic-concurrency aborts above.
    crash_aborts: int = 0
    #: Try-locks this shard refused for a stale epoch or ownership.
    fenced_locks: int = 0
    #: Commit-phase write-set objects whose apply was skipped *or*
    #: never confirmed, counted per object: the handler counts objects
    #: it skipped because their lock died in a crash + re-sync, and
    #: the client counts every object of a commit RPC that failed with
    #: a typed error or fence — for those the apply may actually have
    #: landed before the crash ate the reply, so this is an upper
    #: bound on unapplied objects, not an exact count (FaRM resolves
    #: the ambiguity from its log — this reproduction only counts it).
    partial_commits: int = 0
    #: Read-set payloads the ground-truth audit found torn.  Detecting
    #: protocols never consume one; ``remote_read`` does under
    #: conflicting writers — the fuzz suite pins both directions.
    torn_reads_observed: int = 0

    def merge(self, other: "TxnStats") -> None:
        self.commits += other.commits
        self.validation_aborts += other.validation_aborts
        self.lock_conflicts += other.lock_conflicts
        self.retries += other.retries
        self.lock_rpcs += other.lock_rpcs
        self.validate_rpcs += other.validate_rpcs
        self.commit_rpcs += other.commit_rpcs
        self.release_rpcs += other.release_rpcs
        self.release_retries += other.release_retries
        self.crash_aborts += other.crash_aborts
        self.fenced_locks += other.fenced_locks
        self.partial_commits += other.partial_commits
        self.torn_reads_observed += other.torn_reads_observed

    def as_dict(self) -> Dict[str, int]:
        return {
            "commits": self.commits,
            "validation_aborts": self.validation_aborts,
            "lock_conflicts": self.lock_conflicts,
            "retries": self.retries,
            "lock_rpcs": self.lock_rpcs,
            "validate_rpcs": self.validate_rpcs,
            "commit_rpcs": self.commit_rpcs,
            "release_rpcs": self.release_rpcs,
            "release_retries": self.release_retries,
            "crash_aborts": self.crash_aborts,
            "fenced_locks": self.fenced_locks,
            "partial_commits": self.partial_commits,
            "torn_reads_observed": self.torn_reads_observed,
        }


@dataclass(frozen=True)
class TxnRead:
    """One read-set entry: what the protocol observed for ``key``."""

    key: str
    shard: int
    version: int
    data: Optional[bytes]

    @property
    def torn(self) -> bool:
        """Ground-truth audit of the observed payload."""
        if self.data is None:
            return False
        torn, _words = torn_words(self.data)
        return torn


@dataclass
class TxnOutcome:
    """Result of :meth:`TxnSession.run`: the final attempt's read set
    plus how the transaction got there."""

    committed: bool
    attempts: int = 0
    lock_aborts: int = 0
    validation_aborts: int = 0
    #: Attempts force-aborted by a crashed or fenced shard.
    crash_aborts: int = 0
    timed_out: bool = False
    reads: Dict[str, TxnRead] = field(default_factory=dict)

    @property
    def aborts(self) -> int:
        return self.lock_aborts + self.validation_aborts + self.crash_aborts


# ----------------------------------------------------------------------
# the owner-side commit protocol (RPC handlers)
# ----------------------------------------------------------------------


class TxnManager:
    """Registers the commit-protocol handlers on every shard's RPC
    endpoint and owns the per-shard :class:`TxnStats`.

    Create one manager per :class:`ShardedKV`; sessions come from
    :meth:`session`.  The manager piggybacks on the service's existing
    endpoints and worker pools — a transaction commit competes with
    plain puts for the same dispatcher, which is exactly the contention
    the experiments measure.
    """

    def __init__(self, kv: ShardedKV):
        self.kv = kv
        self.stats = [TxnStats() for _ in range(kv.provisioned)]
        self.sessions: List["TxnSession"] = []
        #: Owner tokens, one per commit attempt (deterministic), so
        #: handlers can tell this attempt's locks from anyone else's.
        self._tokens = itertools.count(1)
        for shard in range(kv.provisioned):
            endpoint = kv.shard_rpc(shard)
            endpoint.register("txn_lock", self._make_lock_handler(shard))
            endpoint.register("txn_validate", self._make_validate_handler(shard))
            endpoint.register("txn_commit", self._make_commit_handler(shard))
            endpoint.register("txn_release", self._make_release_handler(shard))

    def session(self, client_index: int) -> "TxnSession":
        session = TxnSession(self, client_index)
        self.sessions.append(session)
        return session

    # ------------------------------------------------------------------
    def merged_stats(self) -> TxnStats:
        merged = TxnStats()
        for stats in self.stats:
            merged.merge(stats)
        return merged

    def txn_rows(self) -> List[Dict[str, int]]:
        """One row per shard: the txn counters keyed for tables."""
        rows = []
        for shard, stats in enumerate(self.stats):
            row: Dict[str, int] = {"shard": shard}
            row.update(stats.as_dict())
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # handlers — owner-side, on the shard's timed memory hierarchy
    # ------------------------------------------------------------------
    def _make_lock_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Try-lock each object; all checks *and* lock stores land
            before the first yield, so the acquisition is atomic with
            respect to every other handler and reader process.

            The try-lock is *fenced*: the first 8 payload bytes carry
            the client's epoch, and the lock is refused outright when
            that epoch is stale, this shard is not serving (crashed or
            still re-syncing), or it is no longer the current primary
            of every named object — a transaction can never pin objects
            on a shard the promoted view has moved on from.

            The next 8 bytes carry the attempt's *owner token*,
            recorded per object so commit/release act only on locks
            this very attempt acquired (bare version values are
            ABA-vulnerable across a crash + re-sync)."""
            sim = kv.cluster.sim
            costs = kv.cfg.costs
            store = kv.stores[shard]
            node = kv.shards[shard]
            epoch = int.from_bytes(payload[:8], "little")
            token = int.from_bytes(payload[8:16], "little")
            ids = _decode_u64s(payload[16:])
            if (
                epoch != kv.epoch
                or not kv.serving[shard]
                or any(
                    kv.current_primary_by_index(obj) != shard for obj in ids
                )
            ):
                self.stats[shard].fenced_locks += 1
                return _FENCED, costs.writer_block_ns
            pre: List[int] = []
            for obj in ids:
                version = store.current_version(obj)
                if is_locked(version):
                    # Held by a writer or another transaction: fail
                    # fast — the client releases and retries, which is
                    # what makes the protocol deadlock-free.
                    return _FAIL, costs.writer_block_ns * len(ids)
                pre.append(version)
            core = kv.next_writer_core(shard)
            latency = 0.0
            for obj, version in zip(ids, pre):
                kv.lock_owners[shard][obj] = token
                block_ns = node.chip.write_block(
                    core,
                    store.version_addr(obj),
                    lock_version(version).to_bytes(8, "little"),
                )
                latency += max(block_ns, costs.writer_block_ns)
            # Lock hold time is simulated time: the timed stores above
            # (plus the writer's fixed overhead) are charged before the
            # reply leaves, and the locks stay odd throughout.  Bare
            # float yields ride the RPC dispatcher's fast path.
            yield costs.writer_fixed_ns + latency
            return _OK + _encode_u64s(pre), 0.0

        return handler

    def _make_validate_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Read-set validation: the primary must still hold exactly
            the committed version the read observed.  Fenced like the
            try-lock (stale epoch / not serving), so validation cannot
            vouch for reads against a superseded view."""
            epoch = int.from_bytes(payload[:8], "little")
            words = _decode_u64s(payload[8:])
            store = kv.stores[shard]
            if epoch != kv.epoch or not kv.serving[shard]:
                self.stats[shard].fenced_locks += 1
                return _FENCED, kv.cfg.costs.writer_block_ns
            ok = True
            for i in range(0, len(words), 2):
                obj, expected = words[i], words[i + 1]
                if store.current_version(obj) != expected:
                    ok = False
                    break
            # One header re-read per object, charged as service time.
            cost = kv.cfg.costs.writer_block_ns * (len(words) // 2)
            return (_OK if ok else _FAIL), cost

        return handler

    def _make_commit_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Apply phase: each locked object gets its new committed
            image written block-by-block through the timed chip (so
            in-flight SABRes snoop the stores), then replicates to its
            backups asynchronously — the same tail as a plain put.

            Deliberately *not* epoch-fenced (nor is ``txn_release``):
            these two only ever touch objects this transaction already
            holds locked, and fencing gates lock *acquisition* — a
            holder must always be able to finish or clean up, or a view
            change between lock and commit would strand odd versions on
            live shards forever.  Two crash guards apply instead: a
            non-serving shard (crashed and possibly re-syncing since
            the lock phase) refuses outright, and an object no longer
            owned by this attempt's token (the lock died in a crash +
            re-sync, and possibly someone else locked it since) is
            skipped — its committed image is already the re-synced
            one, and another holder's lock must not be touched."""
            sim = kv.cluster.sim
            cfg = kv.cfg
            store = kv.stores[shard]
            node = kv.shards[shard]
            ws = kv.write_stats[shard]
            owners = kv.lock_owners[shard]
            token = int.from_bytes(payload[:8], "little")
            ids = _decode_u64s(payload[8:])
            if not kv.serving[shard]:
                # The client counts this fenced reply as a partial
                # commit; counting here too would double-book it.
                return _FENCED, 0.0
            core = kv.next_writer_core(shard)
            yield cfg.costs.writer_fixed_ns
            applied: List[int] = []
            for obj in ids:
                current = store.current_version(obj)
                if not is_locked(current) or owners.get(obj) != token:
                    # The lock died in a crash; re-sync restored the
                    # pre-transaction committed image.  Not applied —
                    # and, crucially, not replicated below either, or
                    # backups would run ahead with a write the primary
                    # never committed.
                    self.stats[shard].partial_commits += 1
                    continue
                committed = commit_version(current)
                data = stamped_payload(committed, cfg.payload_len)
                steps, _version = store.commit_steps(obj, data)
                for addr, chunk in steps:
                    block_ns = node.chip.write_block(core, addr, chunk)
                    yield max(block_ns, cfg.costs.writer_block_ns)
                ws.primary_updates += 1
                del owners[obj]
                applied.append(obj)
            for obj in applied:
                replica_payload = (
                    kv.epoch.to_bytes(8, "little")
                    + obj.to_bytes(8, "little")
                    + bytes(cfg.payload_len)
                )
                for backup in kv.replicas_of(kv.key_name(obj))[1:]:
                    kv.shard_rpc(shard).call(
                        kv.shards[backup].node_id,
                        "shard_replicate",
                        replica_payload,
                        timeout_ns=kv.rpc_timeout_ns,
                    )
            return _OK, 0.0

        return handler

    def _make_release_handler(self, shard: int):
        kv = self.kv

        def handler(payload: bytes):
            """Abort path: restore each pre-lock version.  The data
            blocks were never touched, so the old committed image
            simply becomes visible again.

            Each restore only lands if this attempt's owner token
            still holds the object *and* it carries exactly the
            version the lock published: if the shard crashed and
            re-synced in between (clearing the lock — and possibly
            catching up on the promotee's newer writes, or handing the
            lock to a new owner at the very same odd version), writing
            the old version back would regress the object or unlock
            someone else's critical section, so the stale restore is
            skipped instead."""
            sim = kv.cluster.sim
            costs = kv.cfg.costs
            store = kv.stores[shard]
            node = kv.shards[shard]
            owners = kv.lock_owners[shard]
            token = int.from_bytes(payload[:8], "little")
            words = _decode_u64s(payload[8:])
            core = kv.next_writer_core(shard)
            latency = 0.0
            for i in range(0, len(words), 2):
                obj, restore = words[i], words[i + 1]
                if (
                    owners.get(obj) != token
                    or store.current_version(obj) != lock_version(restore)
                ):
                    continue
                del owners[obj]
                block_ns = node.chip.write_block(
                    core, store.version_addr(obj), restore.to_bytes(8, "little")
                )
                latency += max(block_ns, costs.writer_block_ns)
            yield latency
            return _OK, 0.0

        return handler


# ----------------------------------------------------------------------
# the client side
# ----------------------------------------------------------------------


class TxnSession:
    """One client's transaction endpoint.

    Owns a :class:`~repro.objstore.sharded.ReaderSession` (so read-set
    reads share the per-shard stats, audit, and retry machinery with
    plain lookups) and drives the commit protocol over the client
    node's RPC endpoint.  Create one per transactional process.
    """

    def __init__(self, manager: TxnManager, client_index: int):
        self.manager = manager
        self.kv = manager.kv
        self.client_index = client_index
        self.reader: ReaderSession = self.kv.reader_session(client_index)
        self._rpc = self.kv.client_rpc(client_index)

    # ------------------------------------------------------------------
    # read phase
    # ------------------------------------------------------------------
    def read(self, key: str, t_end: float):
        """One read-set read of ``key`` from its *current* primary (a
        simulation generator) — the promoted backup after a crash.
        Returns a :class:`TxnRead` on a consumed read or ``None`` when
        ``t_end`` arrived first.  The observed payload is audited
        against ground truth into the shard's txn stats."""
        kv = self.kv
        sim = kv.cluster.sim
        idx = kv.key_index(key)
        while True:
            shard = kv.current_primary_by_index(idx)
            if shard is None:
                # Total outage for this key: poll the view.
                if sim.now >= t_end:
                    return None
                yield sim.timeout(min(OUTAGE_POLL_NS, t_end - sim.now))
                continue
            self.reader.stats[shard].reads_routed += 1
            # Bound the attempt when failover is active so a crash
            # mid-read re-routes to the promoted view promptly.
            deadline = min(t_end, sim.now + kv.reroute_check_ns)
            ok = yield from self.reader.attempt(shard, idx, deadline)
            if ok:
                break
            if sim.now >= t_end:
                return None
        version, data = self.reader.last_read(shard)
        entry = TxnRead(key=key, shard=shard, version=version, data=data)
        if entry.torn:
            self.manager.stats[shard].torn_reads_observed += 1
        return entry

    # ------------------------------------------------------------------
    # one optimistic attempt
    # ------------------------------------------------------------------
    def attempt(
        self,
        read_keys: Sequence[str],
        write_keys: Sequence[str],
        t_end: float,
    ):
        """One read-validate-commit attempt (a simulation generator).

        Returns ``(status, reads)`` where status is ``"committed"``,
        ``"abort_lock"``, ``"abort_validate"``, ``"abort_crash"``, or
        ``"timeout"``.  Write-set keys are always read first
        (read-modify-write), so the pre-lock versions returned by
        ``txn_lock`` validate them; remaining read-only keys go through
        ``txn_validate``.

        ``abort_crash`` is the failover-injected reason: a shard
        crashed under one of the attempt's RPCs (typed error) or fenced
        it after a view change.  Acquired locks are rolled back on live
        shards; locks on the crashed shard die with it (its re-sync
        restores committed images).
        """
        kv = self.kv
        write_set = set(write_keys)
        for key in write_set | set(read_keys):
            kv.key_index(key)  # raises on unknown keys

        # -- read phase (deterministic key order) ----------------------
        reads: Dict[str, TxnRead] = {}
        for key in sorted(write_set | set(read_keys), key=kv.key_index):
            entry = yield from self.read(key, t_end)
            if entry is None:
                return "timeout", reads

            reads[key] = entry

        # -- lock phase: current primaries in ascending shard order ----
        epoch = kv.epoch
        token = next(self.manager._tokens)
        by_shard: Dict[int, List[str]] = {}
        for key in sorted(write_set, key=kv.key_index):
            shard = kv.current_primary(key)
            if shard is None:  # total outage for this key
                self.manager.stats[kv.primary_of(key)].crash_aborts += 1
                return "abort_crash", reads
            by_shard.setdefault(shard, []).append(key)
        locked: List[Tuple[int, List[int], List[int]]] = []
        for shard in sorted(by_shard):
            keys = by_shard[shard]
            ids = [kv.key_index(k) for k in keys]
            stats = self.manager.stats[shard]
            stats.lock_rpcs += 1
            reply = yield self._rpc.call(
                kv.shards[shard].node_id,
                "txn_lock",
                epoch.to_bytes(8, "little")
                + token.to_bytes(8, "little")
                + _encode_u64s(ids),
                timeout_ns=kv.rpc_timeout_ns,
            )
            if isinstance(reply, ShardCrashedError) or reply == _FENCED:
                stats.crash_aborts += 1
                yield from self._release(locked, token)
                return "abort_crash", reads
            if not reply.startswith(_OK):
                stats.lock_conflicts += 1
                yield from self._release(locked, token)
                return "abort_lock", reads
            pre_versions = _decode_u64s(reply[1:])
            locked.append((shard, ids, pre_versions))
            # Write-set validation rides on the lock reply: the version
            # the lock found must be the version the read observed.
            for key, pre in zip(keys, pre_versions):
                if pre != reads[key].version:
                    stats.validation_aborts += 1
                    yield from self._release(locked, token)
                    return "abort_validate", reads

        # -- validate phase: read-only keys ----------------------------
        ro_by_shard: Dict[int, List[str]] = {}
        for key in sorted(set(read_keys) - write_set, key=kv.key_index):
            shard = kv.current_primary(key)
            if shard is None:
                self.manager.stats[kv.primary_of(key)].crash_aborts += 1
                yield from self._release(locked, token)
                return "abort_crash", reads
            ro_by_shard.setdefault(shard, []).append(key)
        for shard in sorted(ro_by_shard):
            pairs: List[int] = []
            for key in ro_by_shard[shard]:
                pairs.extend((kv.key_index(key), reads[key].version))
            stats = self.manager.stats[shard]
            stats.validate_rpcs += 1
            reply = yield self._rpc.call(
                kv.shards[shard].node_id,
                "txn_validate",
                epoch.to_bytes(8, "little") + _encode_u64s(pairs),
                timeout_ns=kv.rpc_timeout_ns,
            )
            if isinstance(reply, ShardCrashedError) or reply == _FENCED:
                stats.crash_aborts += 1
                yield from self._release(locked, token)
                return "abort_crash", reads
            if reply != _OK:
                stats.validation_aborts += 1
                yield from self._release(locked, token)
                return "abort_validate", reads

        # -- apply phase ----------------------------------------------
        for shard, ids, _pre in locked:
            self.manager.stats[shard].commit_rpcs += 1
            reply = yield self._rpc.call(
                kv.shards[shard].node_id,
                "txn_commit",
                token.to_bytes(8, "little") + _encode_u64s(ids),
                timeout_ns=kv.rpc_timeout_ns,
            )
            if isinstance(reply, ShardCrashedError) or reply == _FENCED:
                # The shard died (or rejoined non-serving) between lock
                # and apply: its objects keep the pre-transaction image
                # on the promoted backup, the rest of the write set
                # applies.  Counted per skipped object (matching the
                # handler-side unit), not rolled back (see
                # TxnStats.partial_commits).
                self.manager.stats[shard].partial_commits += len(ids)
        for shard in self._touched_shards(reads):
            self.manager.stats[shard].commits += 1
        return "committed", reads

    def _release(self, locked, token: int):
        """Roll back every acquired lock (abort path).  A crashed
        shard's typed failure is ignored: its locks die with it and
        re-sync restores committed (even-version) images.  A
        *partition* refusal is different — the shard is alive and its
        lock table intact, so abandoning the release would leak the
        lock forever (every writer of the object would spin on it).
        The release polls until the link heals: the lock stays held for
        the window (writers back off, which is what a real partition
        does) and clears the moment the conversation can flow again."""
        sim = self.kv.cluster.sim
        for shard, ids, pre_versions in locked:
            pairs: List[int] = []
            for obj, pre in zip(ids, pre_versions):
                pairs.extend((obj, pre))
            payload = token.to_bytes(8, "little") + _encode_u64s(pairs)
            stats = self.manager.stats[shard]
            stats.release_rpcs += 1
            while True:
                reply = yield self._rpc.call(
                    self.kv.shards[shard].node_id,
                    "txn_release",
                    payload,
                    timeout_ns=self.kv.rpc_timeout_ns,
                )
                if not isinstance(reply, LinkPartitionedError):
                    break
                stats.release_retries += 1
                yield sim.timeout(RELEASE_RETRY_NS)

    @staticmethod
    def _touched_shards(reads: Dict[str, TxnRead]):
        return sorted({entry.shard for entry in reads.values()})

    # ------------------------------------------------------------------
    # retry loop
    # ------------------------------------------------------------------
    def run(
        self,
        read_keys: Sequence[str],
        write_keys: Sequence[str] = (),
        t_end: float = float("inf"),
        max_attempts: Optional[int] = None,
    ):
        """Run one transaction to commit, retrying aborted attempts
        (§7.2's retry-same-object policy, lifted to transactions), as a
        simulation generator returning a :class:`TxnOutcome`."""
        if max_attempts is not None and max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1: {max_attempts}")
        sim = self.kv.cluster.sim
        outcome = TxnOutcome(committed=False)
        while True:
            outcome.attempts += 1
            status, reads = yield from self.attempt(read_keys, write_keys, t_end)
            outcome.reads = reads
            if status == "committed":
                outcome.committed = True
                return outcome
            if status == "abort_lock":
                outcome.lock_aborts += 1
            elif status == "abort_validate":
                outcome.validation_aborts += 1
            elif status == "abort_crash":
                outcome.crash_aborts += 1
            else:  # timeout
                outcome.timed_out = True
                return outcome
            if max_attempts is not None and outcome.attempts >= max_attempts:
                return outcome
            if sim.now >= t_end:
                outcome.timed_out = True
                return outcome
            for shard in self._touched_shards(reads):
                self.manager.stats[shard].retries += 1

"""Local read throughput (Fig. 10).

LightSABRes never touch local reads, but they *enable* keeping the
object store unmodified (no per-cache-line versions), which makes local
reads faster: no stripping, no wire inflation, no extra memory traffic
for the stripped copy.  This kernel runs 15 reader threads against a
node-local store and measures application throughput for both layouts.

The model: each lookup pays a fixed API/key-lookup cost, then the core
streams the object — computation (strip/compare for perCL, plain reads
otherwise) overlapped with the object's memory traffic through the
shared DRAM channels, so contention between the 15 readers is emergent
rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import ClusterConfig
from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.common.units import CACHE_BLOCK
from repro.objstore.layout import PerCacheLineLayout, RawLayout, stamped_payload
from repro.objstore.store import ObjectStore
from repro.sim.stats import Samples, ThroughputMeter
from repro.sonuma.node import Cluster


@dataclass
class LocalReadConfig:
    """``object_size`` includes the 8 B header, as elsewhere."""

    percl_layout: bool = False
    object_size: int = 1024
    n_objects: int = 0  # 0 = auto-size working set to 4x the LLC
    readers: int = 15
    duration_ns: float = 150_000.0
    warmup_ns: float = 20_000.0
    seed: int = 1
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)
    cluster: Optional[ClusterConfig] = None

    def validate(self) -> None:
        if self.object_size < 16:
            raise ConfigError("object_size must cover the header plus data")
        if self.readers < 1:
            raise ConfigError("need at least one reader")

    @property
    def payload_len(self) -> int:
        return self.object_size - 8


@dataclass
class LocalReadResult:
    config: LocalReadConfig
    goodput_gbps: float
    ops_completed: int
    op_latency: Samples


def _bulk_dram(node, addr: int, nbytes: int) -> float:
    """Reserve DRAM channel time for a streaming access; returns the
    completion time (channels are block-interleaved, so the stream
    spreads across all of them)."""
    done = node.sim.now
    offset = 0
    while offset < nbytes:
        done = max(done, node.chip.dram.request(addr + offset, CACHE_BLOCK))
        offset += CACHE_BLOCK
    return done


def run_local_reads(cfg: LocalReadConfig) -> LocalReadResult:
    cfg.validate()
    cluster = Cluster(cfg.cluster or ClusterConfig())
    node = cluster.node(0)
    sim = cluster.sim
    costs = cfg.costs
    layout = PerCacheLineLayout() if cfg.percl_layout else RawLayout()
    store = ObjectStore(node.phys, layout, name="local")

    wire = layout.wire_size(cfg.payload_len)
    n_objects = cfg.n_objects
    if n_objects == 0:
        # Working set 4x the LLC so reads are memory-bound (§7.3 keeps
        # remote accesses missing in the LLC; we mirror that locally).
        llc_bytes = cluster.cfg.node.caches.llc_bytes
        n_objects = max(16, (4 * llc_bytes) // wire)
    for i in range(n_objects):
        store.create(i, stamped_payload(0, cfg.payload_len))

    meter = ThroughputMeter()
    latency = Samples("local_read_ns")

    def reader(thread: int):
        rng = make_rng(cfg.seed, "local-reader", thread)
        ids = list(range(n_objects))
        while sim.now < cfg.duration_ns:
            obj_id = rng.choice(ids)
            handle = store.handle(obj_id)
            t0 = sim.now
            yield sim.timeout(costs.local_fixed_ns)
            if cfg.percl_layout:
                # Strip+check reads the inflated wire image and writes a
                # clean copy.  Traffic: the wire image in, plus the
                # clean copy's write-allocate fill (RFO) and its dirty
                # write-back when it ages out of the cache.
                compute = costs.strip_cost_ns(wire)
                traffic = wire + 2 * cfg.payload_len
            else:
                # Unmodified store: the application walks the object in
                # place; traffic is just the object itself.
                compute = cfg.payload_len * costs.local_read_ns_per_byte
                traffic = cfg.object_size
            mem_done = _bulk_dram(node, handle.base_addr, traffic)
            compute_done = sim.now + compute
            finish = max(mem_done, compute_done)
            yield sim.timeout(finish - sim.now)
            latency.add(sim.now - t0)
            meter.record(cfg.payload_len)

    for t in range(cfg.readers):
        sim.process(reader(t))

    def metering():
        yield sim.timeout(cfg.warmup_ns)
        meter.start(sim.now)
        yield sim.timeout(cfg.duration_ns - cfg.warmup_ns)
        meter.stop(sim.now)

    sim.process(metering())
    sim.run()
    return LocalReadResult(
        config=cfg,
        goodput_gbps=meter.gbps,
        ops_completed=meter.ops_total,
        op_latency=latency,
    )

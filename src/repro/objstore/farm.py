"""FaRM-like framework on soNUMA: timed key-value lookups (§6, Fig. 9).

Two builds, as evaluated in the paper:

* **baseline** — the original FaRM object layout (per-cache-line
  versions); lookups use plain one-sided reads, land in an intermediate
  system buffer, and the core strips/checks versions before handing the
  clean object to the application (non-zero-copy).
* **sabre** — the store keeps the unmodified layout; lookups are
  SABRes that write the already-clean object straight into the
  application buffer (zero-copy), and atomicity comes from the CQ
  success flag.

Each completed lookup records the paper's latency breakdown components
(transfer / framework / version stripping / application), feeding
Figs. 1 and 9a directly.  Writes ship to the data owner over an RPC
(§2.1) and run the odd/even version protocol there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import ClusterConfig
from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.objstore.layout import (
    PerCacheLineLayout,
    RawLayout,
    stamped_payload,
    torn_words,
)
from repro.objstore.store import ObjectStore
from repro.sim.stats import Breakdown, Samples, ThroughputMeter
from repro.sonuma.node import Cluster
from repro.sonuma.rpc import RpcEndpoint

#: Breakdown components of Figs. 1 and 9a.
COMPONENTS = ("transfer", "framework", "stripping", "application")


@dataclass
class FarmConfig:
    """One FaRM experiment configuration.

    ``object_size`` is the total object footprint including the 8 B
    header, as in the microbenchmark.
    """

    use_sabre: bool = False
    object_size: int = 1024
    n_objects: int = 4096
    readers: int = 1
    duration_ns: float = 200_000.0
    warmup_ns: float = 25_000.0
    seed: int = 1
    version_bits: int = 16
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)
    cluster: Optional[ClusterConfig] = None

    def validate(self) -> None:
        if self.object_size < 16:
            raise ConfigError("object_size must cover the header plus data")
        if self.readers < 1:
            raise ConfigError("need at least one reader")
        if self.n_objects < 1:
            raise ConfigError("need at least one object")

    @property
    def payload_len(self) -> int:
        return self.object_size - 8


@dataclass
class FarmResult:
    config: FarmConfig
    breakdown: Breakdown
    op_latency: Samples
    goodput_gbps: float
    ops_completed: int
    conflicts: int
    undetected_violations: int

    @property
    def mean_latency_ns(self) -> float:
        return self.op_latency.mean


class FarmKV:
    """A two-node FaRM deployment: node 0 owns the data, node 1 runs
    the read-only key-value lookup application."""

    def __init__(self, cfg: FarmConfig):
        cfg.validate()
        self.cfg = cfg
        self.cluster = Cluster(cfg.cluster or ClusterConfig())
        self.owner = self.cluster.node(0)
        self.client = self.cluster.node(1)
        layout = (
            RawLayout() if cfg.use_sabre else PerCacheLineLayout(cfg.version_bits)
        )
        self.store = ObjectStore(self.owner.phys, layout, name="farm")
        self._keys: Dict[str, int] = {}
        for i in range(cfg.n_objects):
            key = f"key-{i}"
            self.store.create(i, stamped_payload(0, cfg.payload_len))
            self._keys[key] = i
        self.breakdown = Breakdown(COMPONENTS)
        self.op_latency = Samples("farm_op_ns")
        self.meter = ThroughputMeter()
        self.conflicts = 0
        self.undetected_violations = 0
        self._rpc_owner = RpcEndpoint(self.owner, workers=2, costs=cfg.costs)
        self._rpc_client = RpcEndpoint(self.client, workers=2, costs=cfg.costs)
        self._rpc_owner.register("farm_put", self._serve_put)

    # ------------------------------------------------------------------
    # write path: RPC to the data owner (§2.1)
    # ------------------------------------------------------------------
    def _serve_put(self, payload: bytes):
        """Owner-side put handler: functional update + service time."""
        obj_id = int.from_bytes(payload[:8], "little")
        data = payload[8:]
        self.store.write(obj_id, data)
        return b"\x01", self.cfg.costs.writer_update_ns(len(data))

    def put(self, key: str, data: bytes):
        """Client-side put; returns the RPC completion event."""
        obj_id = self._keys[key]
        return self._rpc_client.call(
            self.owner.node_id, "farm_put", obj_id.to_bytes(8, "little") + data
        )

    def keys(self) -> List[str]:
        return list(self._keys)

    # ------------------------------------------------------------------
    # read path: the Fig. 9 lookup loop
    # ------------------------------------------------------------------
    def reader_process(self, thread: int, t_end: float):
        sim = self.cluster.sim
        cfg = self.cfg
        costs = cfg.costs
        layout = self.store.layout
        rng = make_rng(cfg.seed, "farm-reader", thread)
        object_ids = list(range(cfg.n_objects))
        wire = layout.wire_size(cfg.payload_len)
        buf = self.client.alloc_buffer(wire)

        while sim.now < t_end:
            obj_id = rng.choice(object_ids)
            handle = self.store.handle(obj_id)
            t0 = sim.now
            components = dict.fromkeys(COMPONENTS, 0.0)
            while True:
                # FaRM framework: request setup, index lookup, (baseline
                # only) intermediate-buffer management.
                fw = costs.framework_ns(zero_copy=cfg.use_sabre, wire_bytes=wire)
                components["framework"] += fw
                yield sim.timeout(fw)

                if cfg.use_sabre:
                    ev = self.client.sabre_read(
                        self.owner.node_id, handle.base_addr, wire, buf
                    )
                else:
                    ev = self.client.remote_read(
                        self.owner.node_id, handle.base_addr, wire, buf
                    )
                result = yield ev
                components["transfer"] += result.timings.end_to_end_ns

                if cfg.use_sabre:
                    ok = result.success
                    data = None
                    if ok:
                        raw = self.client.read_local(buf, wire)
                        data = layout.unpack(raw, cfg.payload_len).data
                        # Zero-copy: the app walks an LLC-resident object.
                        app = costs.app_consume_ns(cfg.payload_len, "llc")
                        components["application"] += app
                        yield sim.timeout(app)
                else:
                    strip_ns = costs.strip_cost_ns(wire)
                    components["stripping"] += strip_ns
                    yield sim.timeout(strip_ns)
                    raw = self.client.read_local(buf, wire)
                    strip = layout.unpack(raw, cfg.payload_len)
                    ok = strip.ok
                    data = strip.data
                    if ok:
                        # The strip left the clean object in the L1d.
                        app = costs.app_consume_ns(cfg.payload_len, "l1")
                        components["application"] += app
                        yield sim.timeout(app)

                if ok:
                    if data is not None and torn_words(data)[0]:
                        self.undetected_violations += 1
                    self.op_latency.add(sim.now - t0)
                    self.breakdown.add_op(**components)
                    self.meter.record(cfg.payload_len)
                    break
                self.conflicts += 1
                if sim.now >= t_end:
                    break

    # ------------------------------------------------------------------
    def run_readonly(self) -> FarmResult:
        """The Fig. 9 experiment: read-only lookups from the client."""
        sim = self.cluster.sim
        cfg = self.cfg
        for thread in range(cfg.readers):
            sim.process(self.reader_process(thread, cfg.duration_ns))

        def metering():
            yield sim.timeout(cfg.warmup_ns)
            self.meter.start(sim.now)
            yield sim.timeout(cfg.duration_ns - cfg.warmup_ns)
            self.meter.stop(sim.now)

        sim.process(metering())
        sim.run()
        return FarmResult(
            config=cfg,
            breakdown=self.breakdown,
            op_latency=self.op_latency,
            goodput_gbps=self.meter.gbps,
            ops_completed=self.meter.ops_total,
            conflicts=self.conflicts,
            undetected_violations=self.undetected_violations,
        )


def run_farm(cfg: FarmConfig) -> FarmResult:
    return FarmKV(cfg).run_readonly()

"""Fault injection and recovery over the sharded FaRM service.

The paper's premise is that atomicity mechanisms must hold while
writers race readers; rack-scale systems additionally lose nodes
mid-race.  FaRM reconfigures around failures with leases and a
configuration epoch, and DrTM falls back to backup replicas — this
module brings that failure model to :class:`~repro.objstore.sharded.
ShardedKV` so the backup-fallback, retry, and abort paths are exercised
under *real* crashes instead of only under contention:

* A :class:`FailurePlan` is data: a list of :class:`ShardFault` entries
  (crash time, optional recovery time) validated for per-shard
  ordering.  :meth:`FailurePlan.cycles` builds the standard soak shape
  — repeated crash/recover cycles round-robining over shards.
* A :class:`FailoverManager` turns the plan into simulation events.  On
  a **crash** it expires the node's lease at the fabric (packets from
  and to it vanish), fails every in-flight RPC addressed to it with a
  typed :class:`~repro.common.errors.ShardCrashedError`, aborts every
  in-flight one-sided transfer targeting it (``crashed`` CQ entries),
  and drives the view change: the next serving replica of every key the
  shard was primary for is *promoted* (permanently — the crashed shard
  rejoins as a backup) and the configuration epoch is bumped so stale
  requests are fenced by every RPC handler.
* On a **recovery** the node's NI comes back, but the shard does not
  serve again until a timed **re-sync** completes: the manager charges
  ``resync_fixed_ns + resync_ns_per_object x hosted objects`` of
  simulated time, then copies the current committed image of every
  hosted object from that object's current primary and re-admits the
  shard (another epoch bump).  Requests arriving in the window between
  NI-up and re-sync-end are fenced — a rejoining shard can never serve
  stale data.

Readers keep reading through promotions (:meth:`ReaderSession.lookup`
routes over serving replicas), writers redirect to the promotee
(:meth:`ShardedKV.put` retries on the typed error), and transactions
see crashed shards as forced aborts with the distinct ``abort_crash``
reason (:class:`~repro.objstore.txn.TxnStats.crash_aborts`).

Everything is deterministic: crash/recover times come from the plan,
failure notifications iterate endpoints and transfer tables in fixed
order, and re-sync synthesizes committed images from the repo-wide
ground-truth convention (a committed payload is fully determined by its
version), so failover runs are byte-identical under parallel sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.objstore.sharded import ShardedKV

#: Default bound on one read attempt while failover is active, so a
#: crash mid-attempt re-routes to the promoted view promptly instead of
#: hammering a dead shard until the op deadline.
DEFAULT_REROUTE_CHECK_NS = 2_000.0

#: Default client-side RPC watchdog (the lease timeout a FaRM client
#: would arm).  Crash notifications fail pending calls first, so the
#: watchdog almost never fires — but it is what bounds the damage if a
#: reply goes missing some other way, and its cancel-on-reply pattern
#: is exactly the load the simulator's heap compaction exists for.
DEFAULT_RPC_TIMEOUT_NS = 60_000.0

#: Default re-sync cost model: a fixed reconfiguration handshake plus a
#: per-object bulk-copy charge.
DEFAULT_RESYNC_FIXED_NS = 5_000.0
DEFAULT_RESYNC_NS_PER_OBJECT = 120.0


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardFault:
    """One scheduled failure: ``shard`` crashes at ``crash_ns`` and —
    unless ``recover_ns`` is ``None`` (it stays down) — rejoins at
    ``recover_ns`` (NI up; serving resumes after the timed re-sync)."""

    shard: int
    crash_ns: float
    recover_ns: Optional[float] = None

    def validate(self) -> None:
        if self.crash_ns < 0:
            raise ConfigError(f"crash time cannot be negative: {self.crash_ns}")
        if self.recover_ns is not None and self.recover_ns <= self.crash_ns:
            raise ConfigError(
                f"shard {self.shard}: recovery at {self.recover_ns} must "
                f"follow the crash at {self.crash_ns}"
            )


class FailurePlan:
    """A validated, time-ordered schedule of shard faults."""

    def __init__(self, faults: Sequence[ShardFault] = ()):
        faults = sorted(faults, key=lambda f: (f.crash_ns, f.shard))
        last_end: Dict[int, float] = {}
        for fault in faults:
            fault.validate()
            if fault.shard in last_end:
                end = last_end[fault.shard]
                if end is None or fault.crash_ns < end:
                    raise ConfigError(
                        f"shard {fault.shard}: fault at {fault.crash_ns} "
                        "overlaps the previous one (or follows a permanent "
                        "crash)"
                    )
            last_end[fault.shard] = fault.recover_ns
        self.faults: Tuple[ShardFault, ...] = tuple(faults)

    def __len__(self) -> int:
        return len(self.faults)

    @classmethod
    def cycles(
        cls,
        shards: Sequence[int],
        first_crash_ns: float,
        downtime_ns: float,
        uptime_ns: float,
        count: int,
    ) -> "FailurePlan":
        """``count`` crash/recover cycles round-robining over
        ``shards``: one shard down at a time, each down for
        ``downtime_ns``, with ``uptime_ns`` of full health in between."""
        if not shards:
            raise ConfigError("cycles need at least one shard to crash")
        if count < 0:
            raise ConfigError(f"cycle count cannot be negative: {count}")
        if downtime_ns <= 0 or uptime_ns < 0:
            raise ConfigError("downtime must be positive, uptime non-negative")
        faults = []
        t = first_crash_ns
        for i in range(count):
            shard = shards[i % len(shards)]
            faults.append(ShardFault(shard, t, t + downtime_ns))
            t += downtime_ns + uptime_ns
        return cls(faults)

    def end_ns(self) -> float:
        """When the last scheduled event fires (0 for an empty plan);
        workloads validate their duration covers it so no crash/recover
        event outlives the measurement."""
        end = 0.0
        for fault in self.faults:
            end = max(end, fault.crash_ns)
            if fault.recover_ns is not None:
                end = max(end, fault.recover_ns)
        return end

    def downtime_windows(self) -> List[Tuple[float, float, int]]:
        """``(crash_ns, recover_or_inf, shard)`` per fault — the
        availability workloads meter reads against these windows."""
        return [
            (
                f.crash_ns,
                float("inf") if f.recover_ns is None else f.recover_ns,
                f.shard,
            )
            for f in self.faults
        ]


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------


@dataclass
class FailoverStats:
    """What the fault injector did and what it hit."""

    crashes: int = 0
    recoveries: int = 0
    #: Keys whose primary changed at a crash (promotions are permanent).
    promotions: int = 0
    #: In-flight RPCs failed with the typed error at crash instants.
    failed_rpcs: int = 0
    #: In-flight one-sided transfers aborted at crash instants.
    failed_transfers: int = 0
    #: Objects copied back onto rejoining shards.
    resynced_objects: int = 0
    #: Simulated time spent in re-syncs.
    resync_ns: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "promotions": self.promotions,
            "failed_rpcs": self.failed_rpcs,
            "failed_transfers": self.failed_transfers,
            "resynced_objects": self.resynced_objects,
            "resync_ns": self.resync_ns,
        }


class FailoverManager:
    """Drives a :class:`FailurePlan` against a :class:`ShardedKV`.

    Construction arms the service's failover machinery (attempt
    re-route bounding and RPC watchdogs) and schedules every fault as
    simulation events; :meth:`crash` / :meth:`recover` are also public
    so tests can inject faults directly.
    """

    def __init__(
        self,
        kv: ShardedKV,
        plan: Optional[FailurePlan] = None,
        reroute_check_ns: float = DEFAULT_REROUTE_CHECK_NS,
        rpc_timeout_ns: Optional[float] = DEFAULT_RPC_TIMEOUT_NS,
        resync_fixed_ns: float = DEFAULT_RESYNC_FIXED_NS,
        resync_ns_per_object: float = DEFAULT_RESYNC_NS_PER_OBJECT,
    ):
        if reroute_check_ns <= 0:
            raise ConfigError(
                f"reroute_check_ns must be positive: {reroute_check_ns}"
            )
        if resync_fixed_ns < 0 or resync_ns_per_object < 0:
            raise ConfigError("re-sync costs cannot be negative")
        self.kv = kv
        self.plan = plan or FailurePlan()
        self.stats = FailoverStats()
        self.resync_fixed_ns = resync_fixed_ns
        self.resync_ns_per_object = resync_ns_per_object
        self.down: set = set()
        #: Timeline of ``(t_ns, event, shard)`` strings for reporting.
        self.events: List[Tuple[float, str, int]] = []

        kv.reroute_check_ns = reroute_check_ns
        kv.rpc_timeout_ns = rpc_timeout_ns

        sim = kv.cluster.sim
        serving_again: Dict[int, Optional[float]] = {}
        for fault in self.plan.faults:
            if fault.shard >= kv.cfg.n_shards:
                raise ConfigError(
                    f"plan names shard {fault.shard}; deployment has "
                    f"{kv.cfg.n_shards}"
                )
            # The plan's per-shard ordering only checks recover_ns, but
            # a shard stays down until its *timed re-sync* completes —
            # a crash inside that window would fire mid-simulation
            # against a shard that is already down.  The re-sync cost
            # is a pure function of the (immutable) replica membership,
            # so reject such plans here, at construction.
            if fault.shard in serving_again:
                prior = serving_again[fault.shard]
                if prior is None or fault.crash_ns <= prior:
                    raise ConfigError(
                        f"shard {fault.shard}: crash at {fault.crash_ns} "
                        f"lands before the previous fault's re-sync "
                        f"completes (~{prior}); leave more uptime between "
                        "cycles"
                    )
            serving_again[fault.shard] = (
                None
                if fault.recover_ns is None
                else fault.recover_ns + self._resync_cost(fault.shard)
            )
            sim.call_at(
                fault.crash_ns, lambda s=fault.shard: self.crash(s)
            )
            if fault.recover_ns is not None:
                sim.call_at(
                    fault.recover_ns, lambda s=fault.shard: self.recover(s)
                )

    # ------------------------------------------------------------------
    def any_down(self) -> bool:
        """True while at least one ring *member* is crashed or
        re-syncing (spare slots a scale-out has not activated are
        always non-serving and must not count as an outage)."""
        return not self.kv.all_members_serving()

    def _resync_cost(self, shard: int) -> float:
        """Simulated time shard ``shard``'s re-sync takes — constant,
        because replica *membership* never changes (promotions only
        reorder it)."""
        hosted = sum(1 for place in self.kv._placement if shard in place)
        return self.resync_fixed_ns + self.resync_ns_per_object * hosted

    # ------------------------------------------------------------------
    def crash(self, shard: int) -> None:
        """Crash ``shard`` now: lease expired, in-flight work failed,
        backups promoted, epoch bumped."""
        kv = self.kv
        if shard in self.down or not kv.serving[shard]:
            raise ConfigError(f"shard {shard} is already down")
        node_id = kv.shards[shard].node_id
        fabric = kv.cluster.fabric
        sim = kv.cluster.sim
        fabric.set_alive(node_id, False)

        # Fail everything in flight *before* mutating the view, so the
        # typed errors observe the epoch their requests were issued in.
        # The crashed shard's own outbound calls (replication fan-out)
        # can never resolve either — replies would land on its dead NI.
        # An observer with a skewed clock learns of the crash that much
        # later: its notification is deferred by its skew (the common
        # skew-free case stays synchronous, preserving event ordering).
        for endpoint in kv.all_endpoints():
            skew = fabric.clock_skew_ns(endpoint.node.node_id)
            if skew > 0.0:
                sim.call_later(skew, self._late_fail_rpcs, endpoint, node_id)
            else:
                self.stats.failed_rpcs += endpoint.fail_pending_to(node_id)
        self.stats.failed_rpcs += kv.shard_rpc(shard).fail_all_pending()
        for node in kv.cluster.nodes:
            skew = fabric.clock_skew_ns(node.node_id)
            if skew > 0.0 and node.node_id != node_id:
                sim.call_later(
                    skew, self._late_fail_transfers, node, node_id
                )
            else:
                self.stats.failed_transfers += node.fail_transfers_to(node_id)

        self.stats.promotions += kv.mark_down(shard)
        self.stats.crashes += 1
        self.down.add(shard)
        self.events.append((kv.cluster.sim.now, "crash", shard))

    def _late_fail_rpcs(self, endpoint, node_id: int) -> None:
        """A skewed observer's deferred crash notification (RPC side).
        The target may have recovered inside the skew window — pending
        calls to a once-again-live node are left alone; their replies
        arrive or their watchdogs handle it."""
        if not self.kv.cluster.fabric.alive(node_id):
            self.stats.failed_rpcs += endpoint.fail_pending_to(node_id)

    def _late_fail_transfers(self, node, node_id: int) -> None:
        if not self.kv.cluster.fabric.alive(node_id):
            self.stats.failed_transfers += node.fail_transfers_to(node_id)

    def recover(self, shard: int) -> None:
        """Bring ``shard``'s NI back and start its timed re-sync; the
        shard serves again (as a backup) when the re-sync completes."""
        kv = self.kv
        if shard not in self.down:
            raise ConfigError(f"shard {shard} is not down")
        node_id = kv.shards[shard].node_id
        kv.cluster.fabric.set_alive(node_id, True)
        self.events.append((kv.cluster.sim.now, "rejoin", shard))
        kv.cluster.sim.process(self._resync(shard))

    def _resync(self, shard: int):
        """Timed state transfer, then re-admission (a sim generator).

        The time is charged *first*: the copy itself lands at the
        window's end so it captures the freshest committed images —
        including writes the promoted primaries accepted while this
        shard was rejoining."""
        kv = self.kv
        sim = kv.cluster.sim
        cost = self._resync_cost(shard)
        self.stats.resync_ns += cost
        yield sim.timeout(cost)
        self.stats.resynced_objects += kv.resync_shard(shard)
        kv.mark_serving(shard)
        self.down.discard(shard)
        self.stats.recoveries += 1
        self.events.append((sim.now, "serving", shard))

"""Object store: allocation, functional access, and writer update plans.

The store owns a region of a node's physical memory and places objects
in it (64 B-aligned, so distinct objects never share a cache block).
Besides zero-time functional reads/writes (used for setup and ground
truth), it produces *update plans*: the exact block-granularity write
sequence a writer core performs under the odd/even version protocol
(§4.2) — header locked first, data blocks next, commit version last.
Timed writers replay these steps through the chip memory system so
that coherence invalidations fire in the right order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.units import CACHE_BLOCK
from repro.mem.address import AddressRange
from repro.mem.backing import PhysicalMemory
from repro.objstore.layout import (
    ObjectLayout,
    StripResult,
    commit_version,
    is_locked,
    lock_version,
)

VERSION_BYTES = 8

#: One step of an update plan: (address, bytes to store).
WriteStep = Tuple[int, bytes]


@dataclass(frozen=True)
class ObjectHandle:
    """Placement of one object inside a store's region."""

    obj_id: int
    base_addr: int
    data_len: int
    wire_size: int

    @property
    def range(self) -> AddressRange:
        return AddressRange(self.base_addr, self.wire_size)

    @property
    def num_blocks(self) -> int:
        return self.range.num_blocks()


class ObjectStore:
    """A node-local object store with a fixed layout."""

    def __init__(
        self,
        phys: PhysicalMemory,
        layout: ObjectLayout,
        name: str = "store",
    ):
        self.phys = phys
        self.layout = layout
        self.name = name
        self._objects: Dict[int, ObjectHandle] = {}

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def create(self, obj_id: int, data: bytes, version: int = 0) -> ObjectHandle:
        """Allocate and initialize an object with a committed image."""
        if obj_id in self._objects:
            raise SimulationError(f"object {obj_id} already exists")
        if is_locked(version):
            raise SimulationError("initial version must be even (committed)")
        wire = self.layout.wire_size(len(data))
        base = self.phys.allocate(max(wire, CACHE_BLOCK), align=CACHE_BLOCK)
        handle = ObjectHandle(obj_id, base, len(data), wire)
        self._objects[obj_id] = handle
        self.phys.write(base, self.layout.pack(version, data))
        return handle

    def handle(self, obj_id: int) -> ObjectHandle:
        try:
            return self._objects[obj_id]
        except KeyError:
            raise SimulationError(f"unknown object {obj_id}") from None

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._objects

    def object_ids(self) -> List[int]:
        return list(self._objects)

    # ------------------------------------------------------------------
    # functional access (zero simulated time)
    # ------------------------------------------------------------------
    def read_raw(self, obj_id: int) -> bytes:
        h = self.handle(obj_id)
        return self.phys.read(h.base_addr, h.wire_size)

    def read(self, obj_id: int) -> StripResult:
        h = self.handle(obj_id)
        return self.layout.unpack(self.read_raw(obj_id), h.data_len)

    def version_addr(self, obj_id: int) -> int:
        return self.handle(obj_id).base_addr + self.layout.version_offset

    def current_version(self, obj_id: int) -> int:
        return self.phys.read_u64(self.version_addr(obj_id))

    def write(self, obj_id: int, data: bytes) -> int:
        """Functional committed update; returns the new version."""
        for _addr, chunk in self.update_steps(obj_id, data)[0]:
            self.phys.write(_addr, chunk)
        return self.current_version(obj_id)

    # ------------------------------------------------------------------
    # writer protocol
    # ------------------------------------------------------------------
    def update_steps(
        self, obj_id: int, data: bytes
    ) -> Tuple[List[WriteStep], int]:
        """Block-granularity write plan for one committed update.

        Step order implements §4.2's contract: (1) header version goes
        odd (the base-block write every reader's snoop keys on), (2)
        each block of the new image is stored, (3) the header version
        goes even.  Returns ``(steps, commit_version)``.
        """
        h = self.handle(obj_id)
        current = self.current_version(obj_id)
        locked = lock_version(current)
        vo = self.layout.version_offset
        steps: List[WriteStep] = [
            (h.base_addr + vo, locked.to_bytes(8, "little"))
        ]
        tail, committed = self._commit_tail(h, locked, data)
        steps.extend(tail)
        return steps, committed

    def _commit_tail(
        self, h: ObjectHandle, locked: int, data: bytes
    ) -> Tuple[List[WriteStep], int]:
        """Steps (2)-(3) of the §4.2 plan, shared by :meth:`update_steps`
        and :meth:`commit_steps` so the plain-put and transactional
        write paths can never desynchronize: the new committed image
        block by block (header word still ``locked``), then the even
        version."""
        if len(data) != h.data_len:
            raise SimulationError(
                f"object {h.obj_id} holds {h.data_len} bytes; "
                f"updates must preserve the size (got {len(data)})"
            )
        committed = commit_version(locked)
        image = bytearray(self.layout.pack(committed, data))
        vo = self.layout.version_offset
        image[vo : vo + VERSION_BYTES] = locked.to_bytes(8, "little")

        steps: List[WriteStep] = []
        base = h.base_addr
        # Slice through a memoryview: one copy per block step instead
        # of bytearray-slice + bytes (the put path builds one plan per
        # committed update).
        mv = memoryview(image)
        for off in range(0, len(image), CACHE_BLOCK):
            steps.append((base + off, bytes(mv[off : off + CACHE_BLOCK])))
        mv.release()
        steps.append((base + vo, committed.to_bytes(8, "little")))
        return steps, committed

    def commit_steps(
        self, obj_id: int, data: bytes
    ) -> Tuple[List[WriteStep], int]:
        """Write plan finishing an update on an *already locked* object:
        data blocks carrying the new committed image first, the header
        version going even last.

        This is the tail of :meth:`update_steps` for writers whose lock
        acquisition happened earlier and separately — the transaction
        layer's commit phase, where the lock RPC flipped the version odd
        before validation.  Raises when the object is not locked.
        """
        h = self.handle(obj_id)
        locked = self.current_version(obj_id)
        if not is_locked(locked):
            raise SimulationError(
                f"object {obj_id} is not locked (version {locked}); "
                "commit_steps needs a prior lock acquisition"
            )
        return self._commit_tail(h, locked, data)

    # ------------------------------------------------------------------
    # region metadata (driver registration, §4.2)
    # ------------------------------------------------------------------
    def region_of(self, obj_id: int) -> AddressRange:
        return self.handle(obj_id).range

    def find_by_base(self, base_addr: int) -> Optional[ObjectHandle]:
        for h in self._objects.values():
            if h.base_addr == base_addr:
                return h
        return None

"""Byte-accurate object layouts.

Three layouts from the paper's design space:

* :class:`RawLayout` — 8 B version header + clean data.  Used by the
  SABRe build ("unmodified object store"): atomicity comes from
  hardware, data is zero-copy consumable.
* :class:`PerCacheLineLayout` — FaRM's per-cache-line versions (§2.1):
  the header holds a 64-bit version; every 64 B cache line reserves its
  first 8 bytes for a stamp carrying the version's ``l`` least
  significant bits.  Readers must strip stamps and compare; writers
  must restamp every line.  Wire size is inflated by 64/56.
* :class:`ChecksumLayout` — Pilaf's checksum-in-header (§2.1): readers
  recompute a checksum over the data and compare with the header.

All layouts share the odd/even version convention (§4.2, Masstree
style): an odd version means the object is locked by a writer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

from repro.common.units import CACHE_BLOCK

#: Bytes of payload carried per 64 B line under per-cache-line versions.
DATA_PER_LINE = CACHE_BLOCK - 8

VERSION_BYTES = 8
_U64 = 2**64 - 1


def is_locked(version: int) -> bool:
    """Odd versions mean a writer holds the object (§4.2)."""
    return version % 2 == 1


def lock_version(version: int) -> int:
    """The version a writer publishes when acquiring the object."""
    if is_locked(version):
        raise ValueError(f"object already locked (version {version})")
    return (version + 1) & _U64


def commit_version(version: int) -> int:
    """The version a writer publishes when releasing the object."""
    if not is_locked(version):
        raise ValueError(f"object not locked (version {version})")
    return (version + 1) & _U64


def fnv64(data: bytes) -> int:
    """FNV-1a 64-bit hash, standing in for Pilaf's CRC64.

    The paper only depends on the checksum's collision-resistance and
    its ~dozen-cycles-per-byte software cost (charged separately by the
    cost model); the exact polynomial is irrelevant to the results.
    """
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & _U64
    return h


@dataclass(frozen=True)
class StripResult:
    """Outcome of a software atomicity check on transferred bytes."""

    ok: bool
    version: int
    data: bytes


class ObjectLayout(ABC):
    """How an object's header, metadata, and data map onto memory."""

    #: Offset of the 64-bit version word from the object base.
    version_offset: int = 0

    @abstractmethod
    def wire_size(self, data_len: int) -> int:
        """Bytes the object occupies in memory (and on the wire)."""

    @abstractmethod
    def pack(self, version: int, data: bytes) -> bytes:
        """Serialize a committed object image."""

    @abstractmethod
    def unpack(self, raw: bytes, data_len: int) -> StripResult:
        """Extract (and for software-CC layouts, *validate*) the data."""

    def num_blocks(self, data_len: int) -> int:
        return (self.wire_size(data_len) + CACHE_BLOCK - 1) // CACHE_BLOCK

    def read_version(self, raw: bytes) -> int:
        return int.from_bytes(
            raw[self.version_offset : self.version_offset + VERSION_BYTES],
            "little",
        )


class RawLayout(ObjectLayout):
    """Version header + clean data; atomicity enforced elsewhere."""

    def wire_size(self, data_len: int) -> int:
        return VERSION_BYTES + data_len

    def pack(self, version: int, data: bytes) -> bytes:
        return (version & _U64).to_bytes(8, "little") + data

    def unpack(self, raw: bytes, data_len: int) -> StripResult:
        version = self.read_version(raw)
        data = bytes(raw[VERSION_BYTES : VERSION_BYTES + data_len])
        # No self-validation possible: a raw layout read is only known
        # to be atomic if the hardware (SABRe) said so.
        return StripResult(ok=not is_locked(version), version=version, data=data)


class PerCacheLineLayout(ObjectLayout):
    """FaRM-style per-cache-line versions.

    ``version_bits`` is FaRM's ``l``: how many low bits of the object
    version each line's stamp replicates.  Small values save bits but
    admit ABA false negatives when the version wraps modulo ``2**l``
    between a reader's two samples — reproduced by a property test.
    """

    def __init__(self, version_bits: int = 16):
        if not 1 <= version_bits <= 64:
            raise ValueError(f"version_bits must be in [1, 64]: {version_bits}")
        self.version_bits = version_bits
        self.stamp_mask = (1 << version_bits) - 1

    def lines(self, data_len: int) -> int:
        return max(1, (data_len + DATA_PER_LINE - 1) // DATA_PER_LINE)

    def wire_size(self, data_len: int) -> int:
        return self.lines(data_len) * CACHE_BLOCK

    def stamp_of(self, version: int) -> int:
        return version & self.stamp_mask

    def make_line(self, line_idx: int, version: int, chunk: bytes) -> bytes:
        """Build one 64 B line: stamp (full version for line 0) + data."""
        if len(chunk) > DATA_PER_LINE:
            raise ValueError(f"chunk of {len(chunk)} exceeds {DATA_PER_LINE}")
        stamp = version & _U64 if line_idx == 0 else self.stamp_of(version)
        return stamp.to_bytes(8, "little") + chunk.ljust(DATA_PER_LINE, b"\x00")

    def pack(self, version: int, data: bytes) -> bytes:
        out = bytearray()
        for i in range(self.lines(len(data))):
            chunk = data[i * DATA_PER_LINE : (i + 1) * DATA_PER_LINE]
            out += self.make_line(i, version, chunk)
        return bytes(out)

    def unpack(self, raw: bytes, data_len: int) -> StripResult:
        """The strip-and-check a FaRM reader performs after transfer."""
        version = self.read_version(raw)
        expected = self.stamp_of(version)
        ok = not is_locked(version)
        data = bytearray()
        for i in range(self.lines(data_len)):
            line = raw[i * CACHE_BLOCK : (i + 1) * CACHE_BLOCK]
            stamp = int.from_bytes(line[:8], "little")
            if i > 0 and stamp != expected:
                ok = False
            data += line[8:]
        return StripResult(ok=ok, version=version, data=bytes(data[:data_len]))


class ChecksumLayout(ObjectLayout):
    """Pilaf-style checksummed objects: version + checksum header."""

    HEADER = 16  # 8 B version + 8 B checksum

    def wire_size(self, data_len: int) -> int:
        return self.HEADER + data_len

    def pack(self, version: int, data: bytes) -> bytes:
        return (
            (version & _U64).to_bytes(8, "little")
            + fnv64(data).to_bytes(8, "little")
            + data
        )

    def unpack(self, raw: bytes, data_len: int) -> StripResult:
        version = self.read_version(raw)
        stored = int.from_bytes(raw[8:16], "little")
        data = bytes(raw[self.HEADER : self.HEADER + data_len])
        ok = not is_locked(version) and fnv64(data) == stored
        return StripResult(ok=ok, version=version, data=data)


def split_into_chunks(data: bytes, chunk: int) -> List[bytes]:
    """Split ``data`` into ``chunk``-sized pieces (last may be short)."""
    if chunk <= 0:
        raise ValueError(f"chunk must be positive: {chunk}")
    return [data[i : i + chunk] for i in range(0, len(data), chunk)] or [b""]


def torn_words(payload: bytes) -> Tuple[bool, set]:
    """Ground-truth torn-read detector for stamped payloads.

    Microbenchmark writers fill an object's payload with its committed
    version repeated as little-endian u64 words; a read is atomic iff
    every full word agrees (and the tail matches the word prefix).
    Returns ``(is_torn, distinct_words)``.
    """
    if not payload:
        return False, set()
    full_words = len(payload) // 8
    if full_words:
        # Fast path: an untorn stamped payload is one word repeated —
        # a single C-level compare instead of unpacking every word.
        first = payload[:8]
        if payload[: full_words * 8] == first * full_words:
            words = {int.from_bytes(first, "little")}
        else:
            words = {
                int.from_bytes(payload[i : i + 8], "little")
                for i in range(0, len(payload) - 7, 8)
            }
    else:
        words = set()
    tail = len(payload) % 8
    if not words:
        # Object smaller than one word: cannot be torn at word level.
        return False, set()
    if tail:
        expected_tail = next(iter(words)).to_bytes(8, "little")[:tail]
        if len(words) == 1 and payload[-tail:] != expected_tail:
            return True, words
    return len(words) > 1, words


def stamped_payload(version: int, length: int) -> bytes:
    """Payload of ``length`` bytes carrying ``version`` in every word."""
    if length <= 0:
        return b""
    word = (version & _U64).to_bytes(8, "little")
    reps = (length + 7) // 8
    return (word * reps)[:length]

"""Sharded, replicated FaRM-style KV service over soNUMA.

The paper motivates SABRes with rack-scale in-memory services (FaRM,
§1-§2) whose data is *partitioned across the rack*: every node owns a
shard and serves one-sided reads for it.  This module scales the
two-node :mod:`repro.objstore.farm` deployment out to N storage shards
plus a set of client nodes on one lossless fabric:

* **Placement** is consistent hashing (:class:`HashRing`) with virtual
  nodes, so shards receive near-equal key ranges and routing is a pure
  function of ``(seed, key)`` — deterministic run to run.
* **Replication** is primary/backup: each key lives on ``replication``
  distinct shards (the ring walk order).  Writes ship to the primary
  over an RPC (§2.1), run the odd/even version protocol through the
  owner's *timed* memory hierarchy — so destination-side SABRe
  hardware snoops them exactly as it snoops local writers — and are
  replicated to the backups asynchronously.
* **Reads** go through the pluggable :class:`~repro.workloads.
  protocols.ReadProtocol` strategies unchanged: every Table 1
  mechanism (``remote_read``, ``sabre``, ``percl_versions``,
  ``checksum``, ``drtm_lock``) works against the sharded store.  A
  :class:`ReaderSession` binds one client reader to every shard and
  optionally *falls back* to a backup replica when the primary keeps
  failing the atomicity check (e.g. a hot object under heavy writes).
* **Stats** are tracked per shard: routed load, retries/aborts,
  fallback reads, replica writes, and the ground-truth torn-read audit
  (``undetected_violations``) every consumed read performs.

The module is workload-agnostic: it owns placement, the write path,
and the per-read machinery; timed open/closed loops live in the
workload layer (see :mod:`repro.workloads.ycsb`).
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.common.config import ClusterConfig, FabricConfig, NodeConfig
from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError, ShardCrashedError
from repro.common.rng import derive_seed, make_rng
from repro.objstore.layout import (
    RawLayout,
    commit_version,
    is_locked,
    lock_version,
    stamped_payload,
)
from repro.objstore.store import ObjectStore
from repro.sim.stats import Samples, ThroughputMeter
from repro.sonuma.node import Cluster, SoNode
from repro.sonuma.rpc import RpcEndpoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.protocols import ReadProtocol


def _get_protocol(name: str):
    """Late import: :mod:`repro.workloads` re-exports the YCSB layer,
    which imports this module back — resolving the protocol registry at
    call time keeps the cycle out of import order."""
    from repro.workloads.protocols import get_protocol

    return get_protocol(name)

#: Spin-wait between lock re-checks by a writer that found the object's
#: version odd (same pacing as the microbenchmark's ``TimedWriter``).
LOCK_SPIN_NS = 25.0

#: How many times a primary ``shard_put`` handler re-checks a held lock
#: before giving up and replying "busy" (the client re-issues the RPC).
#: A bounded spin keeps the worker pool live-lock free now that
#: transactions (:mod:`repro.objstore.txn`) can hold an object's lock
#: across *multiple* RPC round trips: an unbounded spin could pin every
#: worker of a shard while the lock holder's own commit RPC sat queued
#: behind them.  Backup replication keeps the unbounded spin — backups
#: are only ever locked by other (bounded) replica updates.
PUT_SPIN_LIMIT = 64

#: Client-side backoff before re-issuing a busy-bounced put: base
#: doubles per consecutive bounce up to the cap, with a deterministic
#: jitter factor so colliding writers decorrelate.  Without it, a
#: transaction holding a hot lock across RPC round trips can starve
#: plain puts: every bounced client re-issued instantly, keeping the
#: shard's worker pool saturated with retries.
PUT_BACKOFF_BASE_NS = 50.0
PUT_BACKOFF_CAP_NS = 1_600.0

#: How long a client waits before re-checking the view when *no*
#: replica of a key is serving (total outage, e.g. replication=1 and
#: the only copy crashed).
OUTAGE_POLL_NS = 500.0

#: RPC reply tags shared by the put path and the transaction layer.
REPLY_OK = b"\x01"
REPLY_BUSY = b"\x00"
#: The receiver refused because the request's epoch is stale or the
#: receiver no longer (or does not yet) own the object -- the fencing
#: that keeps a demoted primary from serving after a promotion.
REPLY_FENCED = b"\x02"


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RangeDelta:
    """One moved arc of the ring: key hashes in the cyclic half-open
    interval ``[lo, hi)`` changed primary owner from ``old_shard`` to
    ``new_shard`` because ``new_shard``'s virtual node ``vnode`` was
    inserted (or removed — then the names read the other way: the
    departing vnode's arc is handed *to* ``new_shard``).  ``lo >= hi``
    means the arc wraps through zero.  Incremental
    :meth:`HashRing.add_shard` / :meth:`HashRing.remove_shard` report
    exactly these arcs, and only these arcs, so a migration plan can
    touch only the keys that actually moved."""

    lo: int
    hi: int
    old_shard: int
    new_shard: int
    vnode: int

    def covers(self, h: int) -> bool:
        """Whether key hash ``h`` lies on this arc."""
        if self.lo < self.hi:
            return self.lo <= h < self.hi
        return h >= self.lo or h < self.hi


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Every shard contributes ``vnodes`` points to a 64-bit ring; a key
    is owned by the first point at or after its hash (wrapping).  All
    hashes come from :func:`repro.common.rng.derive_seed`, so the
    mapping is a deterministic function of ``(seed, shard ids, key)``
    — identical across runs, processes, and worker pools.

    Points are kept as ``(hash, shard, vnode)`` triples sorted on the
    *full* tuple: two vnodes colliding on the same 64-bit hash order by
    ``(shard, vnode)``, never by construction accident, so the mapping
    survives incremental :meth:`add_shard` / :meth:`remove_shard` in
    any order — the incremental ring is always point-for-point
    identical to a fresh build over the same member set (the property
    that makes a finished migration indistinguishable from a fresh
    deployment).
    """

    def __init__(self, shard_ids: Iterable[int], vnodes: int = 64, seed: int = 1):
        shard_ids = list(shard_ids)
        if not shard_ids:
            raise ConfigError("hash ring needs at least one shard")
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1: {vnodes}")
        self.seed = seed
        self.vnodes = vnodes
        self.shard_ids = shard_ids
        points: List[Tuple[int, int, int]] = []
        for shard in shard_ids:
            for v in range(vnodes):
                points.append((self._point(shard, v), shard, v))
        points.sort()
        self._points = points
        self._hashes = [p[0] for p in points]

    def _point(self, shard: int, vnode: int) -> int:
        """The 64-bit ring position of one virtual node (overridable so
        the collision regression tests can force equal points)."""
        return derive_seed(self.seed, "ring", shard, vnode)

    def key_hash(self, key: str) -> int:
        """The 64-bit ring position of ``key`` (what
        :class:`RangeDelta` arcs cover)."""
        return derive_seed(self.seed, "ring-key", key)

    def _slot(self, key: str) -> int:
        return bisect.bisect_right(self._hashes, self.key_hash(key)) % len(
            self._points
        )

    def primary(self, key: str) -> int:
        """The shard owning ``key``."""
        return self._points[self._slot(key)][1]

    def replicas(self, key: str, n: int) -> Tuple[int, ...]:
        """``min(n, shards)`` distinct shards for ``key``, primary
        first, in ring walk order (the standard consistent-hashing
        successor list).

        ``n`` is clamped to the shard count rather than rejected: a
        successor list can never name more distinct shards than exist,
        and callers sizing replication against a shrinking deployment
        want the longest valid list, not an error.  The walk covers
        every ring point, so even adversarial vnode placements (all of
        one shard's points clustered, hash collisions between shards'
        points) cannot make the list shorter than that."""
        if n < 1:
            raise ConfigError(f"replication must be >= 1: {n}")
        want = min(n, len(self.shard_ids))
        seen = set()
        out: List[int] = []
        start = self._slot(key)
        for step in range(len(self._points)):
            shard = self._points[(start + step) % len(self._points)][1]
            if shard not in seen:
                seen.add(shard)
                out.append(shard)
                if len(out) == want:
                    break
        if len(out) != want:  # pragma: no cover - full walk finds all
            raise ConfigError(
                f"ring walk found {len(out)} shards, wanted {want}"
            )
        return tuple(out)

    # ------------------------------------------------------------------
    # incremental membership (live resharding)
    # ------------------------------------------------------------------
    def add_shard(self, shard: int) -> List[RangeDelta]:
        """Insert ``shard``'s vnode points incrementally and report the
        exact arcs whose primary owner changed.

        Only the moved ranges are recomputed: each of the ``vnodes``
        new points takes over the arc between its predecessor point and
        itself, *iff* it becomes the head of its hash run (the lookup
        is ``bisect_right``, so within a run of equal hashes only the
        tuple-smallest point ever owns keys — a collision-shadowed
        point owns nothing and reports nothing).  Arcs already handed
        to an earlier vnode of the same new shard are skipped too, so
        the deltas name every key whose primary moved exactly once."""
        if shard in self.shard_ids:
            raise ConfigError(f"shard {shard} is already a ring member")
        deltas: List[RangeDelta] = []
        for v in range(self.vnodes):
            point = (self._point(shard, v), shard, v)
            i = bisect.bisect_left(self._points, point)
            head = i == 0 or self._points[i - 1][0] < point[0]
            old_owner = self._points[i % len(self._points)][1]
            self._points.insert(i, point)
            self._hashes.insert(i, point[0])
            if head and old_owner != shard:
                lo = self._points[(i - 1) % len(self._points)][0]
                deltas.append(
                    RangeDelta(
                        lo=lo,
                        hi=point[0],
                        old_shard=old_owner,
                        new_shard=shard,
                        vnode=v,
                    )
                )
        self.shard_ids.append(shard)
        return deltas

    def remove_shard(self, shard: int) -> List[RangeDelta]:
        """Remove ``shard``'s vnode points incrementally and report the
        exact arcs handed to their successors.

        The per-vnode deltas compose: when several of the departing
        shard's points are ring-adjacent, the intermediate self-handoffs
        are elided and the surviving delta's arc reaches back over the
        whole run, so coverage stays exact."""
        if shard not in self.shard_ids:
            raise ConfigError(f"shard {shard} is not a ring member")
        if len(self.shard_ids) == 1:
            raise ConfigError("cannot remove the last ring member")
        deltas: List[RangeDelta] = []
        for v in range(self.vnodes):
            point = (self._point(shard, v), shard, v)
            i = bisect.bisect_left(self._points, point)
            if i >= len(self._points) or self._points[i] != point:
                raise ConfigError(  # pragma: no cover - internal invariant
                    f"ring point for shard {shard} vnode {v} missing"
                )
            head = i == 0 or self._points[i - 1][0] < point[0]
            del self._points[i]
            del self._hashes[i]
            if head:
                n = len(self._points)
                new_owner = self._points[i % n][1]
                if new_owner != shard:
                    lo = self._points[(i - 1) % n][0]
                    deltas.append(
                        RangeDelta(
                            lo=lo,
                            hi=point[0],
                            old_shard=shard,
                            new_shard=new_owner,
                            vnode=v,
                        )
                    )
        self.shard_ids.remove(shard)
        return deltas


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


@dataclass
class ShardedConfig:
    """One sharded-service deployment.

    ``n_clients = 0`` means one client node per shard (the scale-out
    default, so adding shards also adds load generators).  ``object_
    size`` includes the 8 B header, as everywhere else in the repo.
    """

    n_shards: int = 4
    n_clients: int = 0
    replication: int = 2
    mechanism: str = "sabre"
    object_size: int = 1024
    n_objects: int = 512
    version_bits: int = 16
    vnodes: int = 64
    seed: int = 1
    #: Shard slots provisioned in the cluster beyond the ``n_shards``
    #: initial ring members (0 = no headroom).  Spare slots get nodes,
    #: stores, and registered RPC endpoints at construction but join
    #: the ring only when a :class:`~repro.objstore.reshard.
    #: ReshardManager` activates them — the capacity a live scale-out
    #: grows into.
    max_shards: int = 0
    #: Time a read gives the primary before falling back to a backup
    #: replica (0 disables fallback; reads then retry the primary only).
    fallback_after_ns: float = 0.0
    rpc_workers: int = 2
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)
    node: Optional[NodeConfig] = None
    fabric: Optional[FabricConfig] = None

    def validate(self) -> None:
        _get_protocol(self.mechanism)  # raises ConfigError when unknown
        if self.n_shards < 1:
            raise ConfigError("need at least one shard")
        if self.n_clients < 0:
            raise ConfigError("client count cannot be negative")
        if not 1 <= self.replication <= self.n_shards:
            raise ConfigError(
                f"replication {self.replication} needs 1..{self.n_shards} shards"
            )
        if self.object_size < 16:
            raise ConfigError("object_size must cover the header plus data")
        if self.n_objects < 1:
            raise ConfigError("need at least one object")
        if self.vnodes < 1:
            raise ConfigError("need at least one virtual node per shard")
        if self.rpc_workers < 1:
            raise ConfigError("need at least one RPC worker per shard")
        if self.max_shards and self.max_shards < self.n_shards:
            raise ConfigError(
                f"max_shards {self.max_shards} cannot be below n_shards "
                f"{self.n_shards}"
            )

    @property
    def clients(self) -> int:
        return self.n_clients or self.n_shards

    @property
    def provisioned_shards(self) -> int:
        """Shard slots the cluster is built with (members + spares)."""
        return max(self.n_shards, self.max_shards)

    @property
    def payload_len(self) -> int:
        return self.object_size - 8

    def cluster_config(self) -> ClusterConfig:
        kwargs = {"nodes": self.provisioned_shards + self.clients}
        if self.node is not None:
            kwargs["node"] = self.node
        if self.fabric is not None:
            kwargs["fabric"] = self.fabric
        return ClusterConfig(**kwargs)


@dataclass
class _BoundConfig:
    """The slice of :class:`~repro.workloads.microbench.MicrobenchConfig`
    the :class:`ReadProtocol` strategies actually consume, so they run
    against the sharded store without modification."""

    mechanism: str
    object_size: int
    version_bits: int
    costs: SoftwareCosts

    @property
    def payload_len(self) -> int:
        return self.object_size - 8


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------


class ShardStats:
    """Read-side stats for one shard as seen by one reader session.

    Field names match what the protocols record into (the microbench
    ``_ReaderStats`` contract), plus routing/fallback load counters.
    Sessions keep private instances (so a reader can detect its own
    op's outcome without races); :meth:`merge` folds them together.
    """

    def __init__(self) -> None:
        self.op_latency = Samples("shard_op_ns")
        self.transfer_latency = Samples("shard_transfer_ns")
        self.meter = ThroughputMeter()
        self.sabre_aborts = 0
        self.software_conflicts = 0
        self.retries = 0
        self.undetected_violations = 0
        self.reads_routed = 0
        #: Attempts *issued* against this shard as a non-first replica
        #: (the walk reached it); compare with ``fallback_reads``, which
        #: counts only the attempts that actually consumed a read — the
        #: split is what makes a deadline expiring mid-attempt visible
        #: instead of silently inflating the fallback-success count.
        self.fallback_attempts = 0
        self.fallback_reads = 0

    def merge(self, other: "ShardStats") -> None:
        self.op_latency.extend(other.op_latency.values)
        self.transfer_latency.extend(other.transfer_latency.values)
        self.meter.absorb(other.meter)
        self.sabre_aborts += other.sabre_aborts
        self.software_conflicts += other.software_conflicts
        self.retries += other.retries
        self.undetected_violations += other.undetected_violations
        self.reads_routed += other.reads_routed
        self.fallback_attempts += other.fallback_attempts
        self.fallback_reads += other.fallback_reads


@dataclass
class ShardWriteStats:
    """Write-side load counters for one shard (kept on the service —
    increments are atomic between simulation yields)."""

    #: Put RPCs issued against this shard as its primary, including
    #: re-issues after a busy bounce and redirects after a promotion.
    writes_routed: int = 0
    primary_updates: int = 0
    replica_updates: int = 0
    lock_spins: int = 0
    #: Primary puts bounced after ``PUT_SPIN_LIMIT`` lock re-checks
    #: (the client retries; see the spin-bound rationale above).
    busy_rejects: int = 0
    #: Client-side re-issues of busy-bounced puts, attributed to the
    #: shard that bounced — so ``busy_rejects == write_retries`` holds
    #: per shard even when later re-issues land on a promoted backup.
    write_retries: int = 0
    #: Requests refused because their epoch was stale or this shard no
    #: longer (or does not yet) own the object.
    fenced_rejects: int = 0
    #: Puts re-routed away from this shard after its crash was detected
    #: mid-call (the typed-error path; the put lands on the promotee).
    crash_redirects: int = 0
    #: Puts fenced off this shard because a migration or replica
    #: promotion moved the object's primary between issue and reply.
    #: Charged to the *fencing* shard (the stale owner), exactly once
    #: per re-route, so redirect counters pair with the re-issue that
    #: lands on the new owner and are never double-charged or orphaned
    #: when the key changes hands again mid-retry.
    reshard_redirects: int = 0


class _ShardBinding:
    """Adapter presenting one ``(client node, shard)`` pair through the
    host interface :class:`ReadProtocol` expects of a microbenchmark."""

    def __init__(
        self,
        kv: "ShardedKV",
        shard: int,
        client_node: SoNode,
        stats: ShardStats,
    ):
        self.cluster = kv.cluster
        self.cfg = kv.bound_cfg
        self.stats = stats
        self.src = client_node
        self.dst = kv.shards[shard]
        self.store = kv.stores[shard]
        self.mechanism = kv.mechanism


class ReaderSession:
    """One client reader's bindings: a protocol instance and private
    stats per shard, plus a reusable landing buffer.

    Create one session per reader process; the private stats are what
    make the fallback decision race-free (a session observes only its
    own completions between yields)."""

    def __init__(self, kv: "ShardedKV", client_index: int):
        if not 0 <= client_index < len(kv.clients):
            raise ConfigError(f"no client node {client_index}")
        self.kv = kv
        self.client_index = client_index
        node = kv.clients[client_index]
        self._wire = kv.layout.wire_size(kv.cfg.payload_len)
        self._buf = node.alloc_buffer(self._wire)
        self.stats: List[ShardStats] = [
            ShardStats() for _ in range(kv.provisioned)
        ]
        self._protocols: List["ReadProtocol"] = [
            kv.protocol_cls(_ShardBinding(kv, shard, node, self.stats[shard]))
            for shard in range(kv.provisioned)
        ]
        # Round-robin cursor over a hot key's promoted replica set
        # (private per session, so rotation stays deterministic).
        self._hot_rr = 0

    def attempt(self, shard: int, idx: int, deadline: float):
        """One protocol read of object ``idx``'s copy on ``shard`` (a
        simulation generator).  Returns ``True`` iff a read was
        consumed; the consumed observation is then available through
        :meth:`last_read`.  Every consumed read — primary or fallback —
        goes through the same protocol instance, so retry bookkeeping,
        latency/meter recording, and the ground-truth torn-read audit
        land in this session's per-shard stats identically."""
        stats = self.stats[shard]
        handle = self.kv.stores[shard].handle(idx)
        completed_before = len(stats.op_latency)
        yield from self._protocols[shard].read_once(
            handle, self._buf, self._wire, deadline
        )
        consumed = len(stats.op_latency) > completed_before
        if consumed:
            self.kv.key_reads[idx] += 1
        return consumed

    def last_read(self, shard: int) -> Tuple[Optional[int], Optional[bytes]]:
        """The ``(version, payload)`` observation of the most recent
        consumed read against ``shard`` (the read-set entry a
        transaction records)."""
        protocol = self._protocols[shard]
        return protocol.last_version, protocol.last_data

    def lookup(self, key: str, t_end: float):
        """One atomic lookup of ``key`` as a simulation generator.

        Routes to the current primary (the promoted backup after a
        crash); with fallback enabled, gives the primary
        ``fallback_after_ns`` of retries, then walks the serving backup
        replicas (each getting the same grace period, the last one the
        full remaining time).  Returns ``True`` on a consumed read,
        ``False`` when ``t_end`` arrived first.

        Accounting contract (pinned by the fallback regression tests):
        ``reads_routed``/``fallback_attempts`` count attempts *issued*
        per shard; ``fallback_reads`` counts only the fallback attempt
        that actually *consumed* a read; latency samples and the
        torn-read audit land exactly once, on the consuming shard —
        a deadline expiring mid-attempt leaves retries behind but never
        a phantom fallback read or a double-counted audit.

        With a failover manager attached (finite ``reroute_check_ns``),
        every attempt's deadline is additionally bounded so a crash
        mid-attempt re-routes to the promoted view instead of spinning
        against a dead shard until ``t_end``.
        """
        kv = self.kv
        sim = kv.cluster.sim
        idx = kv.key_index(key)
        fallback_ns = kv.cfg.fallback_after_ns
        reroute_ns = kv.reroute_check_ns
        while sim.now < t_end:
            route = kv.read_route_by_index(idx)
            if not route:
                # Total outage for this key: every replica is down.
                # Wait out a slice of it (bounded by the deadline).
                yield sim.timeout(min(OUTAGE_POLL_NS, t_end - sim.now))
                continue
            # During a migration's double-read window every reader must
            # consult both owners, even with fallback disabled: the walk
            # covers old and new placement so a read is never served a
            # half-migrated image without the protocol's detection pass.
            order = (
                route
                if fallback_ns > 0 or idx in kv.double_read
                else route[:1]
            )
            promoted = kv.hot_replicas.get(idx)
            if promoted:
                # Hot key: rotate the first attempt across the primary
                # and its promoted read replicas (deterministic per
                # session; losers keep their walk position).
                cands = [route[0]] + [
                    s for s in promoted if s in route and s != route[0]
                ]
                if len(cands) > 1:
                    head = cands[self._hot_rr % len(cands)]
                    self._hot_rr += 1
                    if head != order[0]:
                        order = (head,) + tuple(
                            s for s in order if s != head
                        )
            epoch = kv.epoch
            for attempt, shard in enumerate(order):
                stats = self.stats[shard]
                stats.reads_routed += 1
                if attempt > 0:
                    stats.fallback_attempts += 1
                # Non-final attempts get a grace slice; with fallback
                # disabled (double-read walk) the reroute bound serves
                # as the slice so earlier owners still yield the floor.
                grace = fallback_ns if fallback_ns > 0 else reroute_ns
                deadline = (
                    t_end
                    if attempt == len(order) - 1
                    else min(t_end, sim.now + grace)
                )
                deadline = min(deadline, sim.now + reroute_ns)
                ok = yield from self.attempt(shard, idx, deadline)
                if ok:
                    if attempt > 0:
                        stats.fallback_reads += 1
                    return True
                if sim.now >= t_end:
                    return False
                if kv.epoch != epoch:
                    # View changed mid-walk: recompute the route.
                    break
            # Walk exhausted before t_end (only possible when reroute
            # bounding is active): loop re-reads the current view.
        return False


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------


class ShardedKV:
    """A rack-scale KV service: ``n_shards`` storage nodes, each owning
    one :class:`ObjectStore` shard, and a set of client nodes issuing
    one-sided reads and RPC writes over the shared fabric."""

    def __init__(self, cfg: ShardedConfig):
        cfg.validate()
        self.cfg = cfg
        self.protocol_cls = _get_protocol(cfg.mechanism)
        self.bound_cfg = _BoundConfig(
            mechanism=cfg.mechanism,
            object_size=cfg.object_size,
            version_bits=cfg.version_bits,
            costs=cfg.costs,
        )
        self.mechanism = self.protocol_cls.make_mechanism(self.bound_cfg)
        self.layout = self.mechanism.layout if self.mechanism else RawLayout()

        #: Shard slots built into the cluster: ring members first, then
        #: spare slots a live scale-out can activate.
        self.provisioned = cfg.provisioned_shards
        self.cluster = Cluster(cfg.cluster_config())
        self.shards = [self.cluster.node(i) for i in range(self.provisioned)]
        self.clients = [
            self.cluster.node(self.provisioned + i)
            for i in range(cfg.clients)
        ]
        self.ring = HashRing(range(cfg.n_shards), vnodes=cfg.vnodes, seed=cfg.seed)
        self.stores = [
            ObjectStore(node.phys, self.layout, name=f"shard{node.node_id}")
            for node in self.shards
        ]

        self._keys: Dict[str, int] = {}
        self._placement: List[Tuple[int, ...]] = []
        for idx in range(cfg.n_objects):
            key = self.key_name(idx)
            replicas = self.ring.replicas(key, cfg.replication)
            self._keys[key] = idx
            self._placement.append(replicas)
            for shard in replicas:
                self.stores[shard].create(idx, stamped_payload(0, cfg.payload_len))

        self.write_stats = [ShardWriteStats() for _ in range(self.provisioned)]
        self.write_latency = Samples("sharded_write_ns")
        self.sessions: List[ReaderSession] = []
        self._wcore = [0] * self.provisioned
        self._put_seq = itertools.count()

        # -- failover/reshard view (mutated only by objstore.failover
        #    and objstore.reshard) --------------------------------------
        #: Configuration epoch: bumped on every crash/rejoin and every
        #: resharding step; stamped into write and lock RPCs, checked by
        #: every handler (fencing).
        self.epoch = 0
        #: Per-slot ring membership.  Spare slots are provisioned but
        #: not members until a scale-out activates them; a scale-in
        #: demotes a member back to a spare.
        self.members = [i < cfg.n_shards for i in range(self.provisioned)]
        #: Per-shard serving flag.  A crashed shard is not serving; a
        #: recovering shard stays non-serving until its re-sync ends.
        #: Spare (non-member) slots are not serving either — their
        #: handlers fence everything until activation.
        self.serving = [i < cfg.n_shards for i in range(self.provisioned)]
        #: Object ids currently inside a migration's double-read
        #: window: readers walk *all* serving copies (old and new
        #: owners) for these even with fallback disabled, so the window
        #: never narrows a hot key down to a single mid-handoff copy.
        self.double_read: set = set()
        #: Promoted extra read replicas per hot object id (appended to
        #: the placement tail by the rebalance policy); lookups rotate
        #: deterministically over primary + promoted copies.
        self.hot_replicas: Dict[int, List[int]] = {}
        #: Per-object consumed-read counters — the load signal the
        #: hotspot detector samples (plain lookups only; transactional
        #: reads always need the primary and gain nothing from extra
        #: read replicas).
        self.key_reads = [0] * cfg.n_objects
        #: Upper bound on one read attempt's deadline so a crash
        #: mid-attempt re-routes promptly; ``inf`` (the default, no
        #: failover manager attached) preserves the plain semantics.
        self.reroute_check_ns = float("inf")
        #: Client-side watchdog for write/lock RPCs (None disables);
        #: the failover manager sets it to model lease timeouts.
        self.rpc_timeout_ns: Optional[float] = None
        #: Per-shard lock ownership: object id -> owner token of the
        #: transaction currently holding it.  Bare odd/even versions
        #: are ABA-vulnerable across a crash + re-sync (the re-sync
        #: restores the pre-crash committed version, so the next locker
        #: republishes the identical odd value); commit/release verify
        #: the token so a straggler can never act on someone else's
        #: lock.  Cleared per shard by :meth:`resync_shard`.
        self.lock_owners: List[Dict[int, int]] = [
            {} for _ in range(self.provisioned)
        ]

        self._shard_rpc = [
            RpcEndpoint(node, workers=cfg.rpc_workers, costs=cfg.costs)
            for node in self.shards
        ]
        self._client_rpc = [
            RpcEndpoint(node, workers=cfg.rpc_workers, costs=cfg.costs)
            for node in self.clients
        ]
        for shard in range(self.provisioned):
            self._shard_rpc[shard].register(
                "shard_put", self._make_update_handler(shard, replicate=True)
            )
            self._shard_rpc[shard].register(
                "shard_replicate", self._make_update_handler(shard, replicate=False)
            )

    # ------------------------------------------------------------------
    # key space and placement
    # ------------------------------------------------------------------
    @staticmethod
    def key_name(idx: int) -> str:
        return f"key-{idx}"

    def keys(self) -> List[str]:
        return list(self._keys)

    def key_index(self, key: str) -> int:
        try:
            return self._keys[key]
        except KeyError:
            raise ConfigError(f"unknown key {key!r}") from None

    def primary_of(self, key: str) -> int:
        return self._placement[self.key_index(key)][0]

    def replicas_of(self, key: str) -> Tuple[int, ...]:
        return self._placement[self.key_index(key)]

    # ------------------------------------------------------------------
    # failover view: who serves what right now
    # ------------------------------------------------------------------
    def current_primary_by_index(self, idx: int) -> Optional[int]:
        """The first *serving* replica of object ``idx`` (writes and
        try-locks go here), or ``None`` during a total outage."""
        for shard in self._placement[idx]:
            if self.serving[shard]:
                return shard
        return None

    def current_primary(self, key: str) -> Optional[int]:
        return self.current_primary_by_index(self.key_index(key))

    def read_route_by_index(self, idx: int) -> Tuple[int, ...]:
        """The serving replicas of object ``idx`` in promotion order."""
        return tuple(s for s in self._placement[idx] if self.serving[s])

    def read_route(self, key: str) -> Tuple[int, ...]:
        return self.read_route_by_index(self.key_index(key))

    def mark_down(self, shard: int) -> int:
        """Take ``shard`` out of the view: stop routing to it, promote
        the next serving replica for every key it was primary of (the
        promotion is *permanent* — a recovered shard rejoins as a
        backup), and bump the epoch so stale requests are fenced.
        Returns how many keys changed primaries."""
        self.serving[shard] = False
        promoted = 0
        for idx, place in enumerate(self._placement):
            if shard in place:
                if place[0] == shard:
                    promoted += 1
                self._placement[idx] = tuple(
                    s for s in place if s != shard
                ) + (shard,)
        self.epoch += 1
        return promoted

    def mark_serving(self, shard: int) -> None:
        """Readmit a re-synced shard (as a backup: :meth:`mark_down`
        already demoted it) and bump the epoch for the view change."""
        self.serving[shard] = True
        self.epoch += 1

    # ------------------------------------------------------------------
    # elastic membership (mutated only by objstore.reshard)
    # ------------------------------------------------------------------
    def member_shards(self) -> List[int]:
        """The current ring members, ascending (spares excluded)."""
        return [s for s in range(self.provisioned) if self.members[s]]

    def all_members_serving(self) -> bool:
        """False while any ring *member* is crashed or re-syncing
        (spare slots are always non-serving and don't count)."""
        return all(
            self.serving[s]
            for s in range(self.provisioned)
            if self.members[s]
        )

    def activate_shard(self, shard: int) -> None:
        """Admit spare slot ``shard`` as a serving ring member and bump
        the epoch (the ring itself is grown by the reshard manager,
        which then migrates the moved keys onto the new member)."""
        if not 0 <= shard < self.provisioned:
            raise ConfigError(f"no provisioned shard slot {shard}")
        if self.members[shard]:
            raise ConfigError(f"shard {shard} is already a member")
        self.members[shard] = True
        self.serving[shard] = True
        self.epoch += 1

    def deactivate_shard(self, shard: int) -> None:
        """Demote ``shard`` back to a spare slot after a scale-in has
        drained it (no placement may still route to it)."""
        if not self.members[shard]:
            raise ConfigError(f"shard {shard} is not a member")
        for idx, place in enumerate(self._placement):
            if shard in place:
                raise ConfigError(
                    f"shard {shard} still hosts object {idx}; migrate first"
                )
        self.members[shard] = False
        self.serving[shard] = False
        self.epoch += 1

    def resync_shard(self, shard: int) -> int:
        """Copy the current committed image of every object hosted on
        ``shard`` from that object's current primary (functional: the
        *time* of a re-sync is charged by the failover manager before
        this runs).  A copy caught mid-update on the primary is rounded
        down to its last committed version — by the repo-wide ground
        truth convention a committed image is fully determined by its
        version, so the synthesized bytes are exact.  Returns the
        number of objects re-synced."""
        store = self.stores[shard]
        # Locks (and therefore their owners) did not survive the crash.
        self.lock_owners[shard].clear()
        copied = 0
        for idx, place in enumerate(self._placement):
            if shard not in place:
                continue
            src = self.current_primary_by_index(idx)
            if src is None or src == shard:
                # No peer to copy from (every other replica is down
                # too): self-heal from the local copy instead.  This
                # still clears any lock stranded by a handler that died
                # mid-update — rejoining with an odd version would
                # wedge the object forever.
                src = shard
            version = self.stores[src].current_version(idx)
            committed = version - 1 if is_locked(version) else version
            image = self.layout.pack(
                committed, stamped_payload(committed, self.cfg.payload_len)
            )
            store.phys.write(store.handle(idx).base_addr, image)
            copied += 1
        return copied

    def all_endpoints(self) -> List[RpcEndpoint]:
        """Every RPC endpoint in the deployment, shards then clients
        (deterministic order — the failover crash path iterates it)."""
        return [*self._shard_rpc, *self._client_rpc]

    # ------------------------------------------------------------------
    # endpoints and cores
    # ------------------------------------------------------------------
    def shard_rpc(self, shard: int) -> RpcEndpoint:
        """The RPC endpoint of storage shard ``shard`` (extra services,
        e.g. the transaction layer, register their handlers here)."""
        return self._shard_rpc[shard]

    def client_rpc(self, client_index: int) -> RpcEndpoint:
        """The RPC endpoint of client node ``client_index``."""
        return self._client_rpc[client_index]

    def next_writer_core(self, shard: int) -> int:
        """Round-robin core assignment for timed writes applied on a
        shard (shared by the put path and the transaction handlers, so
        writer load spreads over the chip either way)."""
        core = self._wcore[shard] % self.cluster.cfg.node.cores.count
        self._wcore[shard] += 1
        return core

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def reader_session(self, client_index: int) -> ReaderSession:
        session = ReaderSession(self, client_index)
        self.sessions.append(session)
        return session

    # ------------------------------------------------------------------
    # write path: RPC to the primary, timed local update, async
    # replication to the backups (§2.1's write shipping, scaled out)
    # ------------------------------------------------------------------
    def put(self, client_index: int, key: str, t_end: float = float("inf")):
        """Issue a write from a client node; returns an event that
        triggers with the serving primary's ack — or with ``None`` if
        ``t_end`` arrives while *no* replica of the key is serving (a
        permanent total outage would otherwise spin the outage poll,
        and the simulation, forever).

        The put survives three failure modes, all invisible to the
        caller beyond latency; callers still observe exactly one acked
        write:

        * **busy** — the object's lock stayed held past
          ``PUT_SPIN_LIMIT`` re-checks (e.g. a transaction commit in
          flight).  The client backs off with deterministic jittered
          exponential delay before re-issuing, so txn-heavy mixes
          cannot starve plain puts by keeping the worker pool saturated
          with instant retries.  ``write_retries`` is charged to the
          shard that bounced, pairing with its ``busy_rejects`` even
          when the re-issue lands elsewhere after a promotion.
        * **crashed** — the RPC failed with a typed
          :class:`~repro.common.errors.ShardCrashedError`; the client
          redirects to the promoted backup.
        * **fenced** — the receiver refused a stale epoch or ownership;
          the client refreshes its view and re-issues.
        """
        idx = self.key_index(key)
        sim = self.cluster.sim
        put_seq = next(self._put_seq)
        body = idx.to_bytes(8, "little") + bytes(self.cfg.payload_len)

        def retrying_put():
            bounces = 0
            backoff_rng = None  # built on the first bounce only
            while True:
                primary = self.current_primary_by_index(idx)
                if primary is None:
                    # Total outage: every replica is down.  Poll the
                    # view until a shard rejoins or the deadline hits.
                    if sim.now >= t_end:
                        return None
                    yield sim.timeout(min(OUTAGE_POLL_NS, t_end - sim.now))
                    continue
                ws = self.write_stats[primary]
                ws.writes_routed += 1
                reply = yield self._client_rpc[client_index].call(
                    self.shards[primary].node_id,
                    "shard_put",
                    self.epoch.to_bytes(8, "little") + body,
                    timeout_ns=self.rpc_timeout_ns,
                )
                if isinstance(reply, ShardCrashedError):
                    ws.crash_redirects += 1
                    if sim.now >= t_end:
                        return None
                    continue
                if reply == REPLY_OK:
                    return reply
                if reply == REPLY_FENCED:
                    # The handler counted the fence; if the fence was a
                    # migration/promotion moving the primary out from
                    # under us, charge the redirect to the stale owner.
                    # Deadline check first: a put redirected mid-
                    # migration carries its *remaining* budget — a
                    # permanently-migrating key must not spin forever.
                    if self.current_primary_by_index(idx) != primary:
                        ws.reshard_redirects += 1
                    if sim.now >= t_end:
                        return None
                    continue  # view re-read above
                ws.write_retries += 1
                bounces += 1
                if sim.now >= t_end:
                    # Busy-bounce backstop: past the deadline a put must
                    # not keep hammering a lock it may never win (e.g.
                    # one held across a partition window) — the caller
                    # observes the same ``None`` a total outage yields.
                    return None
                if backoff_rng is None:
                    backoff_rng = make_rng(self.cfg.seed, "put-backoff", put_seq)
                # Exponent clamped: past the cap more doubling only
                # risks float overflow on pathologically long waits.
                backoff = min(
                    PUT_BACKOFF_CAP_NS,
                    PUT_BACKOFF_BASE_NS * (2.0 ** min(bounces - 1, 16)),
                )
                yield sim.timeout(backoff * backoff_rng.uniform(0.5, 1.5))

        return self.cluster.sim.process(retrying_put())

    def _make_update_handler(self, shard: int, replicate: bool):
        def handler(payload: bytes):
            return self._apply_update(shard, payload, replicate)

        return handler

    def _apply_update(self, shard: int, payload: bytes, replicate: bool):
        """Owner-side update under the odd/even version protocol.

        The new image goes through the shard's *timed* chip memory
        system block by block (lock, data, commit), so coherence
        invalidations reach any in-flight SABRe exactly as a local
        writer's would — the property the safety tests pin down.

        Every update RPC carries the issuer's epoch (first 8 bytes) and
        is fenced: a primary put is refused unless the epoch is current
        *and* this shard is the object's serving primary, so a demoted
        or not-yet-re-synced shard can never commit writes the promoted
        view does not know about.  Replica updates check the epoch only
        (ownership of a backup copy is implied by the sender being the
        primary of that epoch).
        """
        sim = self.cluster.sim
        cfg = self.cfg
        node = self.shards[shard]
        store = self.stores[shard]
        ws = self.write_stats[shard]
        epoch = int.from_bytes(payload[:8], "little")
        obj_id = int.from_bytes(payload[8:16], "little")

        # Both paths are fenced while the shard is not serving: a
        # re-syncing shard must not interleave handler block writes
        # with the re-sync's image copy (the one writer that bypasses
        # the odd/even protocol), or it could leave a mixed-version
        # image at rest and serve it after a later promotion.  Nothing
        # is lost: an update fenced here was already applied on the
        # primary, so the re-sync copy carries it.
        #
        # Only the *primary* path additionally checks the epoch and
        # ownership.  Replica updates deliberately skip the epoch
        # check: demotion only ever happens through a crash (and a
        # crashed node cannot send), so an epoch-stale replica update
        # is always a legitimate in-flight replication that raced an
        # unrelated view change — fencing it would silently strand the
        # backup behind an acked write.
        if replicate:
            stale = (
                epoch != self.epoch
                or not self.serving[shard]
                or self.current_primary_by_index(obj_id) != shard
            )
        else:
            stale = not self.serving[shard]
        if stale:
            ws.fenced_rejects += 1
            return REPLY_FENCED, cfg.costs.writer_block_ns

        # Version polls resolve the object's header address once and
        # read it directly: the spin loop re-checks every LOCK_SPIN_NS
        # and pays no per-poll handle lookup.
        vaddr = store.version_addr(obj_id)
        read_u64 = store.phys.read_u64
        spins = 0
        while is_locked(read_u64(vaddr)):
            if replicate and spins >= PUT_SPIN_LIMIT:
                # Primary path only: give the worker back so whoever
                # holds the lock can get its own RPC served (the client
                # re-issues).  Replica updates never bounce — backups
                # are only locked by other bounded replica updates.
                ws.busy_rejects += 1
                return REPLY_BUSY, 0.0
            spins += 1
            ws.lock_spins += 1
            yield LOCK_SPIN_NS

        # Same odd/even helpers the update plan uses internally, so the
        # payload stamp can never diverge from the header version.
        committed = commit_version(lock_version(read_u64(vaddr)))
        data = stamped_payload(committed, cfg.payload_len)
        steps, _version = store.update_steps(obj_id, data)
        core = self.next_writer_core(shard)

        # The lock step is applied before the first yield: between the
        # lock check above and this store no other process can run, so
        # two concurrent writers cannot both see an even version.
        # Delays are yielded as bare floats — the RPC dispatcher's
        # trampoline fast path — so the per-block interleaving points
        # (where readers can observe partial images) cost one scheduled
        # callback each instead of a Timeout event.
        block_floor = cfg.costs.writer_block_ns
        chip = node.chip
        addr, chunk = steps[0]
        latency = chip.write_block(core, addr, chunk)
        yield max(latency, block_floor)
        yield cfg.costs.writer_fixed_ns
        for addr, chunk in steps[1:]:
            latency = chip.write_block(core, addr, chunk)
            yield max(latency, block_floor)

        if replicate:
            ws.primary_updates += 1
            for backup in self._placement[obj_id][1:]:
                # Asynchronous primary/backup replication: the ack does
                # not wait for the backups (and the RPC worker pools
                # therefore cannot deadlock on each other).  The epoch
                # is restamped: the view may have changed while this
                # handler held the chip.  A dead backup fails the call
                # fast; nobody waits on the completion.
                self._shard_rpc[shard].call(
                    self.shards[backup].node_id,
                    "shard_replicate",
                    self.epoch.to_bytes(8, "little") + payload[8:],
                    timeout_ns=self.rpc_timeout_ns,
                )
        else:
            ws.replica_updates += 1
        return REPLY_OK, 0.0

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def merged_shard_stats(self) -> List[ShardStats]:
        """Per-shard read stats folded across every reader session."""
        merged = [ShardStats() for _ in range(self.provisioned)]
        for session in self.sessions:
            for shard, stats in enumerate(session.stats):
                merged[shard].merge(stats)
        return merged

    def all_reader_stats(self) -> List[ShardStats]:
        """Every session's per-shard stats (e.g. for meter windows)."""
        return [s for session in self.sessions for s in session.stats]

    def shard_load(self) -> List[Dict[str, float]]:
        """Per-shard load/conflict table: one row per shard combining
        read routing, conflict, audit, and write/replication counters."""
        rows: List[Dict[str, float]] = []
        for shard, stats in enumerate(self.merged_shard_stats()):
            ws = self.write_stats[shard]
            rows.append(
                {
                    "shard": shard,
                    "objects": len(self.stores[shard]),
                    "reads_routed": stats.reads_routed,
                    "fallback_attempts": stats.fallback_attempts,
                    "fallback_reads": stats.fallback_reads,
                    "retries": stats.retries,
                    "sabre_aborts": stats.sabre_aborts,
                    "software_conflicts": stats.software_conflicts,
                    "undetected_violations": stats.undetected_violations,
                    "writes_routed": ws.writes_routed,
                    "primary_updates": ws.primary_updates,
                    "replica_updates": ws.replica_updates,
                    "lock_spins": ws.lock_spins,
                    "busy_rejects": ws.busy_rejects,
                    "write_retries": ws.write_retries,
                    "fenced_rejects": ws.fenced_rejects,
                    "crash_redirects": ws.crash_redirects,
                    "reshard_redirects": ws.reshard_redirects,
                    "serving": int(self.serving[shard]),
                    "member": int(self.members[shard]),
                }
            )
        return rows

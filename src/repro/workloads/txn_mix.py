"""Transactional workload mixes over the sharded FaRM service.

YCSB-T-style closed-loop clients drive the transaction layer of
:mod:`repro.objstore.txn` with the two canonical shapes:

* **read-modify-write** transactions: read ``txn_size`` keys, write
  ``writes_per_txn`` of them (locked, validated, applied on each
  touched primary);
* **multi-key read-only** transactions: read ``txn_size`` keys and
  commit only if validation proves the snapshot was consistent.

``rmw_fraction`` sets the share of read-modify-write transactions and
key popularity is uniform or Zipfian (reusing
:mod:`repro.workloads.generators`), so hot-key contention — and with
it lock conflicts and validation aborts — is tunable the same way the
YCSB suite tunes it.  Every consumed read still flows through the
pluggable :class:`~repro.workloads.protocols.ReadProtocol`, so all
five Table 1 mechanisms run the exact same transactions.

Two experiments register with the framework:

* ``txn_abort_rate`` — abort rate vs. the write-transaction fraction,
  one variant per read mechanism, on a fixed 4-shard deployment.
* ``txn_shard_scaling`` — a 50/50 mix under SABRes while the rack
  grows 1 -> 8 shards: commit throughput should scale and the torn-
  read audit must stay clean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.experiments import ExperimentSpec, Variant, register
from repro.harness.report import scaled_duration
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager, TxnStats
from repro.sim.stats import Samples
from repro.workloads.generators import UniformPicker, ZipfianPicker

DISTRIBUTIONS = ("uniform", "zipfian")


@dataclass
class TxnMixConfig:
    """One transactional-mix run against a sharded deployment."""

    txn_size: int = 4
    writes_per_txn: int = 2
    rmw_fraction: float = 0.5
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    mechanism: str = "sabre"
    n_shards: int = 4
    n_clients: int = 0  # 0 = one client node per shard
    sessions_per_client: int = 2
    replication: int = 2
    object_size: int = 256
    n_objects: int = 128
    duration_ns: float = 200_000.0
    warmup_ns: float = 20_000.0
    seed: int = 1
    version_bits: int = 16
    vnodes: int = 64
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)

    def validate(self) -> None:
        if self.txn_size < 1:
            raise ConfigError("transactions must touch at least one key")
        if self.txn_size > self.n_objects:
            raise ConfigError(
                f"txn_size {self.txn_size} exceeds the {self.n_objects}-object "
                "key space"
            )
        if not 0 <= self.writes_per_txn <= self.txn_size:
            raise ConfigError(
                f"writes_per_txn must be in [0, txn_size]: {self.writes_per_txn}"
            )
        if not 0.0 <= self.rmw_fraction <= 1.0:
            raise ConfigError(f"rmw_fraction must be in [0, 1]: {self.rmw_fraction}")
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                f"unknown distribution {self.distribution!r}; "
                f"choose from {DISTRIBUTIONS}"
            )
        if not 0.0 < self.zipf_theta < 2.0:
            raise ConfigError(f"zipf_theta must be in (0, 2): {self.zipf_theta}")
        if self.sessions_per_client < 1:
            raise ConfigError("need at least one session per client")
        if self.warmup_ns < 0:
            raise ConfigError("warmup cannot be negative")
        if self.warmup_ns >= self.duration_ns:
            raise ConfigError("warmup must end before the run does")
        self.to_sharded().validate()

    def to_sharded(self) -> ShardedConfig:
        return ShardedConfig(
            n_shards=self.n_shards,
            n_clients=self.n_clients,
            replication=self.replication,
            mechanism=self.mechanism,
            object_size=self.object_size,
            n_objects=self.n_objects,
            version_bits=self.version_bits,
            vnodes=self.vnodes,
            seed=self.seed,
            costs=self.costs,
        )


@dataclass
class TxnMixResult:
    config: TxnMixConfig
    commit_latency: Samples
    commits: int
    rmw_commits: int
    ro_commits: int
    attempts: int
    lock_aborts: int
    validation_aborts: int
    timeouts: int
    retries: int
    sabre_aborts: int
    software_conflicts: int
    read_retries: int
    undetected_violations: int
    torn_reads_observed: int
    txn_rows: List[Dict[str, int]]
    shard_rows: List[Dict[str, float]]

    @property
    def mean_commit_ns(self) -> float:
        return self.commit_latency.mean

    @property
    def abort_rate(self) -> float:
        """Aborted attempts over all attempts (timeouts excluded)."""
        if self.attempts <= 0:
            return math.nan
        return (self.lock_aborts + self.validation_aborts) / self.attempts

    @property
    def commits_per_us(self) -> float:
        window = self.config.duration_ns - self.config.warmup_ns
        return self.commits / window * 1e3


def run_txn_mix(cfg: TxnMixConfig) -> TxnMixResult:
    """Build the sharded service + txn layer and run the closed loop."""
    cfg.validate()
    kv = ShardedKV(cfg.to_sharded())
    manager = TxnManager(kv)
    sim = kv.cluster.sim
    t_end = cfg.duration_ns

    commit_latency = Samples("txn_commit_ns")
    window = {
        "commits": 0,
        "rmw_commits": 0,
        "ro_commits": 0,
        "attempts": 0,
        "lock_aborts": 0,
        "validation_aborts": 0,
        "timeouts": 0,
        "retries": 0,
    }

    def picker(client: int, thread: int):
        label = (client, thread)
        ids = range(cfg.n_objects)
        if cfg.distribution == "zipfian":
            return ZipfianPicker(ids, cfg.seed, theta=cfg.zipf_theta, label=label)
        return UniformPicker(ids, cfg.seed, label=label)

    def pick_keys(pick) -> List[str]:
        chosen: List[int] = []
        while len(chosen) < cfg.txn_size:
            idx = pick.pick()
            if idx not in chosen:
                chosen.append(idx)
        return [kv.key_name(idx) for idx in chosen]

    def client_proc(session, client: int, thread: int):
        rng = make_rng(cfg.seed, "txn-mix", client, thread)
        pick = picker(client, thread)
        while sim.now < t_end:
            keys = pick_keys(pick)
            rmw = cfg.writes_per_txn > 0 and rng.random() < cfg.rmw_fraction
            write_keys = keys[: cfg.writes_per_txn] if rmw else []
            t0 = sim.now
            outcome = yield from session.run(keys, write_keys, t_end)
            in_window = cfg.warmup_ns <= sim.now <= t_end
            if in_window:
                window["attempts"] += outcome.attempts
                window["lock_aborts"] += outcome.lock_aborts
                window["validation_aborts"] += outcome.validation_aborts
                window["timeouts"] += int(outcome.timed_out)
                # Transaction-level retry count (an attempt after an
                # abort), not the per-shard attribution the manager
                # keeps — a 4-shard txn retrying once is 1 retry here.
                window["retries"] += outcome.attempts - 1
            if outcome.committed and in_window:
                commit_latency.add(sim.now - t0)
                window["commits"] += 1
                window["rmw_commits" if rmw else "ro_commits"] += 1

    for client in range(kv.cfg.clients):
        for thread in range(cfg.sessions_per_client):
            session = manager.session(client)
            sim.process(client_proc(session, client, thread))

    def metering():
        yield sim.timeout(cfg.warmup_ns)
        for stats in kv.all_reader_stats():
            stats.meter.start(sim.now)
        yield sim.timeout(t_end - cfg.warmup_ns)
        for stats in kv.all_reader_stats():
            stats.meter.stop(sim.now)

    sim.process(metering())
    sim.run()

    reader_stats = kv.all_reader_stats()
    merged: TxnStats = manager.merged_stats()
    return TxnMixResult(
        config=cfg,
        commit_latency=commit_latency,
        commits=window["commits"],
        rmw_commits=window["rmw_commits"],
        ro_commits=window["ro_commits"],
        attempts=window["attempts"],
        lock_aborts=window["lock_aborts"],
        validation_aborts=window["validation_aborts"],
        timeouts=window["timeouts"],
        retries=window["retries"],
        sabre_aborts=sum(s.sabre_aborts for s in reader_stats),
        software_conflicts=sum(s.software_conflicts for s in reader_stats),
        read_retries=sum(s.retries for s in reader_stats),
        undetected_violations=sum(s.undetected_violations for s in reader_stats),
        torn_reads_observed=merged.torn_reads_observed,
        txn_rows=manager.txn_rows(),
        shard_rows=kv.shard_load(),
    )


# ----------------------------------------------------------------------
# registered experiments
# ----------------------------------------------------------------------

#: Variant label -> registered protocol name.
PROTOCOL_VARIANTS = (
    ("remote", "remote_read"),
    ("sabre", "sabre"),
    ("percl", "percl_versions"),
    ("checksum", "checksum"),
    ("drtm", "drtm_lock"),
)

ABORT_HEADERS = (
    "rmw_fraction",
    *(f"{label}_abort_rate" for label, _name in PROTOCOL_VARIANTS),
    *(f"{label}_commits" for label, _name in PROTOCOL_VARIANTS),
)

SCALING_HEADERS = (
    "shards",
    "commits_per_us",
    "commit_ns",
    "abort_rate",
    "lock_aborts",
    "validation_aborts",
    "retries",
    "undetected_violations",
    "torn_reads_observed",
)


def _cfg_from_params(p, scale: float) -> TxnMixConfig:
    return TxnMixConfig(
        txn_size=p["txn_size"],
        writes_per_txn=p["writes_per_txn"],
        rmw_fraction=p["rmw_fraction"],
        distribution=p["distribution"],
        mechanism=p["mechanism"],
        n_shards=p["n_shards"],
        n_clients=p.get("n_clients", 0),
        sessions_per_client=p["sessions_per_client"],
        replication=p["replication"],
        object_size=p["object_size"],
        n_objects=p["n_objects"],
        duration_ns=scaled_duration(p["duration_ns"], scale),
        warmup_ns=p["warmup_ns"],
        seed=p["seed"],
    )


def _abort_rate_point(ctx) -> Dict[str, float]:
    result = run_txn_mix(_cfg_from_params(ctx.params, ctx.scale))
    v = ctx.variant
    return {
        f"{v}_abort_rate": result.abort_rate,
        f"{v}_commits": result.commits,
        f"{v}_violations": result.undetected_violations,
        f"{v}_torn_reads": result.torn_reads_observed,
    }


TXN_ABORT_RATE_SPEC = register(
    ExperimentSpec(
        name="txn_abort_rate",
        description="Txn abort rate vs. write fraction, per read mechanism",
        axes={"rmw_fraction": (0.0, 0.25, 0.5, 0.75, 1.0)},
        variants=tuple(
            Variant(label, {"mechanism": name})
            for label, name in PROTOCOL_VARIANTS
        ),
        defaults={
            "txn_size": 4,
            "writes_per_txn": 2,
            "distribution": "zipfian",
            "mechanism": "sabre",
            "n_shards": 4,
            "sessions_per_client": 2,
            "replication": 2,
            "object_size": 256,
            "n_objects": 128,
            "duration_ns": 120_000.0,
            "warmup_ns": 15_000.0,
            "seed": 17,
        },
        headers=ABORT_HEADERS,
        point_fn=_abort_rate_point,
        base_seed=17,
    )
)


def _derive_scaling(params: Dict) -> Dict:
    out = dict(params)
    shards = out.pop("shards")
    out["n_shards"] = shards
    # One client node per shard: load generators grow with the rack.
    out["n_clients"] = shards
    out["replication"] = min(out["replication"], shards)
    return out


def _txn_scaling_point(ctx) -> Dict[str, float]:
    result = run_txn_mix(_cfg_from_params(ctx.params, ctx.scale))
    return {
        "commits_per_us": result.commits_per_us,
        "commit_ns": result.mean_commit_ns,
        "abort_rate": result.abort_rate,
        "lock_aborts": result.lock_aborts,
        "validation_aborts": result.validation_aborts,
        "retries": result.retries,
        "undetected_violations": result.undetected_violations,
        "torn_reads_observed": result.torn_reads_observed,
    }


TXN_SHARD_SCALING_SPEC = register(
    ExperimentSpec(
        name="txn_shard_scaling",
        description="Txn commit throughput under SABRes as shards grow 1->8",
        axes={"shards": (1, 2, 4, 8)},
        defaults={
            "txn_size": 4,
            "writes_per_txn": 2,
            "rmw_fraction": 0.5,
            "distribution": "uniform",
            "mechanism": "sabre",
            "sessions_per_client": 2,
            "replication": 2,
            "object_size": 256,
            "n_objects": 128,
            "duration_ns": 120_000.0,
            "warmup_ns": 15_000.0,
            "seed": 19,
        },
        derive=_derive_scaling,
        headers=SCALING_HEADERS,
        point_fn=_txn_scaling_point,
        base_seed=19,
    )
)

"""Elastic workloads: live resharding and hotspot rebalancing under load.

Closed-loop readers, writers, and (optionally) transactions drive
:class:`~repro.objstore.sharded.ShardedKV` while a
:class:`~repro.objstore.reshard.ReshardManager` executes a planned
topology change mid-run — the ROADMAP item 4 elastic story: *scale the
deployment 4 -> 8 shards under load with zero torn reads, a bounded
tail-latency blip, and throughput converging to the fresh-8-shard
baseline.*  The run is metered in three phases:

* **pre** — steady state at the starting shard count (after warmup,
  before the change is scheduled);
* **mid** — the migration window (handoffs, double reads, writer
  redirects; the tail-latency blip lives here);
* **post** — after the drain, where placement is provably identical to
  a fresh deployment at the target count and throughput should match a
  run that *started* there.  ``run_elastic`` optionally runs that fresh
  baseline over the same post window and reports the convergence ratio.

The second story is **hotspot rebalancing**: a Zipfian-head key
concentrates reads on one shard; the manager's policy loop promotes
extra read replicas for it and lookups rotate over them, pulling the
max-over-mean shard imbalance back down.  Promotion is demoted again
when the interval share cools.

Two experiments register with the framework:

* ``elastic_scaling`` — every detecting mechanism through a mid-run
  4 -> 8 scale-out: zero undetected violations, post-convergence
  throughput ratio, migration accounting.
* ``hotkey_rebalance`` — the Zipfian mix with the rebalance policy off
  vs on: imbalance drops, promoted replicas absorb hot-key reads, and
  the detecting protocol still consumes zero torn reads.

Fault composition mirrors :mod:`repro.workloads.availability`: a
config can open gray or partition windows from the PR 7 schedules on
top of the migration — the nastiest planned-change lane the fuzzer
exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.experiments import ExperimentSpec, QaCheck, Variant, register
from repro.faults import FaultInjector, FaultSchedule
from repro.harness.report import scaled_duration
from repro.objstore.reshard import (
    DEFAULT_DRAIN_NS,
    DEFAULT_HANDOFF_FIXED_NS,
    RebalanceConfig,
    ReshardManager,
    ReshardStats,
)
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.sim.stats import Samples
from repro.workloads.generators import UniformPicker, ZipfianPicker

#: Fault kinds an elastic config can overlap with the migration.
ELASTIC_FAULT_KINDS = ("none", "gray", "straggler", "partition")


@dataclass
class ElasticConfig:
    """One elastic run: a mixed load plus a planned topology change.

    ``target_shards`` above ``n_shards`` is a scale-out (spare slots
    join), below is a scale-in (the highest members drain out), equal
    means no topology change (the rebalance-only lane).  The change is
    scheduled at ``scale_at_frac`` of ``duration_ns``; the post-
    convergence window opens at ``post_frac``.  ``n_clients`` is an
    absolute count (not per-shard) so the elastic run and its fresh-
    target baseline drive identical load."""

    mechanism: str = "sabre"
    n_shards: int = 4
    target_shards: int = 8
    n_clients: int = 4
    readers_per_client: int = 2
    writers_per_client: int = 1
    txn_sessions_per_client: int = 0
    txn_size: int = 3
    writes_per_txn: int = 1
    replication: int = 2
    object_size: int = 512
    n_objects: int = 96
    duration_ns: float = 240_000.0
    warmup_ns: float = 5_000.0
    scale_at_frac: float = 0.30
    post_frac: float = 0.60
    write_pause_ns: float = 150.0
    fallback_after_ns: float = 0.0
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    seed: int = 1
    version_bits: int = 16
    vnodes: int = 64
    handoff_fixed_ns: float = DEFAULT_HANDOFF_FIXED_NS
    drain_ns: float = DEFAULT_DRAIN_NS
    #: Hotspot policy: off by default; when on, the promote/demote loop
    #: runs from warmup to the end of the run.
    rebalance: bool = False
    rebalance_interval_ns: float = 20_000.0
    hot_share: float = 0.06
    cool_share: float = 0.02
    max_extra_replicas: int = 2
    min_interval_reads: int = 32
    #: Fault windows overlapping the migration (PR 7 schedules),
    #: expressed as fractions of ``duration_ns``.
    fault_kind: str = "none"
    fault_windows: int = 0
    fault_first_frac: float = 0.30
    fault_width_frac: float = 0.15
    fault_gap_frac: float = 0.05
    gray_multiplier: float = 8.0
    partition_drop: bool = True
    #: Run the fresh-target baseline over the same post window and
    #: report ``convergence_ratio`` (doubles the run cost; the parity
    #: artifacts and fuzz lanes switch it off).
    compare_baseline: bool = True
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)

    def validate(self) -> None:
        if self.n_clients < 1:
            raise ConfigError(
                "elastic runs pin an absolute client count >= 1 (the "
                "fresh-target baseline must drive identical load)"
            )
        if self.readers_per_client < 1:
            raise ConfigError("need at least one reader per client")
        if self.writers_per_client < 0 or self.txn_sessions_per_client < 0:
            raise ConfigError("process counts cannot be negative")
        if self.target_shards < self.replication:
            raise ConfigError(
                f"target_shards={self.target_shards} below "
                f"replication={self.replication}"
            )
        if not 0 < self.scale_at_frac < self.post_frac <= 1:
            raise ConfigError(
                "need 0 < scale_at_frac < post_frac <= 1, got "
                f"{self.scale_at_frac}/{self.post_frac}"
            )
        if not 0 <= self.warmup_ns < self.scale_at_frac * self.duration_ns:
            raise ConfigError("warmup must end before the topology change")
        if self.distribution not in ("uniform", "zipfian"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")
        if self.fault_kind not in ELASTIC_FAULT_KINDS:
            raise ConfigError(
                f"unknown fault_kind {self.fault_kind!r}; pick from "
                f"{ELASTIC_FAULT_KINDS}"
            )
        if self.fault_windows < 0:
            raise ConfigError("fault_windows cannot be negative")
        if self.txn_sessions_per_client:
            if not 1 <= self.txn_size <= self.n_objects:
                raise ConfigError("txn_size must be in [1, n_objects]")
            if not 0 <= self.writes_per_txn <= self.txn_size:
                raise ConfigError("writes_per_txn must be in [0, txn_size]")
        self.rebalance_config().validate()
        self.to_sharded().validate()

    def to_sharded(self) -> ShardedConfig:
        return ShardedConfig(
            n_shards=self.n_shards,
            max_shards=max(self.n_shards, self.target_shards),
            n_clients=self.n_clients,
            replication=self.replication,
            mechanism=self.mechanism,
            object_size=self.object_size,
            n_objects=self.n_objects,
            version_bits=self.version_bits,
            vnodes=self.vnodes,
            seed=self.seed,
            fallback_after_ns=self.fallback_after_ns,
            costs=self.costs,
        )

    def rebalance_config(self) -> RebalanceConfig:
        return RebalanceConfig(
            interval_ns=self.rebalance_interval_ns,
            hot_share=self.hot_share,
            cool_share=self.cool_share,
            max_extra=self.max_extra_replicas,
            min_reads=self.min_interval_reads,
        )

    def fault_schedule(self) -> FaultSchedule:
        """Gray/straggler/partition windows over the *starting* member
        shards, overlapping the migration window by default."""
        if self.fault_kind == "none" or self.fault_windows == 0:
            return FaultSchedule()
        first = self.fault_first_frac * self.duration_ns
        width = self.fault_width_frac * self.duration_ns
        gap = self.fault_gap_frac * self.duration_ns
        shards = range(self.n_shards)
        if self.fault_kind == "partition":
            return FaultSchedule.partition_cycles(
                [(None, shard) for shard in shards],
                first_ns=first,
                width_ns=width,
                gap_ns=gap,
                count=self.fault_windows,
                drop=self.partition_drop,
            )
        return FaultSchedule.gray_cycles(
            list(shards),
            first_ns=first,
            width_ns=width,
            gap_ns=gap,
            count=self.fault_windows,
            multiplier=self.gray_multiplier,
            kind=self.fault_kind,
        )


@dataclass
class ElasticResult:
    config: ElasticConfig
    #: Completed reads per phase (pre / migration / post windows).
    pre_reads: int
    mid_reads: int
    post_reads: int
    pre_writes: int
    mid_writes: int
    post_writes: int
    #: Read latency samples per phase (the mid/pre p95 ratio is the
    #: tail blip headline).
    pre_latency: Samples
    mid_latency: Samples
    post_latency: Samples
    #: Reads completed while a topology change was in flight.
    reads_during_migration: int
    commits: int
    undetected_violations: int
    torn_reads_observed: int
    retries: int
    write_retries: int
    busy_rejects: int
    fenced_rejects: int
    reshard_redirects: int
    crash_redirects: int
    reshard: ReshardStats
    hot_keys_promoted: int
    shard_rows: List[Dict[str, float]]
    events: List[Tuple[float, str, int]]
    #: Post-window reads of the fresh-target baseline (None when the
    #: config skipped the comparison run).
    baseline_post_reads: Optional[int]

    @property
    def convergence_ratio(self) -> float:
        """Post-window throughput relative to a run that *started* at
        the target shard count (1.0 = fully converged)."""
        if not self.baseline_post_reads:
            return math.nan
        return self.post_reads / self.baseline_post_reads

    @property
    def tail_blip(self) -> float:
        """Mid-migration p95 read latency over pre-migration p95."""
        pre = self.pre_latency.percentile(95.0)
        mid = self.mid_latency.percentile(95.0)
        if not pre or math.isnan(pre) or not mid or math.isnan(mid):
            return math.nan
        return mid / pre

    @property
    def shard_imbalance(self) -> float:
        """Max-over-mean routed reads across *member* shards."""
        routed = [
            row["reads_routed"]
            for row in self.shard_rows
            if row["member"]
        ]
        mean = sum(routed) / len(routed) if routed else 0.0
        if mean <= 0:
            return math.nan
        return max(routed) / mean


def run_elastic(cfg: ElasticConfig) -> ElasticResult:
    """Build the service + reshard manager (+ optional txn layer and
    fault injector) and run the phased closed-loop mix."""
    cfg.validate()
    kv = ShardedKV(cfg.to_sharded())
    manager = ReshardManager(
        kv,
        handoff_fixed_ns=cfg.handoff_fixed_ns,
        drain_ns=cfg.drain_ns,
    )
    txns = TxnManager(kv) if cfg.txn_sessions_per_client else None
    faults = FaultInjector(kv.cluster, cfg.fault_schedule(), kv=kv)
    sim = kv.cluster.sim
    t_end = cfg.duration_ns
    t_scale = cfg.scale_at_frac * cfg.duration_ns
    t_post = cfg.post_frac * cfg.duration_ns

    if cfg.target_shards > cfg.n_shards:
        manager.scale_out(cfg.target_shards - cfg.n_shards, at_ns=t_scale)
    elif cfg.target_shards < cfg.n_shards:
        manager.scale_in(
            list(range(cfg.target_shards, cfg.n_shards)), at_ns=t_scale
        )
    if cfg.rebalance:
        sim.call_at(
            cfg.warmup_ns,
            lambda: manager.start_rebalancer(
                cfg.rebalance_config(), until_ns=t_end
            ),
        )

    phase_reads = {"pre": 0, "mid": 0, "post": 0}
    phase_writes = {"pre": 0, "mid": 0, "post": 0}
    latency = {
        "pre": Samples("elastic_read_pre_ns"),
        "mid": Samples("elastic_read_mid_ns"),
        "post": Samples("elastic_read_post_ns"),
    }
    migration_reads = [0]
    commits = [0]

    def phase() -> Optional[str]:
        if sim.now < cfg.warmup_ns or sim.now > t_end:
            return None
        if sim.now < t_scale:
            return "pre"
        if sim.now < t_post:
            return "mid"
        return "post"

    def picker(client: int, role: str, thread: int):
        if cfg.distribution == "zipfian":
            return ZipfianPicker(
                range(cfg.n_objects),
                cfg.seed,
                theta=cfg.zipf_theta,
                label=(role, client, thread),
            )
        return UniformPicker(
            range(cfg.n_objects), cfg.seed, label=(role, client, thread)
        )

    def reader_proc(session, client: int, thread: int):
        pick = picker(client, "reader", thread)
        while sim.now < t_end:
            key = kv.key_name(pick.pick())
            t0 = sim.now
            ok = yield from session.lookup(key, t_end)
            p = phase()
            if ok and p:
                phase_reads[p] += 1
                latency[p].add(sim.now - t0)
                if manager.any_migrating():
                    migration_reads[0] += 1

    def writer_proc(client: int, thread: int):
        pick = picker(client, "writer", thread)
        while sim.now < t_end:
            key = kv.key_name(pick.pick())
            ack = yield kv.put(client, key, t_end)
            p = phase()
            if ack is not None and p:
                phase_writes[p] += 1
            yield sim.timeout(cfg.write_pause_ns)

    def txn_proc(session, client: int, thread: int):
        pick = picker(client, "txn", thread)
        while sim.now < t_end:
            chosen: List[int] = []
            while len(chosen) < cfg.txn_size:
                idx = pick.pick()
                if idx not in chosen:
                    chosen.append(idx)
            keys = [kv.key_name(idx) for idx in chosen]
            outcome = yield from session.run(
                keys, keys[: cfg.writes_per_txn], t_end
            )
            if phase():
                commits[0] += int(outcome.committed)

    for client in range(kv.cfg.clients):
        for thread in range(cfg.readers_per_client):
            sim.process(reader_proc(kv.reader_session(client), client, thread))
        for thread in range(cfg.writers_per_client):
            sim.process(writer_proc(client, thread))
        if txns is not None:
            for thread in range(cfg.txn_sessions_per_client):
                sim.process(txn_proc(txns.session(client), client, thread))

    sim.run()
    manager.stop_rebalancer()

    baseline_post: Optional[int] = None
    if cfg.compare_baseline and cfg.target_shards != cfg.n_shards:
        fresh = replace(
            cfg,
            n_shards=cfg.target_shards,
            target_shards=cfg.target_shards,
            compare_baseline=False,
        )
        baseline_post = run_elastic(fresh).post_reads

    reader_stats = kv.all_reader_stats()
    write_stats = kv.write_stats
    return ElasticResult(
        config=cfg,
        pre_reads=phase_reads["pre"],
        mid_reads=phase_reads["mid"],
        post_reads=phase_reads["post"],
        pre_writes=phase_writes["pre"],
        mid_writes=phase_writes["mid"],
        post_writes=phase_writes["post"],
        pre_latency=latency["pre"],
        mid_latency=latency["mid"],
        post_latency=latency["post"],
        reads_during_migration=migration_reads[0],
        commits=commits[0],
        undetected_violations=sum(
            s.undetected_violations for s in reader_stats
        ),
        torn_reads_observed=(
            txns.merged_stats().torn_reads_observed if txns else 0
        ),
        retries=sum(s.retries for s in reader_stats),
        write_retries=sum(ws.write_retries for ws in write_stats),
        busy_rejects=sum(ws.busy_rejects for ws in write_stats),
        fenced_rejects=sum(ws.fenced_rejects for ws in write_stats),
        reshard_redirects=sum(ws.reshard_redirects for ws in write_stats),
        crash_redirects=sum(ws.crash_redirects for ws in write_stats),
        reshard=manager.stats,
        hot_keys_promoted=len(kv.hot_replicas),
        shard_rows=kv.shard_load(),
        events=list(manager.events),
        baseline_post_reads=baseline_post,
    )


# ----------------------------------------------------------------------
# registered experiments
# ----------------------------------------------------------------------

#: Mechanisms whose consumed reads must never be torn (mirrors
#: :data:`repro.workloads.availability.DETECTING_VARIANTS`).
DETECTING_VARIANTS = (
    ("sabre", "sabre"),
    ("percl", "percl_versions"),
    ("checksum", "checksum"),
    ("drtm", "drtm_lock"),
)

ELASTIC_HEADERS = (
    "target_shards",
    *(f"{label}_violations" for label, _ in DETECTING_VARIANTS),
    *(f"{label}_convergence" for label, _ in DETECTING_VARIANTS),
    *(f"{label}_migrated" for label, _ in DETECTING_VARIANTS),
    *(f"{label}_post_reads" for label, _ in DETECTING_VARIANTS),
)


def _elastic_cfg_from_params(p, scale: float) -> ElasticConfig:
    return ElasticConfig(
        mechanism=p["mechanism"],
        n_shards=p["n_shards"],
        target_shards=p["target_shards"],
        n_clients=p["n_clients"],
        readers_per_client=p["readers_per_client"],
        writers_per_client=p["writers_per_client"],
        txn_sessions_per_client=p["txn_sessions_per_client"],
        replication=p["replication"],
        object_size=p["object_size"],
        n_objects=p["n_objects"],
        duration_ns=scaled_duration(p["duration_ns"], scale),
        warmup_ns=p["warmup_ns"],
        fallback_after_ns=p["fallback_after_ns"],
        distribution=p["distribution"],
        rebalance=p["rebalance"],
        max_extra_replicas=p["max_extra_replicas"],
        compare_baseline=p["compare_baseline"],
        seed=p["seed"],
    )


def _elastic_point(ctx) -> Dict[str, float]:
    result = run_elastic(_elastic_cfg_from_params(ctx.params, ctx.scale))
    v = ctx.variant
    return {
        f"{v}_violations": result.undetected_violations,
        f"{v}_convergence": result.convergence_ratio,
        f"{v}_migrated": result.reshard.keys_migrated,
        f"{v}_post_reads": result.post_reads,
        f"{v}_tail_blip": result.tail_blip,
        f"{v}_redirects": result.reshard_redirects,
    }


_ELASTIC_DEFAULTS = {
    "mechanism": "sabre",
    "n_shards": 4,
    "target_shards": 8,
    "n_clients": 4,
    "readers_per_client": 2,
    "writers_per_client": 1,
    "txn_sessions_per_client": 0,
    "replication": 2,
    "object_size": 512,
    "n_objects": 96,
    "duration_ns": 240_000.0,
    "warmup_ns": 5_000.0,
    "fallback_after_ns": 0.0,
    "distribution": "uniform",
    "rebalance": False,
    "max_extra_replicas": 2,
    "compare_baseline": True,
}


ELASTIC_SCALING_SPEC = register(
    ExperimentSpec(
        name="elastic_scaling",
        description=(
            "Scale the deployment 4 -> 8 shards mid-run: zero torn "
            "reads through the migration, bounded tail blip, post "
            "throughput converging to the fresh-8-shard baseline"
        ),
        axes={"target_shards": (8,)},
        variants=tuple(
            Variant(label, {"mechanism": name})
            for label, name in DETECTING_VARIANTS
        ),
        defaults={**_ELASTIC_DEFAULTS, "seed": 43},
        headers=ELASTIC_HEADERS,
        point_fn=_elastic_point,
        base_seed=43,
        qa_checks=tuple(
            QaCheck(f"{label}_violations", agg="max", hi=0.0)
            for label, _ in DETECTING_VARIANTS
        ),
    )
)


HOTKEY_HEADERS = (
    "max_extra_replicas",
    "reads",
    "shard_imbalance",
    "hot_promotions",
    "hot_demotions",
    "hot_keys_promoted",
    "undetected_violations",
)


def _hotkey_point(ctx) -> Dict[str, float]:
    p = dict(ctx.params)
    cfg = _elastic_cfg_from_params(p, ctx.scale)
    result = run_elastic(cfg)
    return {
        "reads": result.pre_reads + result.mid_reads + result.post_reads,
        "shard_imbalance": result.shard_imbalance,
        "hot_promotions": result.reshard.hot_promotions,
        "hot_demotions": result.reshard.hot_demotions,
        "hot_keys_promoted": result.hot_keys_promoted,
        "undetected_violations": result.undetected_violations,
    }


HOTKEY_REBALANCE_SPEC = register(
    ExperimentSpec(
        name="hotkey_rebalance",
        description=(
            "Zipfian-head keys gain promoted read replicas via the "
            "rebalance policy loop; shard imbalance drops and no "
            "consumed read is ever torn"
        ),
        axes={"max_extra_replicas": (0, 2)},
        defaults={
            **_ELASTIC_DEFAULTS,
            # No topology change: the policy loop is the event.
            "target_shards": 4,
            "distribution": "zipfian",
            "rebalance": True,
            "compare_baseline": False,
            "n_objects": 64,
            "seed": 47,
        },
        headers=HOTKEY_HEADERS,
        point_fn=_hotkey_point,
        base_seed=47,
        qa_checks=(QaCheck("undetected_violations", agg="max", hi=0.0),),
    )
)

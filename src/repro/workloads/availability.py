"""Availability workloads: the sharded service under shard crashes.

Closed-loop readers, writers, and small read-modify-write transactions
drive :class:`~repro.objstore.sharded.ShardedKV` while a
:class:`~repro.objstore.failover.FailoverManager` executes a
crash/recover cycle plan (one shard down at a time, round-robin).  The
workload meters two things the contention-only suites cannot:

* **availability** — reads and writes keep completing *while a primary
  is down*, served by the promoted backups (``reads_during_outage`` /
  ``writes_during_outage``), and transactions keep committing around
  forced ``abort_crash`` aborts;
* **atomicity across promotions** — every consumed read still passes
  the ground-truth torn-read audit, so ``undetected_violations`` and
  ``torn_reads_observed`` must stay zero for every detecting protocol
  even when reads cross a crash boundary onto a backup replica or a
  freshly re-synced shard.

Two experiments register with the framework:

* ``failover_availability`` — reads/writes under SABRes across a
  growing number of crash/recovery cycles on a 4-shard deployment;
  shows reads continuing (via promoted backups) while a primary is
  down.
* ``failover_atomicity`` — every detecting mechanism through >= 3
  crash/recovery cycles at 4 shards: zero undetected violations, zero
  transaction-side torn reads, byte-identical under parallel sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.experiments import ExperimentSpec, Variant, register
from repro.faults import FaultInjector, FaultSchedule
from repro.harness.report import scaled_duration
from repro.objstore.failover import FailoverManager, FailurePlan
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager, TxnStats
from repro.sim.stats import Samples
from repro.workloads.generators import UniformPicker, ZipfianPicker

#: Fault kinds a mix config can schedule (beyond the crash cycles).
MIX_FAULT_KINDS = ("none", "gray", "straggler", "partition")


@dataclass
class FailoverMixConfig:
    """One failover run: a mixed read/write/txn load plus a cycle plan.

    The crash schedule is expressed as *fractions* of ``duration_ns``
    (``first_crash_frac``, ``downtime_frac``, ``uptime_frac``) so the
    same config scales with ``--scale`` sweeps without the plan falling
    off the end of the run."""

    mechanism: str = "sabre"
    n_shards: int = 4
    n_clients: int = 0  # 0 = one client node per shard
    readers_per_client: int = 2
    writers_per_client: int = 1
    txn_sessions_per_client: int = 1
    txn_size: int = 3
    writes_per_txn: int = 1
    replication: int = 2
    object_size: int = 512
    n_objects: int = 64
    duration_ns: float = 200_000.0
    warmup_ns: float = 10_000.0
    cycles: int = 3
    first_crash_frac: float = 0.15
    downtime_frac: float = 0.12
    uptime_frac: float = 0.10
    write_pause_ns: float = 150.0
    fallback_after_ns: float = 0.0
    seed: int = 1
    version_bits: int = 16
    vnodes: int = 64
    #: Key popularity: ``uniform`` or ``zipfian`` (the alias-table
    #: generator; hot keys make fault windows hurt more).
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    #: Fault lane beyond crash cycles: ``none``, ``gray``,
    #: ``straggler``, or ``partition`` windows round-robining over the
    #: shards, expressed as fractions of ``duration_ns`` like the crash
    #: schedule.
    fault_kind: str = "none"
    fault_windows: int = 0
    fault_first_frac: float = 0.2
    fault_width_frac: float = 0.15
    fault_gap_frac: float = 0.05
    gray_multiplier: float = 8.0
    partition_drop: bool = True
    partition_latency_mult: float = 1.0
    partition_bw_mult: float = 1.0
    #: Clock skew applied to every *client* node's lease view (shards
    #: stay synchronous): clients observe crashes late and their RPC
    #: watchdogs stretch accordingly.
    clock_skew_ns: float = 0.0
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)

    def validate(self) -> None:
        if self.readers_per_client < 1:
            raise ConfigError("need at least one reader per client")
        if self.writers_per_client < 0 or self.txn_sessions_per_client < 0:
            raise ConfigError("process counts cannot be negative")
        if self.cycles < 0:
            raise ConfigError(f"cycles cannot be negative: {self.cycles}")
        if self.replication < 2 and self.cycles > 0:
            raise ConfigError(
                "failover runs need replication >= 2 (a crashed singleton "
                "has nothing to promote)"
            )
        if not 0 < self.first_crash_frac < 1:
            raise ConfigError("first_crash_frac must be in (0, 1)")
        if self.downtime_frac <= 0 or self.uptime_frac < 0:
            raise ConfigError(
                "downtime_frac must be positive, uptime_frac non-negative"
            )
        if self.warmup_ns < 0 or self.warmup_ns >= self.duration_ns:
            raise ConfigError("warmup must end before the run does")
        if not 1 <= self.txn_size <= self.n_objects:
            raise ConfigError("txn_size must be in [1, n_objects]")
        if not 0 <= self.writes_per_txn <= self.txn_size:
            raise ConfigError("writes_per_txn must be in [0, txn_size]")
        if self.plan().end_ns() > self.duration_ns:
            raise ConfigError(
                "crash/recover plan extends past the run; shrink cycles or "
                "the schedule fractions"
            )
        if self.distribution not in ("uniform", "zipfian"):
            raise ConfigError(
                f"unknown distribution {self.distribution!r}"
            )
        if self.fault_kind not in MIX_FAULT_KINDS:
            raise ConfigError(
                f"unknown fault_kind {self.fault_kind!r}; pick from "
                f"{MIX_FAULT_KINDS}"
            )
        if self.fault_windows < 0:
            raise ConfigError(
                f"fault_windows cannot be negative: {self.fault_windows}"
            )
        if self.clock_skew_ns < 0:
            raise ConfigError(
                f"clock_skew_ns cannot be negative: {self.clock_skew_ns}"
            )
        if self.fault_schedule().end_ns() > self.duration_ns:
            raise ConfigError(
                "fault schedule extends past the run; shrink fault_windows "
                "or the window fractions"
            )
        self.to_sharded().validate()

    def to_sharded(self) -> ShardedConfig:
        return ShardedConfig(
            n_shards=self.n_shards,
            n_clients=self.n_clients,
            replication=self.replication,
            mechanism=self.mechanism,
            object_size=self.object_size,
            n_objects=self.n_objects,
            version_bits=self.version_bits,
            vnodes=self.vnodes,
            seed=self.seed,
            fallback_after_ns=self.fallback_after_ns,
            costs=self.costs,
        )

    def plan(self) -> FailurePlan:
        return FailurePlan.cycles(
            range(self.n_shards),
            first_crash_ns=self.first_crash_frac * self.duration_ns,
            downtime_ns=self.downtime_frac * self.duration_ns,
            uptime_ns=self.uptime_frac * self.duration_ns,
            count=self.cycles,
        )

    def fault_schedule(self, n_nodes: int = 0) -> FaultSchedule:
        """The gray/straggler/partition windows (fractions of
        ``duration_ns``, like :meth:`plan`) plus — when ``n_nodes`` is
        known — the client clock-skew map.  Shard node ids are
        ``0..n_shards-1``; partition windows isolate one shard at a
        time (every ingress link dropped)."""
        schedule = FaultSchedule()
        if self.fault_kind != "none" and self.fault_windows > 0:
            first = self.fault_first_frac * self.duration_ns
            width = self.fault_width_frac * self.duration_ns
            gap = self.fault_gap_frac * self.duration_ns
            shards = range(self.n_shards)
            if self.fault_kind == "partition":
                schedule = FaultSchedule.partition_cycles(
                    [(None, shard) for shard in shards],
                    first_ns=first,
                    width_ns=width,
                    gap_ns=gap,
                    count=self.fault_windows,
                    drop=self.partition_drop,
                    latency_mult=self.partition_latency_mult,
                    bw_mult=self.partition_bw_mult,
                )
            else:
                schedule = FaultSchedule.gray_cycles(
                    list(shards),
                    first_ns=first,
                    width_ns=width,
                    gap_ns=gap,
                    count=self.fault_windows,
                    multiplier=self.gray_multiplier,
                    kind=self.fault_kind,
                )
        if self.clock_skew_ns > 0 and n_nodes > self.n_shards:
            skews = {
                node: self.clock_skew_ns
                for node in range(self.n_shards, n_nodes)
            }
            schedule = schedule.merged(FaultSchedule((), skews))
        return schedule


@dataclass
class FailoverResult:
    config: FailoverMixConfig
    read_latency: Samples
    reads_completed: int
    reads_during_outage: int
    writes_completed: int
    writes_during_outage: int
    commits: int
    crash_aborts: int
    lock_aborts: int
    validation_aborts: int
    retries: int
    write_retries: int
    busy_rejects: int
    fenced_rejects: int
    crash_redirects: int
    undetected_violations: int
    torn_reads_observed: int
    crashes: int
    recoveries: int
    promotions: int
    failed_rpcs: int
    failed_transfers: int
    resynced_objects: int
    shard_rows: List[Dict[str, float]]
    txn_rows: List[Dict[str, int]]
    #: Gray/straggler/partition lane counters (all zero when the
    #: config schedules no fault windows).
    fault_windows: int
    reads_during_fault: int
    writes_during_fault: int
    watchdog_rearms: int
    partition_refusals: int

    @property
    def outage_read_share(self) -> float:
        """Share of completed reads served while a shard was down —
        the availability headline (0 when the plan has no cycles)."""
        if self.reads_completed <= 0:
            return math.nan
        return self.reads_during_outage / self.reads_completed

    @property
    def fault_read_share(self) -> float:
        """Share of completed reads served while a gray/straggler/
        partition window was open — the degraded-mode availability
        headline."""
        if self.reads_completed <= 0:
            return math.nan
        return self.reads_during_fault / self.reads_completed


def run_failover_mix(cfg: FailoverMixConfig) -> FailoverResult:
    """Build the service + txn layer + fault injector and run the
    closed-loop mix to ``duration_ns``."""
    cfg.validate()
    kv = ShardedKV(cfg.to_sharded())
    manager = TxnManager(kv)
    injector = FailoverManager(kv, cfg.plan())
    faults = FaultInjector(
        kv.cluster, cfg.fault_schedule(len(kv.cluster.nodes)), kv=kv
    )
    sim = kv.cluster.sim
    t_end = cfg.duration_ns

    read_latency = Samples("failover_read_ns")
    window = {
        "reads": 0,
        "outage_reads": 0,
        "fault_reads": 0,
        "writes": 0,
        "outage_writes": 0,
        "fault_writes": 0,
        "commits": 0,
        "crash_aborts": 0,
        "lock_aborts": 0,
        "validation_aborts": 0,
    }

    def in_window() -> bool:
        return cfg.warmup_ns <= sim.now <= t_end

    def picker(client: int, role: str, thread: int):
        if cfg.distribution == "zipfian":
            return ZipfianPicker(
                range(cfg.n_objects),
                cfg.seed,
                theta=cfg.zipf_theta,
                label=(role, client, thread),
            )
        return UniformPicker(
            range(cfg.n_objects), cfg.seed, label=(role, client, thread)
        )

    def reader_proc(session, client: int, thread: int):
        pick = picker(client, "reader", thread)
        while sim.now < t_end:
            key = kv.key_name(pick.pick())
            t0 = sim.now
            ok = yield from session.lookup(key, t_end)
            if ok and in_window():
                read_latency.add(sim.now - t0)
                window["reads"] += 1
                if injector.any_down():
                    window["outage_reads"] += 1
                if faults.any_active():
                    window["fault_reads"] += 1

    def writer_proc(client: int, thread: int):
        pick = picker(client, "writer", thread)
        while sim.now < t_end:
            key = kv.key_name(pick.pick())
            ack = yield kv.put(client, key, t_end)
            if ack is not None and in_window():
                window["writes"] += 1
                if injector.any_down():
                    window["outage_writes"] += 1
                if faults.any_active():
                    window["fault_writes"] += 1
            yield sim.timeout(cfg.write_pause_ns)

    def txn_proc(session, client: int, thread: int):
        pick = picker(client, "txn", thread)
        while sim.now < t_end:
            chosen: List[int] = []
            while len(chosen) < cfg.txn_size:
                idx = pick.pick()
                if idx not in chosen:
                    chosen.append(idx)
            keys = [kv.key_name(idx) for idx in chosen]
            outcome = yield from session.run(
                keys, keys[: cfg.writes_per_txn], t_end
            )
            if in_window():
                window["commits"] += int(outcome.committed)
                window["crash_aborts"] += outcome.crash_aborts
                window["lock_aborts"] += outcome.lock_aborts
                window["validation_aborts"] += outcome.validation_aborts

    for client in range(kv.cfg.clients):
        for thread in range(cfg.readers_per_client):
            sim.process(reader_proc(kv.reader_session(client), client, thread))
        for thread in range(cfg.writers_per_client):
            sim.process(writer_proc(client, thread))
        for thread in range(cfg.txn_sessions_per_client):
            sim.process(txn_proc(manager.session(client), client, thread))

    sim.run()

    reader_stats = kv.all_reader_stats()
    write_stats = kv.write_stats
    merged: TxnStats = manager.merged_stats()
    fo = injector.stats
    return FailoverResult(
        config=cfg,
        read_latency=read_latency,
        reads_completed=window["reads"],
        reads_during_outage=window["outage_reads"],
        writes_completed=window["writes"],
        writes_during_outage=window["outage_writes"],
        commits=window["commits"],
        crash_aborts=window["crash_aborts"],
        lock_aborts=window["lock_aborts"],
        validation_aborts=window["validation_aborts"],
        retries=sum(s.retries for s in reader_stats),
        write_retries=sum(ws.write_retries for ws in write_stats),
        busy_rejects=sum(ws.busy_rejects for ws in write_stats),
        fenced_rejects=sum(ws.fenced_rejects for ws in write_stats),
        crash_redirects=sum(ws.crash_redirects for ws in write_stats),
        undetected_violations=sum(
            s.undetected_violations for s in reader_stats
        ),
        torn_reads_observed=merged.torn_reads_observed,
        crashes=fo.crashes,
        recoveries=fo.recoveries,
        promotions=fo.promotions,
        failed_rpcs=fo.failed_rpcs,
        failed_transfers=fo.failed_transfers,
        resynced_objects=fo.resynced_objects,
        shard_rows=kv.shard_load(),
        txn_rows=manager.txn_rows(),
        fault_windows=(
            faults.stats.gray_windows
            + faults.stats.straggler_windows
            + faults.stats.partition_windows
        ),
        reads_during_fault=window["fault_reads"],
        writes_during_fault=window["fault_writes"],
        watchdog_rearms=sum(
            e.watchdog_rearms for e in kv.all_endpoints()
        ),
        partition_refusals=kv.cluster.fabric.partition_refusals,
    )


# ----------------------------------------------------------------------
# registered experiments
# ----------------------------------------------------------------------

#: Mechanisms whose consumed reads must never be torn (the
#: ``remote_read`` baseline is excluded by design: it tears).
DETECTING_VARIANTS = (
    ("sabre", "sabre"),
    ("percl", "percl_versions"),
    ("checksum", "checksum"),
    ("drtm", "drtm_lock"),
)

AVAILABILITY_HEADERS = (
    "cycles",
    "reads",
    "reads_during_outage",
    "outage_read_share",
    "writes",
    "writes_during_outage",
    "commits",
    "crash_aborts",
    "crash_redirects",
    "promotions",
    "recoveries",
    "undetected_violations",
)

ATOMICITY_HEADERS = (
    "cycles",
    *(f"{label}_violations" for label, _ in DETECTING_VARIANTS),
    *(f"{label}_torn_reads" for label, _ in DETECTING_VARIANTS),
    *(f"{label}_reads" for label, _ in DETECTING_VARIANTS),
)


def _cfg_from_params(p, scale: float) -> FailoverMixConfig:
    return FailoverMixConfig(
        mechanism=p["mechanism"],
        n_shards=p["n_shards"],
        readers_per_client=p["readers_per_client"],
        writers_per_client=p["writers_per_client"],
        txn_sessions_per_client=p["txn_sessions_per_client"],
        replication=p["replication"],
        object_size=p["object_size"],
        n_objects=p["n_objects"],
        duration_ns=scaled_duration(p["duration_ns"], scale),
        warmup_ns=p["warmup_ns"],
        cycles=p["cycles"],
        seed=p["seed"],
    )


def _availability_point(ctx) -> Dict[str, float]:
    result = run_failover_mix(_cfg_from_params(ctx.params, ctx.scale))
    return {
        "reads": result.reads_completed,
        "reads_during_outage": result.reads_during_outage,
        "outage_read_share": result.outage_read_share,
        "writes": result.writes_completed,
        "writes_during_outage": result.writes_during_outage,
        "commits": result.commits,
        "crash_aborts": result.crash_aborts,
        "crash_redirects": result.crash_redirects,
        "promotions": result.promotions,
        "recoveries": result.recoveries,
        "undetected_violations": result.undetected_violations,
    }


FAILOVER_AVAILABILITY_SPEC = register(
    ExperimentSpec(
        name="failover_availability",
        description=(
            "Reads keep flowing through promoted backups while primaries "
            "crash and recover"
        ),
        axes={"cycles": (0, 1, 3)},
        defaults={
            "mechanism": "sabre",
            "n_shards": 4,
            "readers_per_client": 2,
            "writers_per_client": 1,
            "txn_sessions_per_client": 1,
            "replication": 2,
            "object_size": 512,
            "n_objects": 64,
            "duration_ns": 200_000.0,
            "warmup_ns": 10_000.0,
            "seed": 29,
        },
        headers=AVAILABILITY_HEADERS,
        point_fn=_availability_point,
        base_seed=29,
    )
)


def _atomicity_point(ctx) -> Dict[str, float]:
    result = run_failover_mix(_cfg_from_params(ctx.params, ctx.scale))
    v = ctx.variant
    return {
        f"{v}_violations": result.undetected_violations,
        f"{v}_torn_reads": result.torn_reads_observed,
        f"{v}_reads": result.reads_completed,
        f"{v}_crash_aborts": result.crash_aborts,
        f"{v}_promotions": result.promotions,
    }


FAULT_HEADERS = (
    "fault_windows",
    "reads",
    "reads_during_fault",
    "fault_read_share",
    "writes",
    "writes_during_fault",
    "commits",
    "watchdog_rearms",
    "partition_refusals",
    "crash_redirects",
    "undetected_violations",
)

#: Defaults shared by the fault-injection specs: the flagship 4-shard
#: deployment under the zipfian (alias-table) mix, no crash cycles —
#: the faults are the event under study.
_FAULT_SPEC_DEFAULTS = {
    "mechanism": "sabre",
    "n_shards": 4,
    "readers_per_client": 2,
    "writers_per_client": 1,
    "txn_sessions_per_client": 1,
    "replication": 2,
    "object_size": 512,
    "n_objects": 64,
    "duration_ns": 200_000.0,
    "warmup_ns": 10_000.0,
    "cycles": 0,
    "distribution": "zipfian",
    "gray_multiplier": 8.0,
    "partition_latency_mult": 1.0,
    "partition_bw_mult": 1.0,
    "clock_skew_ns": 0.0,
    "fallback_after_ns": 0.0,
}


def _fault_cfg_from_params(p, scale: float, fault_kind: str) -> FailoverMixConfig:
    return FailoverMixConfig(
        mechanism=p["mechanism"],
        n_shards=p["n_shards"],
        readers_per_client=p["readers_per_client"],
        writers_per_client=p["writers_per_client"],
        txn_sessions_per_client=p["txn_sessions_per_client"],
        replication=p["replication"],
        object_size=p["object_size"],
        n_objects=p["n_objects"],
        duration_ns=scaled_duration(p["duration_ns"], scale),
        warmup_ns=p["warmup_ns"],
        cycles=p["cycles"],
        seed=p["seed"],
        distribution=p["distribution"],
        fault_kind=fault_kind if p["fault_windows"] else "none",
        fault_windows=p["fault_windows"],
        gray_multiplier=p["gray_multiplier"],
        partition_latency_mult=p["partition_latency_mult"],
        partition_bw_mult=p["partition_bw_mult"],
        clock_skew_ns=p["clock_skew_ns"],
        fallback_after_ns=p["fallback_after_ns"],
    )


def _fault_point(ctx, fault_kind: str) -> Dict[str, float]:
    result = run_failover_mix(
        _fault_cfg_from_params(ctx.params, ctx.scale, fault_kind)
    )
    return {
        "fault_windows": result.fault_windows,
        "reads": result.reads_completed,
        "reads_during_fault": result.reads_during_fault,
        "fault_read_share": result.fault_read_share,
        "writes": result.writes_completed,
        "writes_during_fault": result.writes_during_fault,
        "commits": result.commits,
        "watchdog_rearms": result.watchdog_rearms,
        "partition_refusals": result.partition_refusals,
        "crash_redirects": result.crash_redirects,
        "undetected_violations": result.undetected_violations,
    }


GRAY_AVAILABILITY_SPEC = register(
    ExperimentSpec(
        name="gray_availability",
        description=(
            "Reads, writes, and commits keep flowing while shards turn "
            "gray (slow-but-alive service-time multipliers)"
        ),
        axes={"fault_windows": (0, 2, 4)},
        defaults={**_FAULT_SPEC_DEFAULTS, "seed": 37},
        headers=FAULT_HEADERS,
        point_fn=lambda ctx: _fault_point(ctx, "gray"),
        base_seed=37,
    )
)


PARTITION_AVAILABILITY_SPEC = register(
    ExperimentSpec(
        name="partition_availability",
        description=(
            "Shards are isolated by drop windows one at a time; new "
            "conversations are refused, in-flight ones drain, and no "
            "consumed read is ever torn"
        ),
        axes={"fault_windows": (0, 2, 4)},
        defaults={
            **_FAULT_SPEC_DEFAULTS,
            "seed": 41,
            # Readers walk to a serving backup when the primary's
            # window refuses them.
            "fallback_after_ns": 1_500.0,
        },
        headers=FAULT_HEADERS,
        point_fn=lambda ctx: _fault_point(ctx, "partition"),
        base_seed=41,
    )
)


FAILOVER_ATOMICITY_SPEC = register(
    ExperimentSpec(
        name="failover_atomicity",
        description=(
            "Detecting mechanisms consume zero torn reads across "
            "crash/promotion/re-sync boundaries"
        ),
        axes={"cycles": (3,)},
        variants=tuple(
            Variant(label, {"mechanism": name})
            for label, name in DETECTING_VARIANTS
        ),
        defaults={
            "mechanism": "sabre",
            "n_shards": 4,
            "readers_per_client": 2,
            "writers_per_client": 1,
            "txn_sessions_per_client": 1,
            "replication": 2,
            "object_size": 512,
            "n_objects": 32,
            "duration_ns": 200_000.0,
            "warmup_ns": 10_000.0,
            "seed": 31,
        },
        headers=ATOMICITY_HEADERS,
        point_fn=_atomicity_point,
        base_seed=31,
    )
)

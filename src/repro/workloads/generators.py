"""Object-size ladders and access-pattern generators from §6/§7."""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence

from repro.common.rng import make_rng

#: Fig. 1 / Fig. 9 object sizes (bytes).
FIG1_SIZES: Sequence[int] = (128, 256, 512, 1024, 2048, 4096, 8192)
#: Fig. 7 object sizes (starts at one cache block).
FIG7_SIZES: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096, 8192)
#: Fig. 8 studies three representative sizes.
FIG8_SIZES: Sequence[int] = (128, 1024, 8192)


class UniformPicker:
    """Readers access all objects uniformly at random (§7.2)."""

    def __init__(self, object_ids: Sequence[int], seed: int, label: object = ""):
        if not object_ids:
            raise ValueError("need at least one object")
        self._ids = list(object_ids)
        self._rng = make_rng(seed, "uniform", label)

    def pick(self) -> int:
        return self._rng.choice(self._ids)


class CrewPartition:
    """Concurrent-Reads-Exclusive-Writes (§7.2, after MICA [25]):
    each writer repeatedly updates a predefined disjoint subset."""

    def __init__(self, object_ids: Sequence[int], writers: int):
        if writers < 0:
            raise ValueError(f"writer count must be >= 0: {writers}")
        self._subsets: List[List[int]] = [[] for _ in range(max(writers, 1))]
        if writers > 0:
            for idx, obj in enumerate(object_ids):
                self._subsets[idx % writers].append(obj)

    def subset(self, writer_id: int) -> List[int]:
        return list(self._subsets[writer_id])


class ZipfianPicker:
    """Zipf-distributed object picker.

    The paper's motivation (§1) is large-scale online services, whose
    key popularity is famously skewed; YCSB's default is Zipfian with
    theta ~ 0.99.  Used by the skew ablation to study hot-object
    conflict behavior beyond the paper's uniform microbenchmark.

    Sampling uses a precomputed **alias table** (Vose's method): O(n)
    construction, then O(1) per draw with exactly one ``rng.random()``
    call — replacing the per-sample CDF binary search.  The legacy CDF
    sampler survives behind ``method="cdf"`` as the distributional
    reference the chi-squared tests pin the alias table against (the
    two consume the identical RNG stream but map draws to ranks
    differently, so they agree in distribution, not draw-for-draw).
    """

    def __init__(
        self,
        object_ids: Sequence[int],
        seed: int,
        theta: float = 0.99,
        label: object = "",
        method: str = "alias",
    ):
        if not object_ids:
            raise ValueError("need at least one object")
        if not 0.0 < theta < 2.0:
            raise ValueError(f"theta out of range: {theta}")
        if method not in ("alias", "cdf"):
            raise ValueError(f"unknown sampling method {method!r}")
        self._ids = list(object_ids)
        self._rng = make_rng(seed, "zipfian", theta, label)
        n = len(self._ids)
        weights = [1.0 / math.pow(rank, theta) for rank in range(1, n + 1)]
        total = 0.0
        self._cdf: List[float] = []
        for w in weights:
            total += w
            self._cdf.append(total)
        self._total = total
        self._method = method
        # Vose alias construction: scale each probability by n, split
        # into sub-unit ("small") and super-unit ("large") columns, and
        # let each column donate its excess to fill one small column.
        scaled = [w * n / total for w in weights]
        prob = [0.0] * n
        alias = [0] * n
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[s] = scaled[s]
            alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for i in large:
            prob[i] = 1.0
        for i in small:  # float-residue leftovers: probability ~1
            prob[i] = 1.0
        self._prob = prob
        self._alias = alias

    def pick(self) -> int:
        if self._method == "cdf":
            point = self._rng.random() * self._total
            return self._ids[bisect.bisect_left(self._cdf, point)]
        # One uniform draw supplies both the column and the coin flip.
        u = self._rng.random() * len(self._ids)
        i = int(u)
        if u - i < self._prob[i]:
            return self._ids[i]
        return self._ids[self._alias[i]]

    def hot_fraction(self, top_n: int) -> float:
        """Probability mass on the ``top_n`` most popular objects."""
        if top_n <= 0:
            return 0.0
        top_n = min(top_n, len(self._cdf))
        return self._cdf[top_n - 1] / self._total

"""YCSB-style workloads over the sharded FaRM service.

The Yahoo! Cloud Serving Benchmark (Cooper et al., SoCC'10) is the
standard way to exercise the rack-scale KV services that motivate
SABRes (§1).  This module drives :class:`~repro.objstore.sharded.
ShardedKV` with the three classic core mixes over uniform and Zipfian
key popularity (reusing :mod:`repro.workloads.generators`):

========  ===========  =============================
workload  write share  YCSB description
========  ===========  =============================
A         50 %         update heavy (session store)
B          5 %         read mostly (photo tagging)
C          0 %         read only (user-profile cache)
========  ===========  =============================

Reads are one-sided atomic object reads through whichever
:class:`~repro.workloads.protocols.ReadProtocol` the config names;
writes ship to the primary shard over an RPC and replicate to the
backups.  Every consumed read is audited against ground truth, so
``undetected_violations`` stays the repo-wide safety metric.

Two experiments register with the framework:

* ``ycsb_latency`` — A/B/C x uniform/Zipfian, perCL-versions vs SABRe
  read mechanisms, on a fixed 4-shard deployment.
* ``ycsb_shard_scaling`` — workload A under SABRes while the rack
  grows (1 -> 8 shards, one client node per shard): throughput should
  scale with shard count and the audit must stay clean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.experiments import ExperimentSpec, QaCheck, Variant, register
from repro.harness.report import scaled_duration
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.sim.stats import Samples
from repro.workloads.generators import UniformPicker, ZipfianPicker

#: Core YCSB mixes: workload letter -> write fraction.
YCSB_MIXES: Dict[str, float] = {"A": 0.5, "B": 0.05, "C": 0.0}

DISTRIBUTIONS = ("uniform", "zipfian")


@dataclass
class YcsbConfig:
    """One YCSB run against a sharded deployment."""

    workload: str = "B"
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    mechanism: str = "sabre"
    n_shards: int = 4
    n_clients: int = 0  # 0 = one client node per shard
    readers_per_client: int = 2
    replication: int = 2
    object_size: int = 1024
    n_objects: int = 512
    duration_ns: float = 150_000.0
    warmup_ns: float = 15_000.0
    fallback_after_ns: float = 0.0
    seed: int = 1
    version_bits: int = 16
    vnodes: int = 64
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)

    def validate(self) -> None:
        if self.workload not in YCSB_MIXES:
            raise ConfigError(
                f"unknown YCSB workload {self.workload!r}; "
                f"choose from {sorted(YCSB_MIXES)}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                f"unknown distribution {self.distribution!r}; "
                f"choose from {DISTRIBUTIONS}"
            )
        if not 0.0 < self.zipf_theta < 2.0:
            raise ConfigError(f"zipf_theta must be in (0, 2): {self.zipf_theta}")
        if self.readers_per_client < 1:
            raise ConfigError("need at least one reader per client")
        if self.warmup_ns < 0:
            raise ConfigError("warmup cannot be negative")
        if self.warmup_ns >= self.duration_ns:
            raise ConfigError("warmup must end before the run does")
        self.to_sharded().validate()

    @property
    def write_fraction(self) -> float:
        return YCSB_MIXES[self.workload]

    def to_sharded(self) -> ShardedConfig:
        return ShardedConfig(
            n_shards=self.n_shards,
            n_clients=self.n_clients,
            replication=self.replication,
            mechanism=self.mechanism,
            object_size=self.object_size,
            n_objects=self.n_objects,
            version_bits=self.version_bits,
            vnodes=self.vnodes,
            seed=self.seed,
            fallback_after_ns=self.fallback_after_ns,
            costs=self.costs,
        )


@dataclass
class YcsbResult:
    config: YcsbConfig
    read_latency: Samples
    write_latency: Samples
    reads_completed: int
    writes_completed: int
    read_goodput_gbps: float
    ops_per_us: float
    retries: int
    sabre_aborts: int
    software_conflicts: int
    undetected_violations: int
    fallback_reads: int
    shard_rows: List[Dict[str, float]]

    @property
    def mean_read_ns(self) -> float:
        return self.read_latency.mean

    @property
    def mean_write_ns(self) -> float:
        return self.write_latency.mean

    @property
    def shard_imbalance(self) -> float:
        """Max-over-mean routed reads across shards (1.0 = perfectly
        balanced; grows with Zipfian skew and shard count)."""
        routed = [row["reads_routed"] for row in self.shard_rows]
        mean = sum(routed) / len(routed) if routed else 0.0
        if mean <= 0:
            return math.nan
        return max(routed) / mean


def run_ycsb(cfg: YcsbConfig) -> YcsbResult:
    """Build the sharded service and run the closed-loop YCSB mix."""
    cfg.validate()
    kv = ShardedKV(cfg.to_sharded())
    sim = kv.cluster.sim
    t_end = cfg.duration_ns
    write_frac = cfg.write_fraction

    read_latency = Samples("ycsb_read_ns")
    window = {"writes": 0}

    def picker(client: int, thread: int):
        label = (client, thread)
        ids = range(cfg.n_objects)
        if cfg.distribution == "zipfian":
            return ZipfianPicker(ids, cfg.seed, theta=cfg.zipf_theta, label=label)
        return UniformPicker(ids, cfg.seed, label=label)

    def client_proc(session, client: int, thread: int):
        rng = make_rng(cfg.seed, "ycsb-mix", client, thread)
        pick = picker(client, thread)
        while sim.now < t_end:
            key = kv.key_name(pick.pick())
            t0 = sim.now
            if write_frac > 0.0 and rng.random() < write_frac:
                yield kv.put(session.client_index, key)
                kv.write_latency.add(sim.now - t0)
                if cfg.warmup_ns <= sim.now <= t_end:
                    window["writes"] += 1
            else:
                ok = yield from session.lookup(key, t_end)
                if ok:
                    read_latency.add(sim.now - t0)

    for client in range(kv.cfg.clients):
        for thread in range(cfg.readers_per_client):
            session = kv.reader_session(client)
            sim.process(client_proc(session, client, thread))

    def metering():
        yield sim.timeout(cfg.warmup_ns)
        for stats in kv.all_reader_stats():
            stats.meter.start(sim.now)
        yield sim.timeout(t_end - cfg.warmup_ns)
        for stats in kv.all_reader_stats():
            stats.meter.stop(sim.now)

    sim.process(metering())
    sim.run()

    reader_stats = kv.all_reader_stats()
    window_ns = t_end - cfg.warmup_ns
    bytes_measured = sum(s.meter.bytes_total for s in reader_stats)
    reads_measured = sum(s.meter.ops_total for s in reader_stats)
    shard_rows = kv.shard_load()
    return YcsbResult(
        config=cfg,
        read_latency=read_latency,
        write_latency=kv.write_latency,
        reads_completed=reads_measured,
        writes_completed=window["writes"],
        read_goodput_gbps=bytes_measured / window_ns,
        ops_per_us=(reads_measured + window["writes"]) / window_ns * 1e3,
        retries=sum(s.retries for s in reader_stats),
        sabre_aborts=sum(s.sabre_aborts for s in reader_stats),
        software_conflicts=sum(s.software_conflicts for s in reader_stats),
        undetected_violations=sum(s.undetected_violations for s in reader_stats),
        fallback_reads=sum(s.fallback_reads for s in reader_stats),
        shard_rows=shard_rows,
    )


# ----------------------------------------------------------------------
# registered experiments
# ----------------------------------------------------------------------

LATENCY_HEADERS = (
    "workload",
    "distribution",
    "percl_read_ns",
    "sabre_read_ns",
    "percl_write_ns",
    "sabre_write_ns",
    "read_speedup",
)

SCALING_HEADERS = (
    "shards",
    "read_gbps",
    "ops_per_us",
    "read_ns",
    "write_ns",
    "retries",
    "fallback_reads",
    "undetected_violations",
    "shard_imbalance",
)


def _cfg_from_params(p, scale: float) -> YcsbConfig:
    return YcsbConfig(
        workload=p["workload"],
        distribution=p["distribution"],
        mechanism=p["mechanism"],
        n_shards=p["n_shards"],
        n_clients=p.get("n_clients", 0),
        readers_per_client=p["readers_per_client"],
        replication=p["replication"],
        object_size=p["object_size"],
        n_objects=p["n_objects"],
        duration_ns=scaled_duration(p["duration_ns"], scale),
        seed=p["seed"],
    )


def _ycsb_latency_point(ctx) -> Dict[str, float]:
    result = run_ycsb(_cfg_from_params(ctx.params, ctx.scale))
    v = ctx.variant
    return {
        f"{v}_read_ns": result.mean_read_ns,
        f"{v}_write_ns": result.mean_write_ns,
        f"{v}_violations": result.undetected_violations,
    }


def _latency_finalize(row: Dict) -> Dict:
    sabre = row.get("sabre_read_ns", math.nan)
    percl = row.get("percl_read_ns", math.nan)
    row["read_speedup"] = percl / sabre if sabre and sabre > 0 else math.nan
    return row


YCSB_LATENCY_SPEC = register(
    ExperimentSpec(
        name="ycsb_latency",
        description="YCSB A/B/C on a 4-shard service: perCL vs SABRe reads",
        axes={
            "workload": tuple(sorted(YCSB_MIXES)),
            "distribution": DISTRIBUTIONS,
        },
        variants=(
            Variant("percl", {"mechanism": "percl_versions"}),
            Variant("sabre", {"mechanism": "sabre"}),
        ),
        defaults={
            "mechanism": "sabre",
            "n_shards": 4,
            "readers_per_client": 2,
            "replication": 2,
            "object_size": 1024,
            "n_objects": 512,
            "duration_ns": 150_000.0,
            "seed": 11,
        },
        finalize_row=_latency_finalize,
        headers=LATENCY_HEADERS,
        point_fn=_ycsb_latency_point,
        base_seed=11,
        qa_checks=(
            QaCheck("sabre_read_ns", agg="min", lo=0.0),
            QaCheck("percl_read_ns", agg="min", lo=0.0),
        ),
    )
)


def _derive_scaling(params: Dict) -> Dict:
    out = dict(params)
    shards = out.pop("shards")
    out["n_shards"] = shards
    # One client node per shard: load generators grow with the rack.
    out["n_clients"] = shards
    out["replication"] = min(out["replication"], shards)
    return out


def _ycsb_scaling_point(ctx) -> Dict[str, float]:
    result = run_ycsb(_cfg_from_params(ctx.params, ctx.scale))
    return {
        "read_gbps": result.read_goodput_gbps,
        "ops_per_us": result.ops_per_us,
        "read_ns": result.mean_read_ns,
        "write_ns": result.mean_write_ns,
        "retries": result.retries,
        "fallback_reads": result.fallback_reads,
        "undetected_violations": result.undetected_violations,
        "shard_imbalance": result.shard_imbalance,
    }


YCSB_SHARD_SCALING_SPEC = register(
    ExperimentSpec(
        name="ycsb_shard_scaling",
        description="YCSB-A throughput under SABRes as shards grow 1->8",
        axes={"shards": (1, 2, 4, 8)},
        defaults={
            "workload": "A",
            "distribution": "uniform",
            "mechanism": "sabre",
            "readers_per_client": 2,
            "replication": 2,
            "object_size": 1024,
            "n_objects": 512,
            "duration_ns": 150_000.0,
            "seed": 13,
        },
        derive=_derive_scaling,
        headers=SCALING_HEADERS,
        point_fn=_ycsb_scaling_point,
        base_seed=13,
        qa_checks=(QaCheck("undetected_violations", agg="max", hi=0.0),),
    )
)

"""Workload generators and the paper's microbenchmarks (§6)."""

from repro.workloads.generators import (
    FIG1_SIZES,
    FIG7_SIZES,
    FIG8_SIZES,
    CrewPartition,
    UniformPicker,
)
from repro.workloads.microbench import (
    MicrobenchConfig,
    MicrobenchResult,
    TimedWriter,
    run_microbench,
)

__all__ = [
    "CrewPartition",
    "FIG1_SIZES",
    "FIG7_SIZES",
    "FIG8_SIZES",
    "MicrobenchConfig",
    "MicrobenchResult",
    "TimedWriter",
    "UniformPicker",
    "run_microbench",
]

"""Workload generators, the paper's microbenchmarks (§6), and the
YCSB-style service mixes over the sharded store."""

from repro.workloads.availability import (
    FailoverMixConfig,
    FailoverResult,
    run_failover_mix,
)
from repro.workloads.elastic import (
    ElasticConfig,
    ElasticResult,
    run_elastic,
)
from repro.workloads.generators import (
    FIG1_SIZES,
    FIG7_SIZES,
    FIG8_SIZES,
    CrewPartition,
    UniformPicker,
    ZipfianPicker,
)
from repro.workloads.microbench import (
    MicrobenchConfig,
    MicrobenchResult,
    TimedWriter,
    run_microbench,
)
from repro.workloads.txn_mix import (
    TxnMixConfig,
    TxnMixResult,
    run_txn_mix,
)
from repro.workloads.ycsb import (
    YCSB_MIXES,
    YcsbConfig,
    YcsbResult,
    run_ycsb,
)

__all__ = [
    "CrewPartition",
    "FIG1_SIZES",
    "FIG7_SIZES",
    "FIG8_SIZES",
    "ElasticConfig",
    "ElasticResult",
    "FailoverMixConfig",
    "FailoverResult",
    "MicrobenchConfig",
    "MicrobenchResult",
    "TimedWriter",
    "TxnMixConfig",
    "TxnMixResult",
    "UniformPicker",
    "YCSB_MIXES",
    "YcsbConfig",
    "YcsbResult",
    "ZipfianPicker",
    "run_elastic",
    "run_failover_mix",
    "run_microbench",
    "run_txn_mix",
    "run_ycsb",
]

"""The paper's microbenchmark (§6): reader threads performing atomic
remote object reads in a tight loop, writer threads updating objects in
destination-local memory under the odd/even version protocol.

Every consumed read is audited against ground truth (payload words
stamped with the committed version): a mechanism that lets a torn read
through increments ``undetected_violations`` — zero for LightSABRes by
construction, non-zero for the Fig. 2 straw man.

The per-mechanism read logic lives in :mod:`repro.workloads.protocols`;
the reader loops here are mechanism-agnostic and dispatch through the
:class:`~repro.workloads.protocols.ReadProtocol` registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import ClusterConfig, SabreMode
from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.objstore.layout import RawLayout, is_locked, stamped_payload
from repro.objstore.store import ObjectStore
from repro.sim.resources import FifoResource
from repro.sim.stats import Samples, ThroughputMeter
from repro.sonuma.node import Cluster, SoNode
from repro.workloads.generators import CrewPartition, UniformPicker, ZipfianPicker
from repro.workloads.protocols import get_protocol, protocol_names

#: Mechanisms the microbenchmark understands — the registered
#: :class:`ReadProtocol` names.  ``remote_read`` is the pure-transport
#: baseline of Fig. 7 (no atomicity enforcement at all); ``drtm_lock``
#: is Table 1's source-side locking cell.  Snapshot at import time;
#: :meth:`MicrobenchConfig.validate` consults the live registry, so
#: protocols registered later are accepted too.
MECHANISMS = protocol_names()


@dataclass
class MicrobenchConfig:
    """``object_size`` is the total in-store object footprint including
    its 8 B version header (so a 64 B object is a true single-block
    transfer, as in Fig. 7a); the application payload is 8 bytes less.
    """

    mechanism: str = "sabre"
    object_size: int = 1024
    n_objects: int = 100
    readers: int = 1
    writers: int = 0
    duration_ns: float = 150_000.0
    warmup_ns: float = 20_000.0
    async_window: int = 1  # outstanding ops per reader thread (1 = sync)
    seed: int = 1
    version_bits: int = 16
    writer_think_ns: float = 0.0
    #: Zipfian skew for reader accesses (0.0 = uniform, YCSB-style ~0.99).
    zipf_theta: float = 0.0
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)
    cluster: Optional[ClusterConfig] = None

    def validate(self) -> None:
        get_protocol(self.mechanism)  # raises ConfigError when unknown
        if self.object_size < 16:
            raise ConfigError("object_size must cover the 8 B header plus data")
        if self.readers < 1:
            raise ConfigError("need at least one reader")
        if self.warmup_ns >= self.duration_ns:
            raise ConfigError("warmup must end before the run does")
        if self.async_window < 1:
            raise ConfigError("async_window must be >= 1")

    @property
    def payload_len(self) -> int:
        """Application data bytes per object (header excluded)."""
        return self.object_size - 8


@dataclass
class MicrobenchResult:
    config: MicrobenchConfig
    op_latency: Samples
    transfer_latency: Samples
    goodput_gbps: float
    ops_completed: int
    sabre_aborts: int
    software_conflicts: int
    retries: int
    undetected_violations: int
    writer_updates: int
    destination_counters: Dict[str, int]

    @property
    def mean_op_latency_ns(self) -> float:
        return self.op_latency.mean

    @property
    def mean_transfer_latency_ns(self) -> float:
        return self.transfer_latency.mean


class TimedWriter:
    """A writer thread on the data-owning node (§6): repeatedly updates
    its CREW subset in local memory with paced block stores."""

    def __init__(
        self,
        node: SoNode,
        store: ObjectStore,
        object_ids: List[int],
        core: int,
        seed: int,
        costs: SoftwareCosts,
        think_ns: float = 0.0,
        use_lock_table: bool = False,
    ):
        self.node = node
        self.store = store
        self.object_ids = object_ids
        self.core = core
        self.costs = costs
        self.think_ns = think_ns
        self.use_lock_table = use_lock_table
        self._rng = make_rng(seed, "writer", core)
        self.updates = 0
        self.lock_spins = 0

    def process(self, until_ns: float):
        sim = self.node.sim
        if not self.object_ids:
            return
            yield  # pragma: no cover - makes this a generator
        while sim.now < until_ns:
            obj_id = self._rng.choice(self.object_ids)
            handle = self.store.handle(obj_id)
            if self.use_lock_table:
                acquired = False
                while not acquired:
                    acquired = self.node.lock_table.try_write_lock(handle.base_addr)
                    if acquired:
                        break
                    self.lock_spins += 1
                    yield sim.timeout(25.0)
                    if sim.now >= until_ns:
                        return
            while is_locked(self.store.current_version(obj_id)):
                # A DrTM-style reader holds the version-word lock (or a
                # concurrent writer in LOCKING mode): wait it out.
                self.lock_spins += 1
                yield sim.timeout(25.0)
                if sim.now >= until_ns:
                    return
            committed = self.store.current_version(obj_id) + 2
            data = stamped_payload(committed, handle.data_len)
            steps, _version = self.store.update_steps(obj_id, data)
            yield sim.timeout(self.costs.writer_fixed_ns)
            for addr, chunk in steps:
                latency = self.node.chip.write_block(self.core, addr, chunk)
                yield sim.timeout(max(latency, self.costs.writer_block_ns))
            if self.use_lock_table:
                self.node.lock_table.write_unlock(handle.base_addr)
            self.updates += 1
            if self.think_ns > 0:
                yield sim.timeout(self.think_ns)


class _ReaderStats:
    def __init__(self) -> None:
        self.op_latency = Samples("op_latency_ns")
        self.transfer_latency = Samples("transfer_latency_ns")
        self.meter = ThroughputMeter()
        self.sabre_aborts = 0
        self.software_conflicts = 0
        self.retries = 0
        self.undetected_violations = 0


class Microbenchmark:
    """Builds the 2-node system and runs the reader/writer mix."""

    def __init__(self, cfg: MicrobenchConfig):
        cfg.validate()
        self.cfg = cfg
        protocol_cls = get_protocol(cfg.mechanism)
        self.cluster = Cluster(cfg.cluster or ClusterConfig())
        self.dst = self.cluster.node(0)  # data owner
        self.src = self.cluster.node(1)  # readers
        self.mechanism = protocol_cls.make_mechanism(cfg)
        layout = self.mechanism.layout if self.mechanism else RawLayout()
        self.store = ObjectStore(self.dst.phys, layout, name="microbench")
        for obj_id in range(cfg.n_objects):
            self.store.create(obj_id, stamped_payload(0, cfg.payload_len))
        self.stats = _ReaderStats()
        self.writers: List[TimedWriter] = []
        self.protocol = protocol_cls(self)

    # ------------------------------------------------------------------
    def _reader_slot(self, thread: int, slot: int, t_end: float):
        """Fig. 7a-style synchronous loop: pick, read atomically via the
        configured protocol, consume, repeat."""
        sim = self.cluster.sim
        picker = self._picker((thread, slot))
        wire = self.store.layout.wire_size(self.cfg.payload_len)
        buf = self.src.alloc_buffer(wire)

        while sim.now < t_end:
            obj_id = picker.pick()
            handle = self.store.handle(obj_id)
            yield from self.protocol.read_once(handle, buf, wire, t_end)

    # ------------------------------------------------------------------
    def _picker(self, label):
        cfg = self.cfg
        if cfg.zipf_theta > 0.0:
            return ZipfianPicker(
                range(cfg.n_objects), cfg.seed, theta=cfg.zipf_theta, label=label
            )
        return UniformPicker(range(cfg.n_objects), cfg.seed, label=label)

    # ------------------------------------------------------------------
    def _async_thread(self, thread: int, t_end: float):
        """Fig. 7b issue loop: one thread keeps ``async_window`` ops in
        flight, paying only the per-op issue cost.  Peak-bandwidth mode:
        post-transfer software is assumed overlapped.

        One landing buffer is preallocated per in-flight window slot and
        recycled as completions drain — the window resource guarantees a
        free buffer whenever a slot is granted."""
        sim = self.cluster.sim
        cfg = self.cfg
        picker = self._picker(thread)
        wire = self.store.layout.wire_size(cfg.payload_len)
        window = FifoResource(sim, cfg.async_window)
        free_bufs = [self.src.alloc_buffer(wire) for _ in range(cfg.async_window)]
        issue_gap = cfg.costs.microbench_loop_ns

        def on_complete(event, buf):
            result = event.value
            if self.protocol.async_ok(result):
                self.stats.op_latency.add(result.timings.end_to_end_ns)
                self.stats.transfer_latency.add(result.timings.end_to_end_ns)
                self.stats.meter.record(cfg.payload_len)
            free_bufs.append(buf)
            window.release()

        while sim.now < t_end:
            yield window.acquire()
            yield sim.timeout(issue_gap)
            handle = self.store.handle(picker.pick())
            buf = free_bufs.pop()
            ev = self.protocol.issue(handle, wire, buf)
            ev.add_callback(lambda event, buf=buf: on_complete(event, buf))

    def run(self) -> MicrobenchResult:
        sim = self.cluster.sim
        cfg = self.cfg
        t_end = cfg.duration_ns

        if cfg.async_window > 1:
            for thread in range(cfg.readers):
                sim.process(self._async_thread(thread, t_end))
        else:
            for thread in range(cfg.readers):
                sim.process(self._reader_slot(thread, 0, t_end))

        use_locks = (
            cfg.mechanism == "sabre"
            and self.cluster.cfg.node.sabre.mode is SabreMode.LOCKING
        )
        partition = CrewPartition(range(cfg.n_objects), cfg.writers)
        for w in range(cfg.writers):
            writer = TimedWriter(
                self.dst,
                self.store,
                partition.subset(w),
                core=w % self.cluster.cfg.node.cores.count,
                seed=cfg.seed + 17,
                costs=cfg.costs,
                think_ns=cfg.writer_think_ns,
                use_lock_table=use_locks,
            )
            self.writers.append(writer)
            sim.process(writer.process(t_end))

        def metering():
            yield sim.timeout(cfg.warmup_ns)
            self.stats.meter.start(sim.now)
            yield sim.timeout(t_end - cfg.warmup_ns)
            self.stats.meter.stop(sim.now)

        sim.process(metering())
        sim.run()

        return MicrobenchResult(
            config=cfg,
            op_latency=self.stats.op_latency,
            transfer_latency=self.stats.transfer_latency,
            goodput_gbps=self.stats.meter.gbps,
            ops_completed=self.stats.meter.ops_total,
            sabre_aborts=self.stats.sabre_aborts,
            software_conflicts=self.stats.software_conflicts,
            retries=self.stats.retries,
            undetected_violations=self.stats.undetected_violations,
            writer_updates=sum(w.updates for w in self.writers),
            destination_counters=self.dst.counters.as_dict(),
        )


def run_microbench(cfg: MicrobenchConfig) -> MicrobenchResult:
    """Build and run one microbenchmark configuration."""
    return Microbenchmark(cfg).run()

"""The paper's microbenchmark (§6): reader threads performing atomic
remote object reads in a tight loop, writer threads updating objects in
destination-local memory under the odd/even version protocol.

Every consumed read is audited against ground truth (payload words
stamped with the committed version): a mechanism that lets a torn read
through increments ``undetected_violations`` — zero for LightSABRes by
construction, non-zero for the Fig. 2 straw man.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.atomicity.mechanisms import (
    AtomicityMechanism,
    ChecksumMechanism,
    HardwareSabreMechanism,
    PerCacheLineMechanism,
)
from repro.common.config import ClusterConfig, SabreMode
from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.objstore.layout import (
    RawLayout,
    is_locked,
    stamped_payload,
    torn_words,
)
from repro.objstore.store import ObjectStore
from repro.sim.resources import FifoResource
from repro.sim.stats import Samples, ThroughputMeter
from repro.sonuma.node import Cluster, SoNode
from repro.workloads.generators import CrewPartition, UniformPicker, ZipfianPicker

#: Mechanisms the microbenchmark understands.  ``remote_read`` is the
#: pure-transport baseline of Fig. 7 (no atomicity enforcement at all);
#: ``drtm_lock`` is Table 1's source-side locking cell: acquire the
#: object's version-word lock with a remote CAS, read, then release
#: with a remote write — two extra network round trips per read.
MECHANISMS = ("remote_read", "sabre", "percl_versions", "checksum", "drtm_lock")


@dataclass
class MicrobenchConfig:
    """``object_size`` is the total in-store object footprint including
    its 8 B version header (so a 64 B object is a true single-block
    transfer, as in Fig. 7a); the application payload is 8 bytes less.
    """

    mechanism: str = "sabre"
    object_size: int = 1024
    n_objects: int = 100
    readers: int = 1
    writers: int = 0
    duration_ns: float = 150_000.0
    warmup_ns: float = 20_000.0
    async_window: int = 1  # outstanding ops per reader thread (1 = sync)
    seed: int = 1
    version_bits: int = 16
    writer_think_ns: float = 0.0
    #: Zipfian skew for reader accesses (0.0 = uniform, YCSB-style ~0.99).
    zipf_theta: float = 0.0
    costs: SoftwareCosts = field(default_factory=lambda: DEFAULT_COSTS)
    cluster: Optional[ClusterConfig] = None

    def validate(self) -> None:
        if self.mechanism not in MECHANISMS:
            raise ConfigError(
                f"unknown mechanism {self.mechanism!r}; choose from {MECHANISMS}"
            )
        if self.object_size < 16:
            raise ConfigError("object_size must cover the 8 B header plus data")
        if self.readers < 1:
            raise ConfigError("need at least one reader")
        if self.warmup_ns >= self.duration_ns:
            raise ConfigError("warmup must end before the run does")
        if self.async_window < 1:
            raise ConfigError("async_window must be >= 1")

    @property
    def payload_len(self) -> int:
        """Application data bytes per object (header excluded)."""
        return self.object_size - 8


@dataclass
class MicrobenchResult:
    config: MicrobenchConfig
    op_latency: Samples
    transfer_latency: Samples
    goodput_gbps: float
    ops_completed: int
    sabre_aborts: int
    software_conflicts: int
    retries: int
    undetected_violations: int
    writer_updates: int
    destination_counters: Dict[str, int]

    @property
    def mean_op_latency_ns(self) -> float:
        return self.op_latency.mean

    @property
    def mean_transfer_latency_ns(self) -> float:
        return self.transfer_latency.mean


def _make_mechanism(cfg: MicrobenchConfig) -> Optional[AtomicityMechanism]:
    if cfg.mechanism == "sabre":
        return HardwareSabreMechanism()
    if cfg.mechanism == "percl_versions":
        return PerCacheLineMechanism(cfg.version_bits)
    if cfg.mechanism == "checksum":
        return ChecksumMechanism()
    return None  # remote_read / drtm_lock: raw layout, no post-check


class TimedWriter:
    """A writer thread on the data-owning node (§6): repeatedly updates
    its CREW subset in local memory with paced block stores."""

    def __init__(
        self,
        node: SoNode,
        store: ObjectStore,
        object_ids: List[int],
        core: int,
        seed: int,
        costs: SoftwareCosts,
        think_ns: float = 0.0,
        use_lock_table: bool = False,
    ):
        self.node = node
        self.store = store
        self.object_ids = object_ids
        self.core = core
        self.costs = costs
        self.think_ns = think_ns
        self.use_lock_table = use_lock_table
        self._rng = make_rng(seed, "writer", core)
        self.updates = 0
        self.lock_spins = 0

    def process(self, until_ns: float):
        sim = self.node.sim
        if not self.object_ids:
            return
            yield  # pragma: no cover - makes this a generator
        while sim.now < until_ns:
            obj_id = self._rng.choice(self.object_ids)
            handle = self.store.handle(obj_id)
            if self.use_lock_table:
                acquired = False
                while not acquired:
                    acquired = self.node.lock_table.try_write_lock(handle.base_addr)
                    if acquired:
                        break
                    self.lock_spins += 1
                    yield sim.timeout(25.0)
                    if sim.now >= until_ns:
                        return
            while is_locked(self.store.current_version(obj_id)):
                # A DrTM-style reader holds the version-word lock (or a
                # concurrent writer in LOCKING mode): wait it out.
                self.lock_spins += 1
                yield sim.timeout(25.0)
                if sim.now >= until_ns:
                    return
            committed = self.store.current_version(obj_id) + 2
            data = stamped_payload(committed, handle.data_len)
            steps, _version = self.store.update_steps(obj_id, data)
            yield sim.timeout(self.costs.writer_fixed_ns)
            for addr, chunk in steps:
                latency = self.node.chip.write_block(self.core, addr, chunk)
                yield sim.timeout(max(latency, self.costs.writer_block_ns))
            if self.use_lock_table:
                self.node.lock_table.write_unlock(handle.base_addr)
            self.updates += 1
            if self.think_ns > 0:
                yield sim.timeout(self.think_ns)


class _ReaderStats:
    def __init__(self) -> None:
        self.op_latency = Samples("op_latency_ns")
        self.transfer_latency = Samples("transfer_latency_ns")
        self.meter = ThroughputMeter()
        self.sabre_aborts = 0
        self.software_conflicts = 0
        self.retries = 0
        self.undetected_violations = 0


class Microbenchmark:
    """Builds the 2-node system and runs the reader/writer mix."""

    def __init__(self, cfg: MicrobenchConfig):
        cfg.validate()
        self.cfg = cfg
        self.cluster = Cluster(cfg.cluster or ClusterConfig())
        self.dst = self.cluster.node(0)  # data owner
        self.src = self.cluster.node(1)  # readers
        self.mechanism = _make_mechanism(cfg)
        layout = self.mechanism.layout if self.mechanism else RawLayout()
        self.store = ObjectStore(self.dst.phys, layout, name="microbench")
        for obj_id in range(cfg.n_objects):
            self.store.create(obj_id, stamped_payload(0, cfg.payload_len))
        self.stats = _ReaderStats()
        self.writers: List[TimedWriter] = []

    # ------------------------------------------------------------------
    def _reader_slot(self, thread: int, slot: int, t_end: float):
        sim = self.cluster.sim
        cfg = self.cfg
        costs = cfg.costs
        mech = self.mechanism
        layout = self.store.layout
        picker = self._picker((thread, slot))
        wire = layout.wire_size(cfg.payload_len)
        buf = self.src.alloc_buffer(wire)
        hardware = mech is not None and mech.hardware
        drtm = cfg.mechanism == "drtm_lock"

        while sim.now < t_end:
            obj_id = picker.pick()
            handle = self.store.handle(obj_id)
            t0 = sim.now
            if drtm:
                yield from self._drtm_read(handle, buf, wire, t0, t_end)
                continue
            while True:
                yield sim.timeout(costs.microbench_loop_ns)
                if hardware:
                    ev = self.src.sabre_read(
                        self.dst.node_id, handle.base_addr, wire, buf
                    )
                else:
                    ev = self.src.remote_read(
                        self.dst.node_id, handle.base_addr, wire, buf
                    )
                result = yield ev
                ok = True
                data: Optional[bytes] = None
                if hardware:
                    ok = result.success
                    if ok:
                        raw = self.src.read_local(buf, wire)
                        strip = layout.unpack(raw, cfg.payload_len)
                        data = strip.data
                        yield sim.timeout(
                            costs.app_consume_ns(cfg.payload_len, "microbench")
                        )
                    else:
                        self.stats.sabre_aborts += 1
                elif mech is not None:
                    yield sim.timeout(mech.check_cost_ns(costs, cfg.payload_len))
                    raw = self.src.read_local(buf, wire)
                    strip = mech.check(raw, cfg.payload_len)
                    ok = strip.ok
                    data = strip.data
                    if not ok:
                        self.stats.software_conflicts += 1
                else:  # remote_read transport baseline: no atomicity check
                    raw = self.src.read_local(buf, wire)
                    data = layout.unpack(raw, cfg.payload_len).data

                if ok:
                    if mech is not None and data is not None:
                        torn, _words = torn_words(data)
                        if torn:
                            self.stats.undetected_violations += 1
                    latency = sim.now - t0
                    self.stats.op_latency.add(latency)
                    self.stats.transfer_latency.add(
                        result.timings.end_to_end_ns
                    )
                    self.stats.meter.record(cfg.payload_len)
                    break
                # Atomicity violation: retry the same object immediately
                # (§7.2's retry policy).
                self.stats.retries += 1
                if sim.now >= t_end:
                    break

    # ------------------------------------------------------------------
    def _picker(self, label):
        cfg = self.cfg
        if cfg.zipf_theta > 0.0:
            return ZipfianPicker(
                range(cfg.n_objects), cfg.seed, theta=cfg.zipf_theta, label=label
            )
        return UniformPicker(range(cfg.n_objects), cfg.seed, label=label)

    # ------------------------------------------------------------------
    def _drtm_read(self, handle, buf: int, wire: int, t0: float, t_end: float):
        """Source-side locking read (Table 1, DrTM cell): CAS-acquire
        the object's version word, read it one-sidedly, CAS-release.

        Costs two extra network round trips versus a plain read — the
        drawback §2.1 calls out — but needs no post-transfer check."""
        sim = self.cluster.sim
        cfg = self.cfg
        costs = cfg.costs
        layout = self.store.layout
        version_addr = self.store.version_addr(handle.obj_id)
        while True:
            yield sim.timeout(costs.microbench_loop_ns)
            current = yield self.src.remote_read(
                self.dst.node_id, version_addr, 8, buf
            )
            observed = int.from_bytes(self.src.read_local(buf, 8), "little")
            if observed % 2 == 1:
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            locked = observed + 1
            cas = yield self.src.remote_cas(
                self.dst.node_id, version_addr, observed, locked
            )
            if not cas.success:
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            read = yield self.src.remote_read(
                self.dst.node_id, handle.base_addr, wire, buf
            )
            raw = self.src.read_local(buf, wire)
            # Restore the pre-lock version (pure read: no version bump).
            yield self.src.remote_write(
                self.dst.node_id, version_addr, observed.to_bytes(8, "little")
            )
            strip = layout.unpack(raw, cfg.payload_len)
            data = bytes(raw[8 : 8 + cfg.payload_len])
            torn, _words = torn_words(data)
            if torn:
                self.stats.undetected_violations += 1
            yield sim.timeout(costs.app_consume_ns(cfg.payload_len, "microbench"))
            self.stats.op_latency.add(sim.now - t0)
            self.stats.transfer_latency.add(read.timings.end_to_end_ns)
            self.stats.meter.record(cfg.payload_len)
            return

    # ------------------------------------------------------------------
    def _async_thread(self, thread: int, t_end: float):
        """Fig. 7b issue loop: one thread keeps ``async_window`` ops in
        flight, paying only the per-op issue cost.  Peak-bandwidth mode:
        post-transfer software is assumed overlapped."""
        sim = self.cluster.sim
        cfg = self.cfg
        mech = self.mechanism
        layout = self.store.layout
        picker = self._picker(thread)
        wire = layout.wire_size(cfg.payload_len)
        window = FifoResource(sim, cfg.async_window)
        hardware = mech is not None and mech.hardware
        issue_gap = cfg.costs.microbench_loop_ns

        def on_complete(event):
            result = event.value
            if (not hardware) or result.success:
                self.stats.op_latency.add(result.timings.end_to_end_ns)
                self.stats.transfer_latency.add(result.timings.end_to_end_ns)
                self.stats.meter.record(cfg.payload_len)
            else:
                self.stats.sabre_aborts += 1
            window.release()

        while sim.now < t_end:
            yield window.acquire()
            yield sim.timeout(issue_gap)
            handle = self.store.handle(picker.pick())
            buf = self.src.alloc_buffer(wire)
            if hardware:
                ev = self.src.sabre_read(
                    self.dst.node_id, handle.base_addr, wire, buf
                )
            else:
                ev = self.src.remote_read(
                    self.dst.node_id, handle.base_addr, wire, buf
                )
            ev.add_callback(on_complete)

    def run(self) -> MicrobenchResult:
        sim = self.cluster.sim
        cfg = self.cfg
        t_end = cfg.duration_ns

        if cfg.async_window > 1:
            for thread in range(cfg.readers):
                sim.process(self._async_thread(thread, t_end))
        else:
            for thread in range(cfg.readers):
                sim.process(self._reader_slot(thread, 0, t_end))

        use_locks = (
            cfg.mechanism == "sabre"
            and self.cluster.cfg.node.sabre.mode is SabreMode.LOCKING
        )
        partition = CrewPartition(range(cfg.n_objects), cfg.writers)
        for w in range(cfg.writers):
            writer = TimedWriter(
                self.dst,
                self.store,
                partition.subset(w),
                core=w % self.cluster.cfg.node.cores.count,
                seed=cfg.seed + 17,
                costs=cfg.costs,
                think_ns=cfg.writer_think_ns,
                use_lock_table=use_locks,
            )
            self.writers.append(writer)
            sim.process(writer.process(t_end))

        def metering():
            yield sim.timeout(cfg.warmup_ns)
            self.stats.meter.start(sim.now)
            yield sim.timeout(t_end - cfg.warmup_ns)
            self.stats.meter.stop(sim.now)

        sim.process(metering())
        sim.run()

        return MicrobenchResult(
            config=cfg,
            op_latency=self.stats.op_latency,
            transfer_latency=self.stats.transfer_latency,
            goodput_gbps=self.stats.meter.gbps,
            ops_completed=self.stats.meter.ops_total,
            sabre_aborts=self.stats.sabre_aborts,
            software_conflicts=self.stats.software_conflicts,
            retries=self.stats.retries,
            undetected_violations=self.stats.undetected_violations,
            writer_updates=sum(w.updates for w in self.writers),
            destination_counters=self.dst.counters.as_dict(),
        )


def run_microbench(cfg: MicrobenchConfig) -> MicrobenchResult:
    """Build and run one microbenchmark configuration."""
    return Microbenchmark(cfg).run()

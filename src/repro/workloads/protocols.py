"""Pluggable read protocols for the microbenchmark reader loop.

Each mechanism in Table 1's design space is one :class:`ReadProtocol`
strategy: it knows how to build its atomicity mechanism (and therefore
its wire layout), how to issue one one-sided operation, and how to
complete it — including any post-transfer software check, retry
bookkeeping, and the ground-truth torn-read audit.  The reader loop in
:mod:`repro.workloads.microbench` is mechanism-agnostic; adding a new
scenario is a subclass plus :func:`register_protocol`, never a fork of
the loop.

Registered names double as the ``MicrobenchConfig.mechanism`` values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple, Type

from repro.atomicity.mechanisms import (
    AtomicityMechanism,
    ChecksumMechanism,
    HardwareSabreMechanism,
    PerCacheLineMechanism,
)
from repro.common.errors import ConfigError
from repro.objstore.layout import torn_words

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.microbench import Microbenchmark, MicrobenchConfig

#: name -> protocol class, in registration order (order is part of the
#: public ``MECHANISMS`` tuple, so built-ins register in the legacy
#: order below).
_PROTOCOLS: Dict[str, Type["ReadProtocol"]] = {}


def register_protocol(cls: Type["ReadProtocol"]) -> Type["ReadProtocol"]:
    """Class decorator: make ``cls`` selectable by ``cls.name``."""
    if not getattr(cls, "name", None):
        raise ConfigError(f"protocol class {cls.__name__} needs a name")
    _PROTOCOLS[cls.name] = cls
    return cls


def protocol_names() -> Tuple[str, ...]:
    """All registered mechanism names, in registration order."""
    return tuple(_PROTOCOLS)


def get_protocol(name: str) -> Type["ReadProtocol"]:
    try:
        return _PROTOCOLS[name]
    except KeyError:
        raise ConfigError(
            f"unknown mechanism {name!r}; choose from {protocol_names()}"
        ) from None


class ReadProtocol:
    """One atomic-read mechanism, bound to a running microbenchmark.

    Subclasses override :meth:`make_mechanism` (layout + software
    check), ``hardware`` (issue SABRes vs plain remote reads), and
    either the :meth:`complete` hook or — for protocols with a wholly
    different wire dance, like DrTM source locking — :meth:`read_once`
    itself.
    """

    #: registry key; also the ``MicrobenchConfig.mechanism`` value.
    name = ""
    #: issue ``sabre_read`` (destination-side hardware) vs ``remote_read``.
    hardware = False

    def __init__(self, bench: "Microbenchmark"):
        self.bench = bench
        self.cfg = bench.cfg
        self.costs = bench.cfg.costs
        self.stats = bench.stats
        self.src = bench.src
        self.dst = bench.dst
        self.store = bench.store
        self.mechanism = bench.mechanism
        #: Observation carried by the most recent *consumed* read: the
        #: committed version the mechanism vouched for (for SABRes, the
        #: hardware-validated version from the completion) and the
        #: payload bytes.  The transaction layer reads these to build
        #: its read set; they are only meaningful right after
        #: :meth:`read_once` consumed a read.
        self.last_version: Optional[int] = None
        self.last_data: Optional[bytes] = None

    def observe(self, version: int, data: Optional[bytes]) -> None:
        """Record the consumed read's ``(version, payload)`` snapshot."""
        self.last_version = version
        self.last_data = data

    # -- construction hooks --------------------------------------------
    @staticmethod
    def make_mechanism(cfg: "MicrobenchConfig") -> Optional[AtomicityMechanism]:
        """The source-side software mechanism (None = raw layout)."""
        return None

    # -- shared helpers ------------------------------------------------
    @property
    def layout(self):
        return self.store.layout

    def issue(self, handle, wire: int, buf: int):
        """Post the one-sided operation; returns the completion event."""
        if self.hardware:
            return self.src.sabre_read(self.dst.node_id, handle.base_addr, wire, buf)
        return self.src.remote_read(self.dst.node_id, handle.base_addr, wire, buf)

    def audit(self, data: Optional[bytes]) -> None:
        """Ground-truth torn-read audit of a consumed payload."""
        if data is None:
            return
        torn, _words = torn_words(data)
        if torn:
            self.stats.undetected_violations += 1

    # -- synchronous reader loop ---------------------------------------
    def read_once(self, handle, buf: int, wire: int, t_end: float):
        """One complete operation (including §7.2's retry-same-object
        policy), as a simulation generator."""
        sim = self.bench.cluster.sim
        t0 = sim.now
        while True:
            yield sim.timeout(self.costs.microbench_loop_ns)
            result = yield self.issue(handle, wire, buf)
            if result.crashed:
                # Destination died under the transfer: the landing
                # buffer is undefined, so skip the completion hook (it
                # must never consume those bytes) and retry — the
                # caller re-routes once its deadline slice expires.
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            ok, data = yield from self.complete(result, buf, wire)
            if ok:
                self.audit(data)
                self.stats.op_latency.add(sim.now - t0)
                self.stats.transfer_latency.add(result.timings.end_to_end_ns)
                self.stats.meter.record(self.cfg.payload_len)
                return
            self.stats.retries += 1
            if sim.now >= t_end:
                return

    def complete(self, result, buf: int, wire: int):
        """Post-transfer handling; yields any software-check simulation
        time and returns ``(ok, auditable_payload_or_None)``."""
        raise NotImplementedError
        yield  # pragma: no cover - generator marker

    # -- asynchronous (windowed) issue loop ----------------------------
    def async_ok(self, result) -> bool:
        """Classify an async completion; count failures.  Peak-bandwidth
        mode assumes post-transfer software is overlapped, so no check
        cost is charged here."""
        return True


@register_protocol
class RawRemoteReadProtocol(ReadProtocol):
    """Fig. 7's pure-transport baseline: a plain one-sided read with no
    atomicity enforcement (and hence no audit — torn data is expected)."""

    name = "remote_read"

    def complete(self, result, buf: int, wire: int):
        raw = self.src.read_local(buf, wire)
        strip = self.layout.unpack(raw, self.cfg.payload_len)
        # The observation is recorded (a transaction still needs the
        # version it saw), but the payload is returned as None: no
        # audit, torn data is this baseline's expected behavior.
        self.observe(strip.version, strip.data)
        return True, None
        yield  # pragma: no cover - generator marker


@register_protocol
class HardwareSabreProtocol(ReadProtocol):
    """LightSABRes: destination-side hardware atomicity (§4); the
    completion already carries the abort/commit verdict."""

    name = "sabre"
    hardware = True

    @staticmethod
    def make_mechanism(cfg):
        return HardwareSabreMechanism()

    def complete(self, result, buf: int, wire: int):
        if not result.success:
            self.stats.sabre_aborts += 1
            return False, None
        raw = self.src.read_local(buf, wire)
        strip = self.layout.unpack(raw, self.cfg.payload_len)
        # Prefer the SABRe verdict's version (what the destination
        # hardware validated) over the transferred header.
        verdict = result.remote_version
        self.observe(strip.version if verdict is None else verdict, strip.data)
        yield self.bench.cluster.sim.timeout(
            self.costs.app_consume_ns(self.cfg.payload_len, "microbench")
        )
        return True, strip.data

    def async_ok(self, result) -> bool:
        if result.success:
            return True
        self.stats.sabre_aborts += 1
        return False


class SoftwareCheckProtocol(ReadProtocol):
    """Base for source-side OCC mechanisms (Table 1's FaRM/Pilaf cells):
    transfer, then pay a size-dependent software check."""

    def complete(self, result, buf: int, wire: int):
        mech = self.mechanism
        yield self.bench.cluster.sim.timeout(
            mech.check_cost_ns(self.costs, self.cfg.payload_len)
        )
        raw = self.src.read_local(buf, wire)
        strip = mech.check(raw, self.cfg.payload_len)
        if not strip.ok:
            self.stats.software_conflicts += 1
            return False, None
        self.observe(strip.version, strip.data)
        return True, strip.data


@register_protocol
class PerCacheLineVersionsProtocol(SoftwareCheckProtocol):
    """FaRM-style per-cache-line versions (§2.1)."""

    name = "percl_versions"

    @staticmethod
    def make_mechanism(cfg):
        return PerCacheLineMechanism(cfg.version_bits)


@register_protocol
class ChecksumProtocol(SoftwareCheckProtocol):
    """Pilaf-style whole-object checksums (§2.1)."""

    name = "checksum"

    @staticmethod
    def make_mechanism(cfg):
        return ChecksumMechanism()


@register_protocol
class DrtmLockProtocol(ReadProtocol):
    """Source-side locking (Table 1, DrTM cell): CAS-acquire the
    object's version word, read one-sidedly, write-release.

    Costs two extra network round trips versus a plain read — the
    drawback §2.1 calls out — but needs no post-transfer check."""

    name = "drtm_lock"

    def read_once(self, handle, buf: int, wire: int, t_end: float):
        sim = self.bench.cluster.sim
        cfg = self.cfg
        costs = self.costs
        t0 = sim.now
        version_addr = self.store.version_addr(handle.obj_id)
        while True:
            yield sim.timeout(costs.microbench_loop_ns)
            probe = yield self.src.remote_read(
                self.dst.node_id, version_addr, 8, buf
            )
            if probe.crashed:
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            observed = int.from_bytes(self.src.read_local(buf, 8), "little")
            if observed % 2 == 1:
                # Version word already locked (or mid-update): retry.
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            cas = yield self.src.remote_cas(
                self.dst.node_id, version_addr, observed, observed + 1
            )
            if not cas.success:
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            read = yield self.src.remote_read(
                self.dst.node_id, handle.base_addr, wire, buf
            )
            if read.crashed:
                # The destination died holding our source lock; the
                # lock dies with it (recovery re-syncs a committed
                # image), so just retry elsewhere after the deadline.
                self.stats.retries += 1
                if sim.now >= t_end:
                    return
                continue
            raw = self.src.read_local(buf, wire)
            # Restore the pre-lock version (pure read: no version bump).
            # A crash here is fine for the same reason as above.
            yield self.src.remote_write(
                self.dst.node_id, version_addr, observed.to_bytes(8, "little")
            )
            self.observe(observed, bytes(raw[8 : 8 + cfg.payload_len]))
            self.audit(bytes(raw[8 : 8 + cfg.payload_len]))
            yield sim.timeout(costs.app_consume_ns(cfg.payload_len, "microbench"))
            self.stats.op_latency.add(sim.now - t0)
            self.stats.transfer_latency.add(read.timings.end_to_end_ns)
            self.stats.meter.record(cfg.payload_len)
            return

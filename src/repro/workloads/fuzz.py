"""Randomized atomicity-fuzz driver over the sharded store.

One :func:`fuzz_round` builds a small, hot sharded deployment and lets
randomized reader, writer, and multi-object-transaction processes
interleave for a while; with ``crash_cycles > 0`` a failover lane rides
along, crashing and recovering shards mid-flight.  The whole schedule
(process counts, key choices, pacing, transaction shapes, crash times)
derives from ``seed``, so rounds are reproducible interleavings.

The correctness assertions over the outcome live in
``tests/test_atomicity_fuzz.py``; the perf suite
(:mod:`repro.perf.scenarios`) times rounds of the crash lane to track
fuzz throughput (interleavings per second).
"""

from __future__ import annotations

from repro.common.rng import derive_seed, make_rng
from repro.faults import FaultInjector, FaultSchedule, FaultWindow
from repro.objstore.failover import FailoverManager, FailurePlan
from repro.objstore.reshard import ReshardManager
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager

#: RPC watchdog armed for fault-lane rounds (when no FailoverManager
#: already chose one): short enough that gray windows make watchdogs
#: fire against slow-but-alive shards, exercising the re-arm path.
FAULT_LANE_RPC_TIMEOUT_NS = 8_000.0

#: Mechanisms whose consumed reads must never be torn.
DETECTING = ("sabre", "percl_versions", "checksum", "drtm_lock")


class FuzzOutcome:
    """Aggregated counters of one fuzz round."""

    def __init__(self, kv, manager, injector=None, faults=None, reshard=None):
        reader_stats = kv.all_reader_stats()
        txn = manager.merged_stats()
        self.undetected_violations = sum(
            s.undetected_violations for s in reader_stats
        )
        self.torn_reads_observed = txn.torn_reads_observed
        self.reads_consumed = sum(len(s.op_latency) for s in reader_stats)
        self.commits = txn.commits
        self.detected_conflicts = (
            sum(s.sabre_aborts + s.software_conflicts + s.retries
                for s in reader_stats)
            + txn.lock_conflicts
            + txn.validation_aborts
        )
        self.writes = sum(ws.primary_updates for ws in kv.write_stats)
        self.crashes = injector.stats.crashes if injector else 0
        self.recoveries = injector.stats.recoveries if injector else 0
        self.promotions = injector.stats.promotions if injector else 0
        self.crash_aborts = txn.crash_aborts
        #: Work the crashes demonstrably interrupted: forced txn
        #: aborts, fenced try-locks, failed in-flight RPCs/transfers.
        self.crash_disruptions = self.crash_aborts + txn.fenced_locks
        if injector:
            self.crash_disruptions += (
                injector.stats.failed_rpcs + injector.stats.failed_transfers
            )
        self.gray_windows = faults.stats.gray_windows if faults else 0
        self.straggler_windows = (
            faults.stats.straggler_windows if faults else 0
        )
        self.partition_windows = (
            faults.stats.partition_windows if faults else 0
        )
        self.partition_refusals = kv.cluster.fabric.partition_refusals
        self.watchdog_rearms = sum(
            e.watchdog_rearms for e in kv.all_endpoints()
        )
        self.shards_added = reshard.stats.shards_added if reshard else 0
        self.keys_migrated = reshard.stats.keys_migrated if reshard else 0
        self.vnode_handoffs = reshard.stats.vnode_handoffs if reshard else 0
        self.migration_retries = (
            reshard.stats.migration_retries if reshard else 0
        )
        self.reshard_redirects = sum(
            ws.reshard_redirects for ws in kv.write_stats
        )
        self.fingerprint = (
            self.undetected_violations,
            self.torn_reads_observed,
            self.reads_consumed,
            self.commits,
            self.detected_conflicts,
            self.writes,
            self.crashes,
            self.promotions,
            self.crash_aborts,
            self.gray_windows,
            self.straggler_windows,
            self.partition_windows,
            self.partition_refusals,
            self.watchdog_rearms,
            self.shards_added,
            self.keys_migrated,
            self.vnode_handoffs,
            self.migration_retries,
            self.reshard_redirects,
            [s.retries for s in reader_stats],
            manager.txn_rows(),
            kv.shard_load(),
        )


def fuzz_round(
    mechanism: str,
    n_shards: int,
    seed: int,
    duration_ns: float = 30_000.0,
    object_size: int = 512,
    crash_cycles: int = 0,
    gray_windows: int = 0,
    partition_windows: int = 0,
    skew_max_ns: float = 0.0,
    reshard_adds: int = 0,
) -> FuzzOutcome:
    """One randomized interleaving: the schedule (process counts, key
    choices, pacing, transaction shapes) all derive from ``seed``.

    With ``crash_cycles > 0`` a failover lane rides along: that many
    crash/recover cycles round-robin over the shards at seed-derived
    times, so readers, writers, and mid-flight transaction commits get
    interleaved with promotions and re-syncs.

    ``gray_windows`` adds slow-but-alive windows (a seed-derived mix of
    full gray failures and RPC-plane-only stragglers) on random shards;
    ``partition_windows`` adds drop windows that either fully isolate a
    shard or sever a single client->shard link (the asymmetric case);
    ``skew_max_ns`` gives every node a seed-derived clock skew in
    ``[0, skew_max_ns]``, so lease views go stale and watchdog
    deadlines stretch.  All three compose with each other and with the
    crash lane.

    ``reshard_adds > 0`` schedules a live scale-out of that many spare
    shards at a seed-derived mid-run time — the elastic lane.  It
    composes with everything above: a migration overlapping a gray
    window, a partition, or a crash of the very shard a key is
    migrating from is exactly the interleaving this lane exists to
    buy."""
    rng = make_rng(seed, "fuzz-schedule", mechanism, n_shards)
    cfg = ShardedConfig(
        n_shards=n_shards,
        max_shards=n_shards + reshard_adds,
        n_clients=2,
        replication=min(2, n_shards),
        mechanism=mechanism,
        object_size=object_size,
        n_objects=rng.randint(4, 8),  # hot: conflicts are the point
        seed=derive_seed(seed, "fuzz-deploy", mechanism, n_shards),
    )
    kv = ShardedKV(cfg)
    manager = TxnManager(kv)
    reshard = None
    if reshard_adds:
        reshard = ReshardManager(kv)
        reshard.scale_out(
            reshard_adds, at_ns=duration_ns * rng.uniform(0.2, 0.5)
        )
    injector = None
    if crash_cycles:
        assert n_shards >= 2, "crash fuzzing needs a backup to promote"
        period = duration_ns / (crash_cycles + 1)
        downtime = period * rng.uniform(0.25, 0.5)
        injector = FailoverManager(
            kv,
            FailurePlan.cycles(
                range(n_shards),
                first_crash_ns=period * rng.uniform(0.3, 0.7),
                downtime_ns=downtime,
                uptime_ns=period - downtime,
                count=crash_cycles,
            ),
        )
    fault_windows = []
    if gray_windows:
        period = duration_ns / (gray_windows + 1)
        for i in range(gray_windows):
            width = period * rng.uniform(0.3, 0.6)
            start = period * (i + rng.uniform(0.3, 0.7))
            fault_windows.append(
                FaultWindow(
                    "gray" if rng.random() < 0.7 else "straggler",
                    start_ns=start,
                    end_ns=start + width,
                    node=rng.randrange(n_shards),
                    multiplier=rng.uniform(3.0, 12.0),
                )
            )
    if partition_windows:
        period = duration_ns / (partition_windows + 1)
        for i in range(partition_windows):
            width = period * rng.uniform(0.25, 0.5)
            start = period * (i + rng.uniform(0.3, 0.7))
            shard_node = rng.randrange(n_shards)
            # Half the windows fully isolate the shard; half sever a
            # single client->shard link (the asymmetric case, where
            # everyone else still reaches it).
            src = (
                None
                if rng.random() < 0.5
                else n_shards + rng.randrange(cfg.n_clients)
            )
            fault_windows.append(
                FaultWindow(
                    "partition",
                    start_ns=start,
                    end_ns=start + width,
                    src=src,
                    dst=shard_node,
                    drop=True,
                )
            )
    skews = {}
    if skew_max_ns > 0:
        for node_id in range(n_shards + cfg.n_clients):
            skews[node_id] = rng.uniform(0.0, skew_max_ns)
    faults = None
    if fault_windows or skews:
        faults = FaultInjector(
            kv.cluster,
            FaultSchedule(fault_windows, skews),
            kv=kv,
            rpc_timeout_ns=FAULT_LANE_RPC_TIMEOUT_NS,
        )
    sim = kv.cluster.sim
    keys = kv.keys()
    t_end = duration_ns

    def reader_proc(session, label):
        pick = make_rng(seed, "fuzz-reader", label)
        while sim.now < t_end:
            key = keys[pick.randrange(len(keys))]
            yield from session.lookup(key, t_end)

    def writer_proc(client, label):
        pick = make_rng(seed, "fuzz-writer", label)
        while sim.now < t_end:
            key = keys[pick.randrange(len(keys))]
            yield kv.put(client, key, t_end)
            yield sim.timeout(pick.uniform(10.0, 200.0))

    def txn_proc(session, label):
        pick = make_rng(seed, "fuzz-txn", label)
        while sim.now < t_end:
            size = pick.randint(2, min(4, len(keys)))
            chosen = pick.sample(keys, size)
            writes = chosen[: pick.randint(0, size)]
            yield from session.run(chosen, writes, t_end)

    for i in range(rng.randint(1, 2)):
        sim.process(reader_proc(kv.reader_session(i % cfg.clients), i))
    for i in range(rng.randint(1, 2)):
        sim.process(writer_proc(i % cfg.clients, i))
    for i in range(rng.randint(1, 2)):
        sim.process(txn_proc(manager.session(i % cfg.clients), i))

    sim.run()
    return FuzzOutcome(kv, manager, injector, faults, reshard)

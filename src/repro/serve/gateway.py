"""The asyncio HTTP gateway over :class:`~repro.serve.bridge.SimBridge`.

Endpoints (HTTP/1.1 with keep-alive, JSON bodies):

========================  ====================================================
``GET /v1/obj/{key}``     Read one object through the cluster's read protocol.
``PUT /v1/obj/{key}``     Write one object through the replication pipeline.
``POST /v1/txn``          Multi-key transaction: ``{"read_keys": [...],
                          "write_keys": [...]}`` (read-modify-write when both
                          are present).
``GET /healthz``          Liveness: 200 as soon as the process serves sockets.
``GET /readyz``           Readiness: 503 until the cluster is warmed, then 200.
``GET /metrics``          Prometheus text exposition of every gateway and
                          per-shard cluster counter.
========================  ====================================================

Status mapping: simulated-deadline expiry answers **504**, transaction
retry exhaustion **409**, unknown keys **404**, malformed requests
**400**, rate-limit rejections **429** (token bucket over all ``/v1/``
traffic), and requests arriving during drain **503**.

The gateway is written against :mod:`asyncio` directly — no HTTP
framework — because the container bakes in only the standard library.
The request parser is deliberately minimal: request line, headers,
``Content-Length`` bodies (no chunked encoding), bounded line and body
sizes.

**The driver task** is the wall-clock half of the time bridge.  Socket
handlers never touch the simulator; they enqueue ops on the bridge and
await an :class:`asyncio.Future`.  One driver coroutine owns virtual
time and advances it in the configured mode:

* ``fast`` — whenever ops are pending, run the simulation to
  quiescence (every op carries a virtual deadline, so each batch
  terminates).  Virtual time leaps ahead of the wall clock; latencies
  reported to clients are *virtual* nanoseconds.
* ``paced`` — virtual time tracks the wall clock at ``time_scale``
  virtual ns per wall ns, so a 5 us simulated read takes 5 us of wall
  time at scale 1.0.

On SIGTERM/SIGINT the gateway stops accepting connections, lets
in-flight requests finish (bounded by ``drain_timeout_s``), flushes a
final deterministic metrics snapshot to ``metrics_artifact`` when
configured, and exits.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import unquote

from repro.common.errors import ConfigError
from repro.serve.bridge import OpResult, SimBridge
from repro.serve.ops import TimedOp
from repro.serve.settings import ServeSettings

#: Parser bounds: longest accepted header block and body.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: Virtual-status -> HTTP status.
STATUS_HTTP = {
    "ok": 200,
    "timeout": 504,
    "conflict": 409,
    "not_found": 404,
    "bad_request": 400,
}

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class TokenBucket:
    """Wall-clock token bucket: ``rate`` tokens/second, ``burst``
    capacity.  ``rate <= 0`` disables limiting entirely."""

    def __init__(self, rate: float, burst: float, clock: Callable[[], float]):
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()

    def allow(self) -> bool:
        if self.rate <= 0:
            return True
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class Gateway:
    """One serving process: listener + bridge + driver task."""

    def __init__(self, settings: ServeSettings):
        self.settings = settings
        self.bridge = SimBridge(settings)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._draining = False
        self._drained = asyncio.Event()
        self._driver_task: Optional[asyncio.Task] = None
        self._next_op_id = 0
        self._connections = 0
        self._started_wall = 0.0
        self._bucket: Optional[TokenBucket] = None

        m = self.bridge.metrics
        self._rate_limited = m.counter(
            "repro_rate_limited_total",
            "Requests rejected by the token-bucket rate limiter.",
        )
        self._http_errors = m.counter(
            "repro_http_errors_total",
            "Protocol-level request failures, by reason.",
        )
        self._uptime = m.gauge(
            "repro_uptime_seconds",
            "Wall-clock seconds since the gateway started.",
            volatile=True,
        )
        self._wall_qps = m.gauge(
            "repro_wall_qps",
            "Completed requests over wall-clock uptime.",
            volatile=True,
        )
        self._conn_gauge = m.gauge(
            "repro_open_connections", "Open client connections.", volatile=True
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._started_wall = self._loop.time()
        self._bucket = TokenBucket(
            self.settings.rate_limit_qps,
            self.settings.burst,
            self._loop.time,
        )
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        self._driver_task = asyncio.ensure_future(self._drive())

    @property
    def port(self) -> int:
        """The bound port (useful when configured with port 0)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin the graceful drain (idempotent; signal-handler safe)."""
        if self._draining:
            return
        self._draining = True
        if self._wake is not None:
            self._wake.set()

    async def run(self) -> None:
        """Serve until a shutdown is requested, then drain and exit."""
        await self.start()
        try:
            assert self._wake is not None
            while not self._draining:
                await self._wake.wait()
                self._wake.clear()
            await self.drain()
        finally:
            if self._driver_task is not None:
                self._driver_task.cancel()

    async def drain(self) -> None:
        """Graceful shutdown: close the listener, give in-flight
        requests ``drain_timeout_s`` to finish, flush the artifact."""
        self._draining = True
        assert self._server is not None and self._loop is not None
        self._server.close()
        await self._server.wait_closed()
        deadline = self._loop.time() + self.settings.drain_timeout_s
        while (
            self.bridge.inflight > 0 or self._connections > 0
        ) and self._loop.time() < deadline:
            self._wake.set()  # let the driver flush pending sim work
            await asyncio.sleep(0.02)
        self._flush_artifact()
        self._drained.set()

    def _flush_artifact(self) -> None:
        path = self.settings.metrics_artifact
        if not path:
            return
        snapshot = self.bridge.metrics_snapshot(include_volatile=False)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(snapshot)

    # ------------------------------------------------------------------
    # the driver: wall clock -> virtual time
    # ------------------------------------------------------------------
    async def _drive(self) -> None:
        assert self._loop is not None and self._wake is not None
        if self.settings.warmup_delay_s > 0:
            await asyncio.sleep(self.settings.warmup_delay_s)
        self.bridge.warm()
        if self.settings.mode == "fast":
            await self._drive_fast()
        else:
            await self._drive_paced()

    async def _drive_fast(self) -> None:
        """Load-test mode: batch-drain the simulation whenever work is
        pending, otherwise sleep on the wake event."""
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self.bridge.inflight > 0:
                self.bridge.run_pending()
                # Completions resolved futures synchronously; yield so
                # their awaiting handlers run (and may submit more).
                await asyncio.sleep(0)

    async def _drive_paced(self) -> None:
        """Interactive mode: virtual time tracks the wall clock at
        ``time_scale`` virtual ns per wall ns."""
        scale = self.settings.time_scale
        start_wall = self._loop.time()
        start_virtual = self.bridge.sim.now
        while True:
            elapsed_ns = (self._loop.time() - start_wall) * 1e9
            self.bridge.run_until(start_virtual + elapsed_ns * scale)
            next_ns = self.bridge.next_event_ns()
            if next_ns == float("inf"):
                wait_s = 0.05
            else:
                behind_ns = next_ns - (start_virtual + elapsed_ns * scale)
                wait_s = min(max(behind_ns / scale / 1e9, 0.0), 0.05)
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=wait_s or 0.001)
                self._wake.clear()
            except asyncio.TimeoutError:
                pass

    async def _submit(self, op: TimedOp) -> OpResult:
        assert self._loop is not None and self._wake is not None
        future: asyncio.Future = self._loop.create_future()

        def done(result: OpResult) -> None:
            if not future.done():
                future.set_result(result)

        self.bridge.submit(op, callback=done)
        self._wake.set()
        return await future

    def _make_op(self, kind: str, **fields) -> TimedOp:
        op_id = self._next_op_id
        self._next_op_id += 1
        return TimedOp(op_id=op_id, at_ns=0.0, kind=kind, **fields)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, payload = await self._dispatch(method, path, body)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        finally:
            self._connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        if len(head) > MAX_HEADER_BYTES:
            raise asyncio.LimitOverrunError("header block too large", 0)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            self._http_errors.inc(reason="bad_request_line")
            return None
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise asyncio.LimitOverrunError("body too large", 0)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict,
        keep_alive: bool,
        content_type: str = "application/json",
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        reason = REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return 200, {"status": "alive"}
        if path == "/readyz":
            if self.bridge.ready and not self._draining:
                return 200, {"status": "ready"}
            return 503, {
                "status": "draining" if self._draining else "warming"
            }
        if path == "/metrics":
            return self._scrape()
        if path.startswith("/v1/"):
            return await self._dispatch_v1(method, path, body)
        self._http_errors.inc(reason="unknown_path")
        return 404, {"error": f"no route for {path}"}

    def _scrape(self) -> Tuple[int, Dict]:
        uptime = max(self._loop.time() - self._started_wall, 1e-9)
        self._uptime.set(uptime)
        self._wall_qps.set(self.bridge.completed / uptime)
        self._conn_gauge.set(self._connections)
        text = self.bridge.metrics_snapshot(include_volatile=True)
        return 200, text  # type: ignore[return-value]

    async def _dispatch_v1(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict]:
        if self._draining:
            return 503, {"error": "draining"}
        if not self.bridge.ready:
            return 503, {"error": "warming"}
        assert self._bucket is not None
        if not self._bucket.allow():
            self._rate_limited.inc()
            return 429, {"error": "rate limited"}
        if path.startswith("/v1/obj/"):
            key = unquote(path[len("/v1/obj/") :])
            if not key:
                self._http_errors.inc(reason="empty_key")
                return 400, {"error": "missing key"}
            if method == "GET":
                op = self._make_op("get", key=key)
            elif method == "PUT":
                op = self._make_op("put", key=key)
            else:
                self._http_errors.inc(reason="bad_method")
                return 405, {"error": f"{method} not allowed on {path}"}
            result = await self._submit(op)
            return STATUS_HTTP[result.status], result.to_dict()
        if path == "/v1/txn":
            if method != "POST":
                self._http_errors.inc(reason="bad_method")
                return 405, {"error": "txn requires POST"}
            try:
                spec = json.loads(body.decode("utf-8") or "{}")
                read_keys = tuple(str(k) for k in spec.get("read_keys", ()))
                write_keys = tuple(str(k) for k in spec.get("write_keys", ()))
                op = self._make_op(
                    "txn", read_keys=read_keys, write_keys=write_keys
                )
            except (ValueError, TypeError, ConfigError) as exc:
                self._http_errors.inc(reason="bad_txn_body")
                return 400, {"error": f"bad txn body: {exc}"}
            result = await self._submit(op)
            return STATUS_HTTP[result.status], result.to_dict()
        self._http_errors.inc(reason="unknown_path")
        return 404, {"error": f"no route for {path}"}


async def serve(settings: ServeSettings) -> None:
    """Entry point: build a gateway and run it until drained."""
    gateway = Gateway(settings)
    await gateway.run()

"""``repro-serve``: a network gateway over the simulated cluster.

The serving layer turns the in-process :class:`~repro.objstore.
sharded.ShardedKV` / :class:`~repro.objstore.txn.TxnManager` cluster
into something a socket can talk to:

* :mod:`repro.serve.bridge` — the **time bridge**: one process owns the
  :class:`~repro.sim.engine.Simulator` and injects wall-clock requests
  as virtual-time events, so every byte a client sends still flows
  through the timed memory hierarchy, the ReadProtocol registry, and
  the fault/reshard machinery.
* :mod:`repro.serve.gateway` — the asyncio HTTP gateway
  (``GET/PUT /v1/obj/{key}``, ``POST /v1/txn``, ``/healthz``,
  ``/readyz``, ``/metrics``) with token-bucket rate limiting and
  graceful SIGTERM drain.
* :mod:`repro.serve.metrics` — Prometheus-text-format counters,
  gauges, and histograms exporting every per-shard stat the cluster
  already collects.
* :mod:`repro.serve.settings` — env-layered configuration
  (``REPRO_SERVE_*`` variables overridden by CLI flags).

The open-loop load generator lives in :mod:`repro.loadgen`.
"""

from repro.serve.bridge import ReplayReport, SimBridge
from repro.serve.metrics import MetricsRegistry
from repro.serve.ops import ArrivalTrace, TimedOp
from repro.serve.settings import ServeSettings

__all__ = [
    "ArrivalTrace",
    "MetricsRegistry",
    "ReplayReport",
    "ServeSettings",
    "SimBridge",
    "TimedOp",
]

"""Env-layered configuration for ``repro-serve``.

Resolution order, lowest to highest precedence:

1. dataclass defaults (a 4-shard SABRe cluster on ``127.0.0.1:8373``),
2. ``REPRO_SERVE_*`` environment variables,
3. explicit keyword overrides (the CLI passes parsed flags here).

Every field maps to exactly one env var: ``field_name`` upper-cased
with the ``REPRO_SERVE_`` prefix (``port`` -> ``REPRO_SERVE_PORT``).
Booleans accept ``1/0/true/false/yes/no``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.common.errors import ConfigError
from repro.objstore.sharded import ShardedConfig

ENV_PREFIX = "REPRO_SERVE_"

#: Virtual-time pacing modes: ``paced`` advances virtual time against
#: the wall clock (interactive mode); ``fast`` advances it
#: as-fast-as-possible whenever requests are in flight (load-test
#: mode, the only mode with a determinism story).
MODES = ("paced", "fast")


def _parse_bool(raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ConfigError(f"not a boolean: {raw!r}")


@dataclass
class ServeSettings:
    """One gateway deployment."""

    # -- network --------------------------------------------------------
    host: str = "127.0.0.1"
    port: int = 8373

    # -- cluster --------------------------------------------------------
    n_shards: int = 4
    replication: int = 2
    mechanism: str = "sabre"
    n_objects: int = 512
    object_size: int = 1024
    seed: int = 1
    #: Client *nodes* in the simulated cluster (each holds a pool of
    #: reader/txn sessions the bridge checks requests out to).
    n_clients: int = 2

    # -- time bridge ----------------------------------------------------
    mode: str = "fast"
    #: Virtual nanoseconds advanced per wall-clock nanosecond in
    #: ``paced`` mode (1.0 = the simulated rack runs in real time).
    time_scale: float = 1.0
    #: Per-request virtual-time budget; an op that cannot complete
    #: inside it answers 504.
    request_timeout_ns: float = 5_000_000.0
    #: Transactions retry aborts up to this many attempts before
    #: answering 409.
    txn_max_attempts: int = 8
    #: Reader-session fallback grace (mirrors ShardedConfig).
    fallback_after_ns: float = 0.0
    #: Concurrency cap: reader and txn session pools each hold at most
    #: this many sessions (the simulated server's "thread pool").
    #: Requests beyond it queue FIFO for a free session, with the
    #: request deadline still counted from arrival — which is what
    #: turns sustained overload into 504s instead of an unbounded
    #: backlog, and gives the saturation sweep a real knee.
    max_sessions: int = 16

    # -- production trimmings -------------------------------------------
    #: Token-bucket rate limit in requests/second (0 disables).
    rate_limit_qps: float = 0.0
    #: Bucket burst capacity (defaults to one second's tokens).
    rate_limit_burst: float = 0.0
    #: Seconds the driver waits before warming the cluster (a testing
    #: hook: CI uses it to observe ``/readyz`` flip false -> true).
    warmup_delay_s: float = 0.0
    #: Seconds the SIGTERM drain waits for in-flight requests.
    drain_timeout_s: float = 10.0
    #: Path the final metrics snapshot is flushed to on shutdown
    #: (empty disables the artifact).
    metrics_artifact: str = ""

    def validate(self) -> None:
        if not 0 <= self.port < 65536:
            # Port 0 asks the kernel for an ephemeral port (tests/CI).
            raise ConfigError(f"port out of range: {self.port}")
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown mode {self.mode!r}; choose from {MODES}"
            )
        if self.time_scale <= 0:
            raise ConfigError(f"time_scale must be > 0: {self.time_scale}")
        if self.request_timeout_ns <= 0:
            raise ConfigError("request_timeout_ns must be > 0")
        if self.txn_max_attempts < 1:
            raise ConfigError("txn_max_attempts must be >= 1")
        if self.rate_limit_qps < 0 or self.rate_limit_burst < 0:
            raise ConfigError("rate limit values cannot be negative")
        if self.warmup_delay_s < 0 or self.drain_timeout_s < 0:
            raise ConfigError("delay/drain values cannot be negative")
        if self.n_clients < 1:
            raise ConfigError("need at least one client node")
        if self.max_sessions < 1:
            raise ConfigError("need at least one session per pool")
        self.sharded_config().validate()

    def sharded_config(self) -> ShardedConfig:
        return ShardedConfig(
            n_shards=self.n_shards,
            n_clients=self.n_clients,
            replication=min(self.replication, self.n_shards),
            mechanism=self.mechanism,
            object_size=self.object_size,
            n_objects=self.n_objects,
            seed=self.seed,
            fallback_after_ns=self.fallback_after_ns,
        )

    @property
    def burst(self) -> float:
        """Effective bucket capacity."""
        if self.rate_limit_burst > 0:
            return self.rate_limit_burst
        return max(self.rate_limit_qps, 1.0)

    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        **overrides: Any,
    ) -> "ServeSettings":
        """Layer env vars over defaults, then explicit overrides on
        top.  ``overrides`` values of ``None`` mean "not given" (the
        CLI passes every flag; unset ones arrive as None)."""
        if environ is None:
            import os

            environ = os.environ
        values: Dict[str, Any] = {}
        for field in dataclasses.fields(cls):
            raw = environ.get(ENV_PREFIX + field.name.upper())
            if raw is None:
                continue
            try:
                if field.type in ("int", int):
                    values[field.name] = int(raw)
                elif field.type in ("float", float):
                    values[field.name] = float(raw)
                elif field.type in ("bool", bool):
                    values[field.name] = _parse_bool(raw)
                else:
                    values[field.name] = raw
            except ValueError as exc:
                raise ConfigError(
                    f"bad {ENV_PREFIX + field.name.upper()}={raw!r}: {exc}"
                ) from None
        known = {f.name for f in dataclasses.fields(cls)}
        for name, value in overrides.items():
            if name not in known:
                raise ConfigError(f"unknown setting {name!r}")
            if value is not None:
                values[name] = value
        settings = cls(**values)
        settings.validate()
        return settings

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

"""Request vocabulary shared by the gateway and the load generator.

A :class:`TimedOp` is one client request with a *virtual-time* arrival
stamp; an :class:`ArrivalTrace` is a sorted sequence of them plus the
seed that generated it.  The same trace drives both serving modes:

* the **virtual-time replay** (:meth:`repro.serve.bridge.SimBridge.
  replay`) injects every op at exactly its arrival stamp — fully
  deterministic, byte-identical metrics run to run;
* the **wall-clock open-loop client** (:mod:`repro.loadgen.client`)
  fires each op when its arrival stamp elapses on the wall clock,
  turning the identical op stream into real socket traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError

#: Supported operation kinds.
OP_KINDS = ("get", "put", "txn")


@dataclass(frozen=True)
class TimedOp:
    """One request: ``kind`` at virtual arrival time ``at_ns``.

    ``get``/``put`` use ``key``; ``txn`` uses ``read_keys`` /
    ``write_keys`` (a read-modify-write transaction when both are
    non-empty).  ``op_id`` orders ops deterministically when two
    arrivals collide on the same float timestamp.
    """

    op_id: int
    at_ns: float
    kind: str
    key: str = ""
    read_keys: Tuple[str, ...] = ()
    write_keys: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ConfigError(
                f"unknown op kind {self.kind!r}; choose from {OP_KINDS}"
            )
        if self.at_ns < 0:
            raise ConfigError(f"arrival cannot be negative: {self.at_ns}")
        if self.kind in ("get", "put") and not self.key:
            raise ConfigError(f"{self.kind} op needs a key")
        if self.kind == "txn" and not (self.read_keys or self.write_keys):
            raise ConfigError("txn op needs read and/or write keys")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "op_id": self.op_id,
            "at_ns": self.at_ns,
            "kind": self.kind,
        }
        if self.kind == "txn":
            out["read_keys"] = list(self.read_keys)
            out["write_keys"] = list(self.write_keys)
        else:
            out["key"] = self.key
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TimedOp":
        return cls(
            op_id=int(data["op_id"]),
            at_ns=float(data["at_ns"]),
            kind=data["kind"],
            key=data.get("key", ""),
            read_keys=tuple(data.get("read_keys", ())),
            write_keys=tuple(data.get("write_keys", ())),
        )


@dataclass
class ArrivalTrace:
    """A recorded arrival process: ops sorted by ``(at_ns, op_id)``.

    ``offered_qps`` and ``seed`` travel with the trace so artifacts
    can state what was asked for next to what was achieved.
    """

    ops: List[TimedOp] = field(default_factory=list)
    offered_qps: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        order = [(op.at_ns, op.op_id) for op in self.ops]
        if order != sorted(order):
            raise ConfigError("trace ops must be sorted by (at_ns, op_id)")

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def span_ns(self) -> float:
        """Arrival span: last arrival minus first (0 for <2 ops)."""
        if len(self.ops) < 2:
            return 0.0
        return self.ops[-1].at_ns - self.ops[0].at_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offered_qps": self.offered_qps,
            "seed": self.seed,
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArrivalTrace":
        return cls(
            ops=[TimedOp.from_dict(op) for op in data.get("ops", ())],
            offered_qps=float(data.get("offered_qps", 0.0)),
            seed=int(data.get("seed", 0)),
        )


def merge_sorted(traces: Sequence[ArrivalTrace]) -> ArrivalTrace:
    """Merge several traces into one, re-sorted and re-numbered (used
    when mixing independent op streams)."""
    ops = sorted(
        (op for trace in traces for op in trace.ops),
        key=lambda op: (op.at_ns, op.op_id),
    )
    renumbered = [
        TimedOp(
            op_id=i,
            at_ns=op.at_ns,
            kind=op.kind,
            key=op.key,
            read_keys=op.read_keys,
            write_keys=op.write_keys,
        )
        for i, op in enumerate(ops)
    ]
    total_qps = sum(t.offered_qps for t in traces)
    seed = traces[0].seed if traces else 0
    return ArrivalTrace(ops=renumbered, offered_qps=total_qps, seed=seed)

"""Prometheus-text-format metrics for the serving gateway.

A tiny, dependency-free exposition layer: counters, gauges, and
histograms keyed by ``(name, sorted label items)``, rendered in the
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ that
every scraper understands.

Two properties matter more than generality:

* **Determinism** — the render order is sorted by metric name then
  label key, values never depend on wall-clock time, and any metric
  that *does* (process uptime, wall-QPS) must be registered
  ``volatile=True`` so :meth:`MetricsRegistry.render` can exclude it.
  This is what makes "same seed + same arrival trace => byte-identical
  metrics snapshot" testable: the virtual-time replay renders with
  ``include_volatile=False`` and compares strings.
* **Collectors** — the per-shard cluster stats already live on
  :class:`~repro.objstore.sharded.ShardedKV`; re-counting them would
  drift.  A *collector* is a callable returning fresh samples at
  scrape time, so ``/metrics`` always reflects the cluster's own
  counters.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigError

#: Default latency buckets (nanoseconds of *virtual* time): the
#: simulated cluster serves reads in ~1-10 us, transactions in tens of
#: us, so the ladder spans 1 us to 10 ms plus +Inf.
DEFAULT_LATENCY_BUCKETS_NS: Tuple[float, ...] = (
    1e3,
    2e3,
    5e3,
    1e4,
    2e4,
    5e4,
    1e5,
    2e5,
    5e5,
    1e6,
    2e6,
    5e6,
    1e7,
)

#: Quantiles exported for summary-style metrics.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    """Stable number formatting: integers without a trailing ``.0``,
    floats with ``repr`` (shortest round-trip — deterministic across
    runs and platforms for the same double)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing sample family."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, volatile: bool = False):
        self.name = name
        self.help = help_text
        self.volatile = volatile
        self._series: Dict[LabelItems, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name} cannot decrease")
        key = _label_items(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._series.get(_label_items(labels), 0.0)

    def samples(self) -> List[Tuple[str, LabelItems, float]]:
        return [(self.name, k, v) for k, v in self._series.items()]


class Gauge(Counter):
    """A sample family that can go up and down (or be set)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._series[_label_items(labels)] = value

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_items(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Cumulative-bucket histogram plus exact-quantile summary lines.

    Prometheus histograms are lossy by design (fixed buckets); the
    load-test story also wants exact p50/p95/p99.  Both come from the
    same ``observe`` stream: buckets for ``_bucket``/``_sum``/
    ``_count``, the retained values for ``{quantile="..."}`` lines
    (rendered under ``<name>_q``), computed with the same interpolation
    as :class:`repro.sim.stats.Samples`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_NS,
        volatile: bool = False,
    ):
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ConfigError(f"histogram {name} needs >= 1 bucket bound")
        self.name = name
        self.help = help_text
        self.volatile = volatile
        self.bounds = bounds
        self._counts: Dict[LabelItems, List[int]] = {}
        self._sums: Dict[LabelItems, float] = {}
        self._values: Dict[LabelItems, List[float]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_items(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.bounds) + 1)
            self._sums[key] = 0.0
            self._values[key] = []
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] += value
        self._values[key].append(value)

    def count(self, **labels: str) -> int:
        counts = self._counts.get(_label_items(labels))
        return sum(counts) if counts else 0

    def quantile(self, q: float, **labels: str) -> float:
        values = self._values.get(_label_items(labels))
        if not values:
            return math.nan
        ordered = sorted(values)
        if len(ordered) == 1:
            return ordered[0]
        rank = q * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def render(self) -> List[str]:
        lines: List[str] = []
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative = 0
            for bound, n in zip(self.bounds, counts):
                cumulative += n
                items = key + (("le", _fmt(bound)),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(items)} {cumulative}"
                )
            cumulative += counts[-1]
            items = key + (("le", "+Inf"),)
            lines.append(
                f"{self.name}_bucket{_render_labels(items)} {cumulative}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_fmt(self._sums[key])}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {cumulative}")
            for q in SUMMARY_QUANTILES:
                value = self.quantile(q, **dict(key))
                if math.isnan(value):
                    continue
                items = key + (("quantile", _fmt(q)),)
                lines.append(
                    f"{self.name}_q{_render_labels(items)} {_fmt(value)}"
                )
        return lines


#: One collector sample: ``(name, kind, help, labels, value)``.
CollectorSample = Tuple[str, str, str, Mapping[str, str], float]
Collector = Callable[[], Iterable[CollectorSample]]


class MetricsRegistry:
    """Holds every metric family and renders the exposition text."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._collectors: List[Collector] = []

    def _add(self, metric):
        if metric.name in self._metrics:
            raise ConfigError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str, volatile: bool = False
    ) -> Counter:
        return self._add(Counter(name, help_text, volatile=volatile))

    def gauge(self, name: str, help_text: str, volatile: bool = False) -> Gauge:
        return self._add(Gauge(name, help_text, volatile=volatile))

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_NS,
        volatile: bool = False,
    ) -> Histogram:
        return self._add(Histogram(name, help_text, buckets, volatile=volatile))

    def add_collector(self, collector: Collector) -> None:
        """Register a scrape-time sample source (e.g. the cluster's
        per-shard counters).  Collector samples are assumed
        deterministic; wall-clock data belongs in ``volatile`` metrics."""
        self._collectors.append(collector)

    def get(self, name: str):
        return self._metrics[name]

    def render(self, include_volatile: bool = True) -> str:
        """The full exposition text, deterministically ordered.

        ``include_volatile=False`` drops every metric registered as
        wall-clock-dependent — the mode the determinism tests and the
        drain artifact use."""
        blocks: Dict[str, List[str]] = {}
        for name in self._metrics:
            metric = self._metrics[name]
            if metric.volatile and not include_volatile:
                continue
            lines = [
                f"# HELP {metric.name} {metric.help}",
                f"# TYPE {metric.name} {metric.kind}",
            ]
            if isinstance(metric, Histogram):
                lines.extend(metric.render())
            else:
                for mname, items, value in sorted(metric.samples()):
                    lines.append(
                        f"{mname}{_render_labels(items)} {_fmt(value)}"
                    )
            blocks[metric.name] = lines
        collected: Dict[str, List[str]] = {}
        kinds: Dict[str, Tuple[str, str]] = {}
        for collector in self._collectors:
            for name, kind, help_text, labels, value in collector():
                kinds.setdefault(name, (kind, help_text))
                collected.setdefault(name, []).append(
                    f"{name}{_render_labels(_label_items(labels))} "
                    f"{_fmt(value)}"
                )
        for name in collected:
            kind, help_text = kinds[name]
            blocks[name] = [
                f"# HELP {name} {help_text}",
                f"# TYPE {name} {kind}",
                *sorted(collected[name]),
            ]
        out: List[str] = []
        for name in sorted(blocks):
            out.extend(blocks[name])
        return "\n".join(out) + "\n"


def parse_samples(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{'name{labels}': value}`` —
    what the CI smoke job and the tests use to assert on a scrape."""
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            out[series] = float(value)
        except ValueError:
            continue
    return out

"""``repro-serve`` — boot the gateway over a simulated cluster.

Every flag has a ``REPRO_SERVE_*`` environment-variable twin (flags
win); see :mod:`repro.serve.settings` for the resolution order.

Examples::

    repro-serve --port 8373 --shards 4 --mechanism sabre
    REPRO_SERVE_MODE=paced repro-serve --time-scale 1000
    repro-serve --rate-limit-qps 500 --metrics-artifact final_metrics.prom
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.serve.gateway import serve
from repro.serve.settings import MODES, ServeSettings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="HTTP gateway over the simulated sharded cluster.",
    )
    net = parser.add_argument_group("network")
    net.add_argument("--host", help="bind address (default 127.0.0.1)")
    net.add_argument("--port", type=int, help="bind port (default 8373)")

    cluster = parser.add_argument_group("cluster")
    cluster.add_argument("--shards", type=int, dest="n_shards")
    cluster.add_argument("--replication", type=int)
    cluster.add_argument("--mechanism")
    cluster.add_argument("--objects", type=int, dest="n_objects")
    cluster.add_argument("--object-size", type=int, dest="object_size")
    cluster.add_argument("--seed", type=int)
    cluster.add_argument("--clients", type=int, dest="n_clients")
    cluster.add_argument(
        "--fallback-after-ns", type=float, dest="fallback_after_ns"
    )

    bridge = parser.add_argument_group("time bridge")
    bridge.add_argument("--mode", choices=MODES)
    bridge.add_argument("--time-scale", type=float, dest="time_scale")
    bridge.add_argument(
        "--request-timeout-ns", type=float, dest="request_timeout_ns"
    )
    bridge.add_argument(
        "--txn-max-attempts", type=int, dest="txn_max_attempts"
    )
    bridge.add_argument("--max-sessions", type=int, dest="max_sessions")

    prod = parser.add_argument_group("production trimmings")
    prod.add_argument("--rate-limit-qps", type=float, dest="rate_limit_qps")
    prod.add_argument(
        "--rate-limit-burst", type=float, dest="rate_limit_burst"
    )
    prod.add_argument("--warmup-delay", type=float, dest="warmup_delay_s")
    prod.add_argument("--drain-timeout", type=float, dest="drain_timeout_s")
    prod.add_argument("--metrics-artifact", dest="metrics_artifact")
    return parser


def settings_from_args(args: argparse.Namespace) -> ServeSettings:
    overrides = {k: v for k, v in vars(args).items() if v is not None}
    return ServeSettings.from_env(**overrides)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        settings = settings_from_args(args)
    except ConfigError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    print(
        f"repro-serve: {settings.n_shards} shards x{settings.replication} "
        f"({settings.mechanism}), mode={settings.mode}, "
        f"listening on http://{settings.host}:{settings.port}",
        flush=True,
    )
    try:
        asyncio.run(serve(settings))
    except KeyboardInterrupt:
        pass
    print("repro-serve: drained, bye", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The time bridge: wall-clock requests over a virtual-time cluster.

Requests arrive in wall-clock time; the cluster runs in simulated
nanoseconds.  :class:`SimBridge` owns the :class:`~repro.sim.engine.
Simulator` and closes that gap:

* every request is **injected as a scheduled event** at a virtual
  arrival time (``max(now, stamp)``) and runs as a simulation process
  through the exact machinery the in-process harnesses use — the timed
  memory hierarchy, the :class:`~repro.workloads.protocols.
  ReadProtocol` registry, RPC worker pools, and whatever
  fault/failover/reshard managers are armed;
* virtual time advances either **paced** against the wall clock
  (interactive mode — the gateway's driver calls :meth:`run_until`
  with a wall-derived target) or **as fast as possible** (load-test
  mode — :meth:`run_pending` drains everything in flight in one call);
* when the simulated read/write/transaction resolves, the request's
  completion callback fires *inside* the simulation (so all metrics
  are recorded in deterministic virtual time) and the gateway then
  completes the socket-side future.

The bridge itself never touches the wall clock, asyncio, or sockets —
:meth:`replay` runs an :class:`~repro.serve.ops.ArrivalTrace` to
completion synchronously, which is what makes load-test mode
deterministic: same seed + same trace => byte-identical metrics
snapshot (``tests/test_serve.py`` pins this).

Concurrency within the simulation is served by *session pools*:
:class:`~repro.objstore.sharded.ReaderSession` holds a private landing
buffer (two concurrent lookups on one session would collide), so the
bridge checks sessions out per request and returns them on completion.
Pools grow on demand and allocation order is deterministic under
replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.objstore.sharded import ReaderSession, ShardedKV
from repro.objstore.txn import TxnManager, TxnSession
from repro.serve.metrics import MetricsRegistry
from repro.serve.ops import ArrivalTrace, TimedOp
from repro.serve.settings import ServeSettings
from repro.sim.stats import Samples

#: Response statuses an op can resolve to (HTTP mapping in the
#: gateway: ok=200, timeout=504, conflict=409, not_found=404,
#: bad_request=400, unavailable=503).
STATUSES = ("ok", "timeout", "conflict", "not_found", "bad_request")


@dataclass
class OpResult:
    """One completed request, stamped in virtual time."""

    op: TimedOp
    status: str
    started_ns: float
    finished_ns: float
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_ns(self) -> float:
        return self.finished_ns - self.started_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op_id": self.op.op_id,
            "kind": self.op.kind,
            "status": self.status,
            "latency_ns": self.latency_ns,
            **self.detail,
        }


@dataclass
class ReplayReport:
    """Aggregate outcome of one trace replay (all in virtual time)."""

    offered_qps: float
    n_ops: int
    n_ok: int
    n_errors: int
    errors_by_status: Dict[str, int]
    achieved_qps: float
    makespan_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    mean_ns: float
    undetected_violations: int
    results: List[OpResult] = field(default_factory=list)

    @property
    def achieved_ratio(self) -> float:
        """Achieved over offered throughput — the saturation signal:
        ~1.0 while the cluster keeps up, collapsing once completions
        lag arrivals."""
        if self.offered_qps <= 0:
            return 1.0
        return self.achieved_qps / self.offered_qps

    def to_row(self) -> Dict[str, float]:
        return {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "achieved_ratio": self.achieved_ratio,
            "n_ops": self.n_ops,
            "n_ok": self.n_ok,
            "n_errors": self.n_errors,
            "p50_ns": self.p50_ns,
            "p95_ns": self.p95_ns,
            "p99_ns": self.p99_ns,
            "mean_ns": self.mean_ns,
            "makespan_ns": self.makespan_ns,
            "undetected_violations": self.undetected_violations,
        }


class SimBridge:
    """Owns the simulated cluster and injects requests into it."""

    def __init__(self, settings: ServeSettings):
        settings.validate()
        self.settings = settings
        self.kv = ShardedKV(settings.sharded_config())
        self.txn = TxnManager(self.kv)
        self.sim = self.kv.cluster.sim
        self.ready = False

        self._reader_pool: List[ReaderSession] = []
        self._txn_pool: List[TxnSession] = []
        self._reader_live = 0
        self._txn_live = 0
        self._reader_waiters: Deque = deque()
        self._txn_waiters: Deque = deque()
        self._next_client = 0
        self.sessions_created = 0

        self.submitted = 0
        self.completed = 0
        self.latency = Samples("serve_virtual_ns")

        self.metrics = MetricsRegistry()
        m = self.metrics
        self._requests_total = m.counter(
            "repro_requests_total",
            "Requests completed, by op kind and status.",
        )
        self._inflight = m.gauge(
            "repro_requests_inflight",
            "Requests submitted but not yet completed.",
        )
        self._ready_gauge = m.gauge(
            "repro_ready", "1 once the cluster is warm and serving."
        )
        self._latency_hist = m.histogram(
            "repro_request_virtual_ns",
            "Per-request virtual-time latency (ns), by op kind.",
        )
        self._sessions_gauge = m.gauge(
            "repro_sessions_created",
            "Reader/txn sessions the bridge has materialized.",
        )
        self._session_waits = m.counter(
            "repro_session_waits_total",
            "Requests that queued for a free session, by pool.",
        )
        m.add_collector(self._collect_cluster)

    # ------------------------------------------------------------------
    # bounded session pools (the simulated server's "thread pools")
    # ------------------------------------------------------------------
    def _spread_client(self) -> int:
        client = self._next_client % self.kv.cfg.clients
        self._next_client += 1
        return client

    def _acquire_reader(self):
        """Check a reader session out, queueing FIFO when all
        ``max_sessions`` are busy (a simulation generator)."""
        while True:
            if self._reader_pool:
                return self._reader_pool.pop()
            if self._reader_live < self.settings.max_sessions:
                self._reader_live += 1
                self.sessions_created += 1
                self._sessions_gauge.set(self.sessions_created)
                return self.kv.reader_session(self._spread_client())
            waiter = self.sim.event()
            self._reader_waiters.append(waiter)
            self._session_waits.inc(pool="reader")
            yield waiter

    def _release_reader(self, session: ReaderSession) -> None:
        self._reader_pool.append(session)
        if self._reader_waiters:
            self._reader_waiters.popleft().succeed()

    def _acquire_txn(self):
        while True:
            if self._txn_pool:
                return self._txn_pool.pop()
            if self._txn_live < self.settings.max_sessions:
                self._txn_live += 1
                self.sessions_created += 1
                self._sessions_gauge.set(self.sessions_created)
                return self.txn.session(self._spread_client())
            waiter = self.sim.event()
            self._txn_waiters.append(waiter)
            self._session_waits.inc(pool="txn")
            yield waiter

    def _release_txn(self, session: TxnSession) -> None:
        self._txn_pool.append(session)
        if self._txn_waiters:
            self._txn_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # warmup / readiness
    # ------------------------------------------------------------------
    def warm(self) -> int:
        """Read one key from every member shard (through the full
        protocol read path) so caches, RPC planes, and protocol
        instances are exercised before ``/readyz`` goes true.  Runs
        the simulation synchronously; returns the number of warm
        reads consumed."""
        wanted = set(self.kv.member_shards())
        picks: List[str] = []
        for key in self.kv.keys():
            primary = self.kv.primary_of(key)
            if primary in wanted:
                wanted.discard(primary)
                picks.append(key)
            if not wanted:
                break
        consumed = {"n": 0}

        def warm_proc(key: str):
            session = yield from self._acquire_reader()
            try:
                ok = yield from session.lookup(
                    key, self.sim.now + self.settings.request_timeout_ns
                )
            finally:
                self._release_reader(session)
            if ok:
                consumed["n"] += 1

        for key in picks:
            self.sim.process(warm_proc(key))
        self.sim.run()
        self.ready = True
        self._ready_gauge.set(1)
        return consumed["n"]

    # ------------------------------------------------------------------
    # op execution (simulation generators)
    # ------------------------------------------------------------------
    def _run_get(self, op: TimedOp, detail: Dict[str, Any], t_end: float):
        session = yield from self._acquire_reader()
        if self.sim.now >= t_end:
            # The whole budget went to queueing for a session.
            self._release_reader(session)
            return "timeout"
        before = [len(s.op_latency) for s in session.stats]
        try:
            ok = yield from session.lookup(op.key, t_end)
        finally:
            self._release_reader(session)
        if not ok:
            return "timeout"
        for shard, stats in enumerate(session.stats):
            if len(stats.op_latency) > before[shard]:
                version, _data = session.last_read(shard)
                detail["shard"] = shard
                detail["version"] = version
                break
        return "ok"

    def _run_put(self, op: TimedOp, detail: Dict[str, Any], t_end: float):
        reply = yield self.kv.put(self._spread_client(), op.key, t_end=t_end)
        if reply is None:
            return "timeout"
        detail["primary"] = self.kv.current_primary(op.key)
        return "ok"

    def _run_txn(self, op: TimedOp, detail: Dict[str, Any], t_end: float):
        session = yield from self._acquire_txn()
        if self.sim.now >= t_end:
            self._release_txn(session)
            return "timeout"
        try:
            outcome = yield from session.run(
                list(op.read_keys),
                list(op.write_keys),
                t_end=t_end,
                max_attempts=self.settings.txn_max_attempts,
            )
        finally:
            self._release_txn(session)
        detail["attempts"] = outcome.attempts
        detail["aborts"] = outcome.aborts
        if outcome.committed:
            return "ok"
        return "timeout" if outcome.timed_out else "conflict"

    def _op_proc(self, op: TimedOp):
        started = self.sim.now
        # The deadline counts from *arrival*: time spent queueing for a
        # session eats the same budget the cluster op does, so overload
        # answers 504 instead of stretching the backlog forever.
        t_end = started + self.settings.request_timeout_ns
        detail: Dict[str, Any] = {}
        try:
            if op.kind == "get":
                status = yield from self._run_get(op, detail, t_end)
            elif op.kind == "put":
                status = yield from self._run_put(op, detail, t_end)
            else:
                status = yield from self._run_txn(op, detail, t_end)
        except ConfigError as exc:
            status = "not_found"
            detail["error"] = str(exc)
        return OpResult(
            op=op,
            status=status,
            started_ns=started,
            finished_ns=self.sim.now,
            detail=detail,
        )

    # ------------------------------------------------------------------
    # injection and driving
    # ------------------------------------------------------------------
    def submit(
        self,
        op: TimedOp,
        at_ns: Optional[float] = None,
        callback: Optional[Callable[[OpResult], None]] = None,
    ) -> None:
        """Inject ``op`` at virtual time ``max(now, at_ns)`` (now when
        unstamped).  ``callback`` fires inside the simulation when the
        op resolves — after the bridge has recorded its metrics."""
        sim = self.sim
        at = sim.now if at_ns is None else max(at_ns, sim.now)
        self.submitted += 1
        self._inflight.inc()
        sim.call_at(at, self._launch, op, callback)

    def _launch(
        self, op: TimedOp, callback: Optional[Callable[[OpResult], None]]
    ) -> None:
        proc = self.sim.process(self._op_proc(op))
        proc.add_callback(lambda event: self._finish(event.value, callback))

    def _finish(
        self, result: OpResult, callback: Optional[Callable[[OpResult], None]]
    ) -> None:
        self.completed += 1
        self._inflight.dec()
        self._requests_total.inc(op=result.op.kind, code=result.status)
        self._latency_hist.observe(result.latency_ns, op=result.op.kind)
        self.latency.add(result.latency_ns)
        if callback is not None:
            callback(result)

    @property
    def inflight(self) -> int:
        return self.submitted - self.completed

    def run_pending(self) -> float:
        """Load-test mode: run the simulation until everything in
        flight completes (every op carries a virtual deadline, so this
        always terminates).  Returns the virtual time reached."""
        return self.sim.run()

    def run_until(self, target_ns: float) -> float:
        """Paced mode: advance virtual time to ``target_ns`` at most,
        firing whatever is due.  Returns the virtual time reached."""
        return self.sim.run(until=target_ns)

    def next_event_ns(self) -> float:
        """Virtual time of the next scheduled event (inf if idle)."""
        return self.sim.peek()

    # ------------------------------------------------------------------
    # deterministic replay
    # ------------------------------------------------------------------
    def replay(self, trace: ArrivalTrace) -> ReplayReport:
        """Run a whole arrival trace to completion in virtual time.

        Every op is scheduled up front at its arrival stamp *relative
        to the current virtual time* (warmup has already advanced the
        clock; shifting the whole trace preserves its pacing), with
        ties broken by trace order through the scheduler's sequence
        numbers.  Then the simulation runs dry.  No wall-clock state is
        consulted anywhere on this path."""
        results: List[OpResult] = []
        base = self.sim.now
        first_arrival = (
            base + trace.ops[0].at_ns if trace.ops else base
        )
        for op in trace.ops:
            self.submit(op, at_ns=base + op.at_ns, callback=results.append)
        end_ns = self.sim.run()
        return self._summarize(trace, results, first_arrival, end_ns)

    def _summarize(
        self,
        trace: ArrivalTrace,
        results: List[OpResult],
        first_arrival: float,
        end_ns: float,
    ) -> ReplayReport:
        lat = Samples("replay_ns")
        errors: Dict[str, int] = {}
        n_ok = 0
        last_finish = first_arrival
        for r in results:
            lat.add(r.latency_ns)
            if r.ok:
                n_ok += 1
            else:
                errors[r.status] = errors.get(r.status, 0) + 1
            if r.finished_ns > last_finish:
                last_finish = r.finished_ns
        makespan = max(last_finish - first_arrival, 0.0)
        achieved = n_ok / makespan * 1e9 if makespan > 0 else 0.0
        return ReplayReport(
            offered_qps=trace.offered_qps,
            n_ops=len(results),
            n_ok=n_ok,
            n_errors=len(results) - n_ok,
            errors_by_status=errors,
            achieved_qps=achieved,
            makespan_ns=makespan,
            p50_ns=lat.percentile(50.0),
            p95_ns=lat.percentile(95.0),
            p99_ns=lat.percentile(99.0),
            mean_ns=lat.mean,
            undetected_violations=self.undetected_violations(),
            results=results,
        )

    # ------------------------------------------------------------------
    # cluster stats -> metrics
    # ------------------------------------------------------------------
    def undetected_violations(self) -> int:
        return sum(
            s.undetected_violations for s in self.kv.all_reader_stats()
        )

    def metrics_snapshot(self, include_volatile: bool = False) -> str:
        """The deterministic metrics rendering (volatile wall-clock
        series excluded by default — this string is the determinism
        test's artifact)."""
        return self.metrics.render(include_volatile=include_volatile)

    def _collect_cluster(self):
        """Scrape-time collector: every per-shard counter the cluster
        already keeps, exported as ``repro_shard_*``/``repro_txn_*``
        series with a ``shard`` label, plus cluster-wide series.  The
        full catalog is documented in docs/serving.md and asserted by
        the serve-smoke CI job."""
        samples = []
        for row in self.kv.shard_load():
            shard = str(int(row["shard"]))
            for column, value in row.items():
                if column == "shard":
                    continue
                kind = "gauge" if column in ("serving", "member", "objects") else "counter"
                samples.append(
                    (
                        f"repro_shard_{column}",
                        kind,
                        f"Per-shard {column} (cluster-side counter).",
                        {"shard": shard},
                        float(value),
                    )
                )
        for row in self.txn.txn_rows():
            shard = str(int(row["shard"]))
            for column, value in row.items():
                if column == "shard":
                    continue
                samples.append(
                    (
                        f"repro_txn_{column}",
                        "counter",
                        f"Per-shard transaction {column}.",
                        {"shard": shard},
                        float(value),
                    )
                )
        fabric = self.kv.cluster.fabric
        samples.extend(
            [
                (
                    "repro_partition_refusals_total",
                    "counter",
                    "Conversations refused by severed links.",
                    {},
                    float(fabric.partition_refusals),
                ),
                (
                    "repro_virtual_time_ns",
                    "gauge",
                    "Current virtual time of the owned simulator.",
                    {},
                    float(self.sim.now),
                ),
                (
                    "repro_sim_events_fired_total",
                    "counter",
                    "Events the owned simulator has dispatched.",
                    {},
                    float(self.sim.events_fired),
                ),
                (
                    "repro_sim_events_scheduled_total",
                    "counter",
                    "Events ever scheduled on the owned simulator.",
                    {},
                    float(self.sim.events_scheduled),
                ),
            ]
        )
        return samples

"""Deterministic random-number helpers.

Every stochastic component takes an explicit seed so that simulations
are reproducible run to run; seeds are derived from a root seed and a
stable component label, never from global state.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a stable 64-bit seed from a root seed and labels."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(str(root_seed).encode())
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest(), "little")


def make_rng(root_seed: int, *labels: object) -> random.Random:
    """A private ``random.Random`` stream for one component."""
    return random.Random(derive_seed(root_seed, *labels))

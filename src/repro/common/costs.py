"""Calibrated software cost model.

The paper runs real software (FaRM + a KV store) on a cycle-accurate
simulator.  We replace the instruction stream with per-operation and
per-byte latency charges.  Every constant below is derived from a
number the paper itself reports, so the *shape* of each figure follows
from structure rather than tuning:

* Version stripping: Fig. 1 shows stripping an 8 KB object costs
  ~2.2 us (50 % of a ~4.5 us end-to-end read), i.e. ~0.27 ns per
  payload byte on the modeled 2 GHz core.  The paper hand-tuned the
  strip kernel for maximum MLP in 1 KB chunks, so we model a per-chunk
  startup cost (exposed LLC latency) plus a streaming per-byte cost.
* FaRM framework time: Fig. 1's "framework+application" component is
  several hundred ns for small objects and grows mildly with size
  (buffer management).  §7.3 attributes part of the SABRe win to a ~7 %
  smaller instruction working set relaxing L1i pressure; we model that
  as a multiplicative frontend factor on the framework fixed cost.
* Checksums: §2.1 quotes ~a dozen CPU cycles per checksummed byte for
  Pilaf's CRC64 (~6 ns/B at 2 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.common.units import CACHE_BLOCK


@dataclass(frozen=True)
class SoftwareCosts:
    """Latency charges (ns) for the software layers above soNUMA."""

    # --- microbenchmark / application ---------------------------------
    #: Loop overhead per microbenchmark iteration (op setup, branch).
    microbench_loop_ns: float = 10.0
    #: Application touch cost per payload byte once the clean object is
    #: in the L1d (the baseline's strip implicitly pulls it there, §7.3).
    app_consume_ns_per_byte: float = 0.05
    #: Application touch cost per byte when the clean object is only
    #: LLC-resident (the zero-copy SABRe path, §7.3: low-MLP FaRM
    #: application phase without a data prefetcher).
    app_consume_llc_ns_per_byte: float = 0.25
    #: Same, for the hand-tuned high-MLP microbenchmark loop (§7.2).
    microbench_consume_ns_per_byte: float = 0.08
    #: Fixed application cost per operation (call, bookkeeping).
    app_fixed_ns: float = 30.0

    # --- FaRM framework ------------------------------------------------
    #: Fixed FaRM fast-path cost per lookup: request setup, address
    #: computation, fast-path checks (~500 instructions at IPC ~1).
    farm_fixed_ns: float = 240.0
    #: KV index lookup (hash + bucket probe) charged to the framework.
    farm_lookup_ns: float = 60.0
    #: Buffer management per wire byte (allocation bookkeeping for the
    #: intermediate transfer buffer; baseline path only).
    farm_buffer_ns_per_byte: float = 0.022
    #: Fixed buffer-management cost (alloc/free of the transfer buffer).
    farm_buffer_fixed_ns: float = 55.0
    #: Frontend relief factor for the SABRe build (§7.3: ~7 % smaller
    #: instruction footprint -> fewer L1i conflict misses).
    sabre_frontend_factor: float = 0.85

    # --- per-cache-line version stripping (FaRM baseline) --------------
    #: Streaming strip+compare cost per *wire* byte.
    strip_ns_per_byte: float = 0.27
    #: Exposed startup latency per 1 KB MLP chunk (§7.3: the strip
    #: kernel was hand-tuned at 1 KB granularity).
    strip_chunk_bytes: int = 1024
    strip_chunk_startup_ns: float = 24.0
    #: Fixed cost to enter/exit the strip kernel and publish the result.
    strip_fixed_ns: float = 28.0

    # --- Pilaf-style checksums (ablation baseline) ----------------------
    checksum_ns_per_byte: float = 6.0
    checksum_fixed_ns: float = 40.0

    # --- local reads (Fig. 10) -----------------------------------------
    #: Local streaming read bandwidth per core for LLC/memory-resident
    #: data (ns per byte); perCL local reads additionally pay the strip
    #: costs above and read the inflated wire size.
    local_read_ns_per_byte: float = 0.2
    #: Fixed local read-path cost (API call + key lookup + header check).
    local_fixed_ns: float = 200.0

    # --- writers ---------------------------------------------------------
    #: Cost for a writer to update one cache block in place (store +
    #: coherence upgrade, amortized).
    writer_block_ns: float = 14.0
    #: Fixed per-update cost (lock/version bump bookkeeping).
    writer_fixed_ns: float = 40.0

    # --- RPC (FaRM writes are shipped to the data owner, §2.1) ----------
    rpc_dispatch_ns: float = 180.0
    rpc_marshal_ns_per_byte: float = 0.08

    # Each cost is a pure function of (config, sizes) and a run only
    # touches a handful of distinct sizes (the object ladder), so the
    # per-access computations memoize behind config-keyed caches (the
    # frozen dataclass is hashable; ``self`` is part of every key).
    @lru_cache(maxsize=4096)
    def strip_cost_ns(self, wire_bytes: int) -> float:
        """Cost to strip per-cache-line versions off ``wire_bytes`` of
        transferred data and check them (FaRM baseline read path)."""
        if wire_bytes <= 0:
            return 0.0
        chunks = (wire_bytes + self.strip_chunk_bytes - 1) // self.strip_chunk_bytes
        # The first chunk's startup overlaps the kernel entry (already
        # charged via strip_fixed_ns); later chunks expose their own.
        return (
            self.strip_fixed_ns
            + (chunks - 1) * self.strip_chunk_startup_ns
            + wire_bytes * self.strip_ns_per_byte
        )

    @lru_cache(maxsize=4096)
    def checksum_cost_ns(self, payload_bytes: int) -> float:
        """Cost to CRC64 ``payload_bytes`` (Pilaf baseline)."""
        if payload_bytes <= 0:
            return 0.0
        return self.checksum_fixed_ns + payload_bytes * self.checksum_ns_per_byte

    @lru_cache(maxsize=4096)
    def buffer_mgmt_ns(self, wire_bytes: int) -> float:
        """Intermediate-buffer management for the non-zero-copy path."""
        return self.farm_buffer_fixed_ns + wire_bytes * self.farm_buffer_ns_per_byte

    @lru_cache(maxsize=4096)
    def app_consume_ns(self, payload_bytes: int, resident: str = "l1") -> float:
        """Application-side consumption of the clean object.

        ``resident`` selects where the clean bytes sit when the
        application walks them: ``l1`` (baseline: the strip kernel just
        pulled them into the L1d), ``llc`` (zero-copy SABRe path in the
        FaRM app), or ``microbench`` (hand-tuned high-MLP loop).
        """
        per_byte = {
            "l1": self.app_consume_ns_per_byte,
            "llc": self.app_consume_llc_ns_per_byte,
            "microbench": self.microbench_consume_ns_per_byte,
        }[resident]
        return self.app_fixed_ns + payload_bytes * per_byte

    @lru_cache(maxsize=4096)
    def framework_ns(self, *, zero_copy: bool, wire_bytes: int) -> float:
        """FaRM framework time for one lookup.

        The zero-copy (SABRe) build skips buffer management entirely and
        enjoys the smaller-instruction-footprint frontend factor.
        """
        fixed = self.farm_fixed_ns + self.farm_lookup_ns
        if zero_copy:
            return fixed * self.sabre_frontend_factor
        return fixed + self.buffer_mgmt_ns(wire_bytes)

    @lru_cache(maxsize=4096)
    def writer_update_ns(self, payload_bytes: int) -> float:
        """Local in-place object update under the odd/even version
        protocol (version bump, block stores, version bump)."""
        blocks = max(1, (payload_bytes + CACHE_BLOCK - 1) // CACHE_BLOCK)
        return self.writer_fixed_ns + blocks * self.writer_block_ns


DEFAULT_COSTS = SoftwareCosts()

"""Shared building blocks: units, configuration, cost models, errors."""

from repro.common.config import (
    CacheConfig,
    ClusterConfig,
    CoreConfig,
    FabricConfig,
    MemoryConfig,
    NocConfig,
    NodeConfig,
    RmcConfig,
    SabreConfig,
    SabreMode,
)
from repro.common.errors import (
    AtomicityError,
    ConfigError,
    ReproError,
    SimulationError,
)
from repro.common.units import (
    CACHE_BLOCK,
    GHZ,
    KB,
    MB,
    cycles_to_ns,
    gbps_to_bytes_per_ns,
    ns_to_cycles,
)

__all__ = [
    "CACHE_BLOCK",
    "GHZ",
    "KB",
    "MB",
    "AtomicityError",
    "CacheConfig",
    "ClusterConfig",
    "ConfigError",
    "CoreConfig",
    "FabricConfig",
    "MemoryConfig",
    "NocConfig",
    "NodeConfig",
    "ReproError",
    "RmcConfig",
    "SabreConfig",
    "SabreMode",
    "SimulationError",
    "cycles_to_ns",
    "gbps_to_bytes_per_ns",
    "ns_to_cycles",
]

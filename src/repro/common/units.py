"""Units and unit conversions used throughout the simulator.

All simulated time is measured in **nanoseconds** (floats), all sizes in
**bytes** (ints), and all bandwidths internally in **bytes per
nanosecond** (1 GB/s == 1 byte/ns when GB means 1e9 bytes, the
convention the paper uses for fabric and memory bandwidth).
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB

#: Cache block (cache line) size in bytes; fixed by Table 2 of the paper.
CACHE_BLOCK = 64

#: One gigahertz expressed in cycles per nanosecond.
GHZ = 1.0


def cycles_to_ns(cycles: float, freq_ghz: float) -> float:
    """Convert a cycle count at ``freq_ghz`` GHz to nanoseconds."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return cycles / freq_ghz


def ns_to_cycles(ns: float, freq_ghz: float) -> float:
    """Convert nanoseconds to cycles at ``freq_ghz`` GHz."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return ns * freq_ghz


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert GB/s (1e9 bytes per second) to bytes per nanosecond."""
    if gbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {gbps}")
    return gbps  # 1e9 B/s == 1 B/ns


def bytes_per_ns_to_gbps(bpn: float) -> float:
    """Convert bytes per nanosecond back to GB/s."""
    if bpn < 0:
        raise ValueError(f"bandwidth must be non-negative, got {bpn}")
    return bpn


def blocks_in(size_bytes: int, block: int = CACHE_BLOCK) -> int:
    """Number of cache blocks needed to hold ``size_bytes`` bytes."""
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    return (size_bytes + block - 1) // block

"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal state."""


class AtomicityError(ReproError):
    """A torn (non-atomic) object read was consumed by the application.

    Raised by validation layers when a mechanism reports success for a
    read whose payload mixes data from different committed versions.
    A correct mechanism never lets this propagate.
    """


class ProtocolError(ReproError):
    """A soNUMA protocol invariant was violated (e.g. reply without
    a matching request, duplicate completion)."""

"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an illegal state."""


class AtomicityError(ReproError):
    """A torn (non-atomic) object read was consumed by the application.

    Raised by validation layers when a mechanism reports success for a
    read whose payload mixes data from different committed versions.
    A correct mechanism never lets this propagate.
    """


class ProtocolError(ReproError):
    """A soNUMA protocol invariant was violated (e.g. reply without
    a matching request, duplicate completion)."""


class ShardCrashedError(ReproError):
    """An operation targeted a node whose lease has expired (crashed).

    This is a *value*, not a raised exception, on the failure paths the
    failover subsystem injects: an RPC completion (or write ack) whose
    target crashed triggers with an instance of this class instead of
    reply bytes, so callers re-route to the promoted replica instead of
    unwinding the whole simulation.
    """

    def __init__(self, node_id: int, detail: str = ""):
        suffix = f": {detail}" if detail else ""
        super().__init__(f"node {node_id} crashed{suffix}")
        self.node_id = node_id


class LinkPartitionedError(ShardCrashedError):
    """An operation could not start because a partition window severs
    the link to its destination.

    A subclass of :class:`ShardCrashedError` on purpose: to the caller a
    partitioned shard is indistinguishable from a crashed one (FLP says
    so), and every redirect/abort/fallback path that handles the crash
    error must handle this one identically.  Like its parent it is a
    *value* on completion events, never raised.  Conversations already
    in flight when the window opens are allowed to drain — the fabric
    is lossless — so only *new* calls and posts see this error.
    """

    def __init__(self, src_node: int, dst_node: int, detail: str = ""):
        super().__init__(dst_node, detail or "link partitioned")
        self.src_node = src_node

"""System configuration mirroring Table 2 of the paper.

Every dataclass below corresponds to one row group of Table 2
("System parameters for simulation on Flexus").  Default values are the
paper's values; experiments override individual fields through
``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK, KB, MB


class SabreMode(Enum):
    """Destination-side concurrency-control variant implemented by the R2P2.

    ``SPECULATIVE``
        LightSABRes proper: version read overlapped with data reads,
        stream-buffer snooping guards the window of vulnerability (§3.3).
    ``NO_SPECULATION``
        The straw-man hardware SABRe of §3.2: the object's version is
        read and completed *before* any data access is issued.
    ``LOCKING``
        Destination-side shared reader locks (§3.2, Table 1 upper-right):
        the R2P2 acquires the object's reader lock, reads, releases.
    ``NAIVE_UNSAFE``
        The broken overlap of Fig. 2: data reads overlap the version
        read *without* coherence snooping.  Exists only to demonstrate
        that the race produces undetected torn reads; never use it.
    """

    SPECULATIVE = "speculative"
    NO_SPECULATION = "no_speculation"
    LOCKING = "locking"
    NAIVE_UNSAFE = "naive_unsafe"


@dataclass(frozen=True)
class CoreConfig:
    """ARM Cortex-A57-like cores (Table 2)."""

    count: int = 16
    freq_ghz: float = 2.0
    dispatch_width: int = 3
    rob_entries: int = 128

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class CacheConfig:
    """L1 / LLC parameters (Table 2)."""

    block_bytes: int = CACHE_BLOCK
    l1d_bytes: int = 32 * KB
    l1i_bytes: int = 48 * KB
    l1_latency_cycles: int = 3
    l1_mshrs: int = 32
    llc_bytes: int = 2 * MB
    llc_latency_cycles: int = 6
    llc_banks: int = 16

    @property
    def l1d_blocks(self) -> int:
        return self.l1d_bytes // self.block_bytes

    @property
    def llc_blocks(self) -> int:
        return self.llc_bytes // self.block_bytes


@dataclass(frozen=True)
class MemoryConfig:
    """DDR4 main memory (Table 2): 50 ns latency, 4 x 25.6 GBps."""

    latency_ns: float = 50.0
    channels: int = 4
    channel_gbps: float = 25.6
    #: Fixed controller overhead added to every DRAM access.  Calibrated
    #: so that the end-to-end average memory access latency observed by
    #: an on-chip agent is ~90 ns, the figure §5.1 quotes.
    controller_overhead_ns: float = 22.0

    @property
    def total_gbps(self) -> float:
        return self.channels * self.channel_gbps


@dataclass(frozen=True)
class NocConfig:
    """2D mesh on-chip interconnect (Table 2): 16 B links, 3 cycles/hop."""

    width: int = 4
    height: int = 4
    link_bytes: int = 16
    cycles_per_hop: int = 3
    freq_ghz: float = 2.0

    @property
    def hop_ns(self) -> float:
        return self.cycles_per_hop / self.freq_ghz


@dataclass(frozen=True)
class RmcConfig:
    """Remote Memory Controller (Table 2): three independent pipelines
    at 1 GHz; one RGP/RCP frontend per core; four backends and four
    R2P2s along the chip edge (Fig. 6)."""

    freq_ghz: float = 1.0
    backends: int = 4
    #: Target per-R2P2 peak bandwidth used for stream-buffer sizing (§5.1).
    r2p2_peak_gbps: float = 20.0
    #: RGP backend occupancy per unrolled request, in RMC cycles.  Three
    #: cycles per 64 B request = 21.3 GBps per pipeline, matching the
    #: paper's 20 GBps per-R2P2 sustained-bandwidth target (§5.1) that
    #: its Little's-law stream-buffer sizing assumes.
    rgp_request_cycles: int = 3
    #: R2P2 occupancy per serviced cache block, in RMC cycles.  Same
    #: 20 GBps sustained-rate reasoning as ``rgp_request_cycles``.
    r2p2_block_cycles: int = 3
    #: Cost for a core to post a WQ entry (cacheable memory-mapped queue).
    wq_post_ns: float = 12.0
    #: RGP frontend poll-to-pickup delay for a new WQ entry.
    wq_pickup_ns: float = 10.0
    #: RCP frontend cost to write a CQ entry + core poll-to-notice delay.
    cq_write_ns: float = 8.0
    cq_poll_ns: float = 10.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass(frozen=True)
class SabreConfig:
    """LightSABRes provisioning (Table 2 + §5.1 sizing discussion)."""

    mode: SabreMode = SabreMode.SPECULATIVE
    stream_buffers: int = 16
    stream_buffer_depth: int = 32
    #: Whether a SABRe is pinned to a single R2P2 (§5.1's final choice)
    #: or striped across all R2P2s (rejected design; kept for ablation).
    pin_to_single_r2p2: bool = True
    #: Hardware retry on abort (rejected design, §5.1) vs exposing the
    #: failure to software through the CQ success field.  Retries are
    #: only possible before any reply has been sent (request-reply
    #: invariant) and are bounded by ``hardware_retry_limit``.
    hardware_retry: bool = False
    hardware_retry_limit: int = 4
    #: Destination-locking variant: delay between lock re-checks when
    #: the object is write-locked.
    lock_retry_ns: float = 30.0

    def att_entry_bytes(self) -> int:
        """24 B per ATT entry (§5.1)."""
        return 24

    def stream_buffer_bytes(self) -> int:
        """11 B per stream buffer (§5.1): tag, length, bitvector."""
        return 11

    def total_sram_bytes(self) -> int:
        """Total per-R2P2 SRAM requirement; the paper reports 560 B."""
        return self.stream_buffers * (
            self.att_entry_bytes() + self.stream_buffer_bytes()
        )


@dataclass(frozen=True)
class FabricConfig:
    """Inter-node network (Table 2): fixed 35 ns/hop, 100 GBps links."""

    hop_latency_ns: float = 35.0
    link_gbps: float = 100.0
    #: Per-packet header bytes (request/reply framing).
    header_bytes: int = 16


@dataclass(frozen=True)
class NodeConfig:
    """One soNUMA SoC node: 16-core chip + RMC + memory (Fig. 6)."""

    cores: CoreConfig = field(default_factory=CoreConfig)
    caches: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    rmc: RmcConfig = field(default_factory=RmcConfig)
    sabre: SabreConfig = field(default_factory=SabreConfig)
    #: Page size for registered regions.  soNUMA practice is superpages
    #: (§4.1); small pages are exercised by page-boundary tests.
    page_bytes: int = 2 * MB

    def validate(self) -> None:
        if self.cores.count != self.noc.width * self.noc.height:
            raise ConfigError(
                f"{self.cores.count} cores do not tile a "
                f"{self.noc.width}x{self.noc.height} mesh"
            )
        if self.page_bytes % self.caches.block_bytes:
            raise ConfigError("page size must be a multiple of the block size")
        if self.rmc.backends < 1:
            raise ConfigError("at least one RMC backend is required")


@dataclass(frozen=True)
class ClusterConfig:
    """A directly-connected soNUMA cluster (the paper models 2 nodes)."""

    nodes: int = 2
    node: NodeConfig = field(default_factory=NodeConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)

    def validate(self) -> None:
        if self.nodes < 1:
            raise ConfigError("cluster needs at least one node")
        self.node.validate()

    def with_sabre_mode(self, mode: SabreMode) -> "ClusterConfig":
        """Convenience: same cluster with a different SABRe CC variant."""
        sabre = dataclasses.replace(self.node.sabre, mode=mode)
        node = dataclasses.replace(self.node, sabre=sabre)
        return dataclasses.replace(self, node=node)


def default_cluster() -> ClusterConfig:
    """The paper's evaluated system: two directly-connected 16-core
    chips with Table 2 parameters."""
    cfg = ClusterConfig()
    cfg.validate()
    return cfg

"""On-chip 2D mesh interconnect (Table 2)."""

from repro.noc.mesh import Mesh

__all__ = ["Mesh"]

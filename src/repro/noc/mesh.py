"""2D mesh geometry, tile placement, and hop latency.

The modeled chip (Fig. 6) is a 4x4 tile mesh: one core + one LLC bank
per tile, four memory controllers on the left/right edges, and four
RMC backends (RGP/RCP backend + R2P2) along the chip edge.

Every quantity here is a pure function of the (frozen) mesh config, so
the constructor precomputes the hop matrix and placement tables and
``latency_ns`` memoizes per ``(src, dst, payload)`` — mesh latency is
charged on every block read, write upgrade, and NI transfer, making it
one of the hottest computations in the simulator.
"""

from __future__ import annotations

from repro.common.config import NocConfig
from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK


class Mesh:
    """Tile coordinates and XY-routing hop counts for one chip."""

    __slots__ = ("cfg", "tiles", "_coords", "_hops", "_hop_lat", "_lat_cache", "_edge_tiles", "_top_row")

    def __init__(self, cfg: NocConfig):
        self.cfg = cfg
        self.tiles = cfg.width * cfg.height
        if self.tiles < 1:
            raise ConfigError("mesh must have at least one tile")
        width = cfg.width
        self._coords = [(t % width, t // width) for t in range(self.tiles)]
        # Flat hop matrix: hops(src, dst) == _hops[src * tiles + dst].
        self._hops = [
            abs(sx - dx) + abs(sy - dy)
            for (sx, sy) in self._coords
            for (dx, dy) in self._coords
        ]
        self._hop_lat = [h * cfg.hop_ns for h in self._hops]
        #: (src, dst, payload) -> latency; payloads come from a handful
        #: of distinct sizes (block, header, object ladder), so this
        #: stays small and config-keyed by construction (one cache per
        #: Mesh, one Mesh per config).
        self._lat_cache: dict[tuple[int, int, int], float] = {}
        edge = [
            t
            for t in range(self.tiles)
            if self._coords[t][0] in (0, width - 1)
        ]
        self._edge_tiles = edge
        self._top_row = list(range(width))

    # -- geometry ---------------------------------------------------------
    def coord(self, tile: int) -> tuple[int, int]:
        if not 0 <= tile < self.tiles:
            raise ConfigError(f"tile {tile} outside mesh of {self.tiles}")
        return self._coords[tile]

    def hops(self, src_tile: int, dst_tile: int) -> int:
        if not (0 <= src_tile < self.tiles and 0 <= dst_tile < self.tiles):
            raise ConfigError(
                f"tiles ({src_tile}, {dst_tile}) outside mesh of {self.tiles}"
            )
        return self._hops[src_tile * self.tiles + dst_tile]

    def latency_ns(self, src_tile: int, dst_tile: int, payload_bytes: int = 0) -> float:
        """One-way message latency: per-hop delay plus link serialization
        for payloads wider than one flit (16 B links)."""
        key = (src_tile, dst_tile, payload_bytes)
        lat = self._lat_cache.get(key)
        if lat is None:
            cfg = self.cfg
            hop = self.hops(src_tile, dst_tile) * cfg.hop_ns
            if payload_bytes <= cfg.link_bytes:
                lat = hop
            else:
                flits = (payload_bytes + cfg.link_bytes - 1) // cfg.link_bytes
                lat = hop + (flits - 1) / cfg.freq_ghz
            self._lat_cache[key] = lat
        return lat

    # -- placement --------------------------------------------------------
    def core_tile(self, core: int) -> int:
        return core % self.tiles

    def llc_bank_tile(self, block_addr: int) -> int:
        """Block-interleaved NUCA banks, one per tile (Table 2)."""
        return (block_addr // CACHE_BLOCK) % self.tiles

    def mc_tile(self, channel: int) -> int:
        """Memory controllers on the left/right edge columns."""
        return self._edge_tiles[channel % len(self._edge_tiles)]

    def rmc_tile(self, backend: int) -> int:
        """RMC backends / R2P2s spread along the top edge (Fig. 6)."""
        return self._top_row[backend % len(self._top_row)]

    def mean_hops_to(self, dst_tile: int) -> float:
        return sum(self.hops(t, dst_tile) for t in range(self.tiles)) / self.tiles

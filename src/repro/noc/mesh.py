"""2D mesh geometry, tile placement, and hop latency.

The modeled chip (Fig. 6) is a 4x4 tile mesh: one core + one LLC bank
per tile, four memory controllers on the left/right edges, and four
RMC backends (RGP/RCP backend + R2P2) along the chip edge.
"""

from __future__ import annotations

from repro.common.config import NocConfig
from repro.common.errors import ConfigError
from repro.common.units import CACHE_BLOCK


class Mesh:
    """Tile coordinates and XY-routing hop counts for one chip."""

    def __init__(self, cfg: NocConfig):
        self.cfg = cfg
        self.tiles = cfg.width * cfg.height
        if self.tiles < 1:
            raise ConfigError("mesh must have at least one tile")

    # -- geometry ---------------------------------------------------------
    def coord(self, tile: int) -> tuple[int, int]:
        if not 0 <= tile < self.tiles:
            raise ConfigError(f"tile {tile} outside mesh of {self.tiles}")
        return tile % self.cfg.width, tile // self.cfg.width

    def hops(self, src_tile: int, dst_tile: int) -> int:
        sx, sy = self.coord(src_tile)
        dx, dy = self.coord(dst_tile)
        return abs(sx - dx) + abs(sy - dy)

    def latency_ns(self, src_tile: int, dst_tile: int, payload_bytes: int = 0) -> float:
        """One-way message latency: per-hop delay plus link serialization
        for payloads wider than one flit (16 B links)."""
        hop = self.hops(src_tile, dst_tile) * self.cfg.hop_ns
        if payload_bytes <= self.cfg.link_bytes:
            return hop
        flits = (payload_bytes + self.cfg.link_bytes - 1) // self.cfg.link_bytes
        return hop + (flits - 1) / self.cfg.freq_ghz

    # -- placement --------------------------------------------------------
    def core_tile(self, core: int) -> int:
        return core % self.tiles

    def llc_bank_tile(self, block_addr: int) -> int:
        """Block-interleaved NUCA banks, one per tile (Table 2)."""
        return (block_addr // CACHE_BLOCK) % self.tiles

    def mc_tile(self, channel: int) -> int:
        """Memory controllers on the left/right edge columns."""
        edge_tiles = [
            t
            for t in range(self.tiles)
            if self.coord(t)[0] in (0, self.cfg.width - 1)
        ]
        return edge_tiles[channel % len(edge_tiles)]

    def rmc_tile(self, backend: int) -> int:
        """RMC backends / R2P2s spread along the top edge (Fig. 6)."""
        top_row = list(range(self.cfg.width))
        return top_row[backend % len(top_row)]

    def mean_hops_to(self, dst_tile: int) -> float:
        return sum(self.hops(t, dst_tile) for t in range(self.tiles)) / self.tiles

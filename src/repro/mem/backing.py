"""Byte-accurate backing store for each node's physical memory.

The object stores, version protocols, and transfer payloads operate on
real bytes so that atomicity violations (torn reads) are observable
facts, not modeling assumptions.  Allocation is a simple bump allocator
over contiguous regions.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.common.errors import SimulationError


class PhysicalMemory:
    """Sparse physical memory made of bump-allocated regions."""

    __slots__ = ("_next", "_alignment", "_starts", "_regions", "_last")

    def __init__(self, base: int = 0x10000, alignment: int = 64):
        self._next = base
        self._alignment = alignment
        self._starts: List[int] = []
        self._regions: List[Tuple[int, bytearray]] = []
        #: Last region hit by :meth:`_locate` — accesses cluster on one
        #: object (block-by-block reads/writes), so this short-circuits
        #: the bisect on the common case.
        self._last: Tuple[int, int, bytearray] = (1, 0, bytearray())

    def allocate(self, size: int, align: int = 0) -> int:
        """Allocate ``size`` zeroed bytes; returns the base address."""
        if size <= 0:
            raise SimulationError(f"allocation size must be positive: {size}")
        align = align or self._alignment
        base = self._next
        if base % align:
            base += align - (base % align)
        self._next = base + size
        self._starts.append(base)
        self._regions.append((base, bytearray(size)))
        return base

    def _locate(self, addr: int, size: int) -> Tuple[bytearray, int]:
        base, end, buf = self._last
        if base <= addr and addr + size <= end:
            return buf, addr - base
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            raise SimulationError(f"access to unmapped address {addr:#x}")
        base, buf = self._regions[idx]
        offset = addr - base
        if offset + size > len(buf):
            raise SimulationError(
                f"access [{addr:#x}, +{size}) overruns region at {base:#x}"
            )
        self._last = (base, base + len(buf), buf)
        return buf, offset

    def read(self, addr: int, size: int) -> bytes:
        base, end, buf = self._last
        if base <= addr and addr + size <= end:
            off = addr - base
        else:
            buf, off = self._locate(addr, size)
        return bytes(buf[off : off + size])

    def write(self, addr: int, data: bytes) -> None:
        size = len(data)
        base, end, buf = self._last
        if base <= addr and addr + size <= end:
            off = addr - base
        else:
            buf, off = self._locate(addr, size)
        buf[off : off + size] = data

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & (2**64 - 1)).to_bytes(8, "little"))

"""Per-chip memory system: LLC + L1 residency, DRAM channels, and a
behavioral coherence directory with invalidation snooping.

This is the integration point LightSABRes relies on (§3.3): the R2P2
subscribes to the address range it is reading, and the directory
delivers an invalidation callback whenever

* a core *writes* a subscribed block (a true potential conflict), or
* a subscribed block is *evicted* from the chip (the false-alarm case
  that motivates the validate stage of §4.2).

Write-triggered invalidations are delivered synchronously with the
byte mutation, mirroring invalidate-before-write MESI ordering, so a
snooper can never observe new data without having been invalidated.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Callable, Dict, Optional, Set

from repro.common.config import NodeConfig
from repro.common.units import CACHE_BLOCK, gbps_to_bytes_per_ns
from repro.mem.backing import PhysicalMemory
from repro.mem.cache import LruCache
from repro.noc.mesh import Mesh
from repro.sim.engine import Simulator
from repro.sim.resources import MultiChannel


class AccessTier(Enum):
    """Where a block read was served from."""

    L1 = "l1"
    LLC = "llc"
    MEM = "mem"


class InvalidationCause(Enum):
    WRITE = "write"
    EVICTION = "eviction"


#: Snooper callback signature: (block_addr, cause).
SnoopCallback = Callable[[int, InvalidationCause], None]


class ChipMemorySystem:
    """Memory hierarchy of one 16-core chip (Table 2)."""

    __slots__ = ("sim", "cfg", "mesh", "phys", "name", "llc", "_l1", "_owner", "dram", "_subs", "_l1_lat", "_llc_lat", "_block", "_tiles", "_mem_extra", "_llc_path", "_upgrade_path", "reads", "writes", "invalidations_sent", "_svc_mult", "_svc_slow")

    def __init__(
        self,
        sim: Simulator,
        cfg: NodeConfig,
        mesh: Mesh,
        phys: Optional[PhysicalMemory] = None,
        name: str = "chip",
    ):
        self.sim = sim
        self.cfg = cfg
        self.mesh = mesh
        self.phys = phys if phys is not None else PhysicalMemory()
        self.name = name

        caches = cfg.caches
        self.llc = LruCache(caches.llc_blocks, f"{name}.llc")
        self._l1: Dict[int, LruCache] = {}
        self._owner: Dict[int, int] = {}  # dirty block -> owning core
        self.dram = MultiChannel(
            sim,
            cfg.memory.channels,
            gbps_to_bytes_per_ns(cfg.memory.channel_gbps),
            interleave_bytes=caches.block_bytes,
            name=f"{name}.dram",
        )
        self._subs: Dict[int, Set[SnoopCallback]] = defaultdict(set)
        self._l1_lat = caches.l1_latency_cycles / cfg.cores.freq_ghz
        self._llc_lat = caches.llc_latency_cycles / cfg.cores.freq_ghz
        # Hot-path constants, hoisted out of the per-access attribute
        # chains (read_block/write_block run once per cache block moved).
        self._block = caches.block_bytes
        self._tiles = mesh.tiles
        self._mem_extra = cfg.memory.latency_ns + cfg.memory.controller_overhead_ns
        #: (agent_tile, bank) -> composite LLC-hit latency.
        self._llc_path: Dict[tuple, float] = {}
        #: (core_tile, bank) -> write-upgrade latency.
        self._upgrade_path: Dict[tuple, float] = {}
        self.reads = 0
        self.writes = 0
        self.invalidations_sent = 0
        # Gray-failure dial: scales every access latency served here.
        # The boolean gate keeps the healthy fast path at one flag test.
        self._svc_mult = 1.0
        self._svc_slow = False

    def set_service_multiplier(self, multiplier: float) -> None:
        """Scale all access latencies by ``multiplier`` (>= 1) — the
        fault injector's gray-failure hook.  1.0 restores full speed."""
        if multiplier < 1.0:
            raise ValueError(
                f"service multiplier must be >= 1, got {multiplier}"
            )
        self._svc_mult = multiplier
        self._svc_slow = multiplier != 1.0

    # ------------------------------------------------------------------
    # snooping
    # ------------------------------------------------------------------
    def subscribe(self, block_addr: int, snoop: SnoopCallback) -> None:
        """Register interest in coherence events for one block."""
        self._subs[block_addr].add(snoop)

    def unsubscribe(self, block_addr: int, snoop: SnoopCallback) -> None:
        subs = self._subs.get(block_addr)
        if subs is None:
            return
        subs.discard(snoop)
        if not subs:
            del self._subs[block_addr]

    def _notify(self, block_addr: int, cause: InvalidationCause) -> None:
        subs = self._subs.get(block_addr)
        if not subs:
            return
        self.invalidations_sent += len(subs)
        for snoop in list(subs):
            snoop(block_addr, cause)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read_block(
        self, agent_tile: int, block_addr: int, *, allocate: bool = True
    ) -> tuple[float, AccessTier]:
        """Read one cache block on behalf of an agent at ``agent_tile``.

        Returns ``(completion_time, tier)``.  Queuing at the DRAM
        channels is modeled; the caller schedules its continuation at
        ``completion_time`` and reads bytes from :attr:`phys` then.
        """
        self.reads += 1
        block = self._block
        mesh = self.mesh
        baddr = block_addr - (block_addr % block)
        # llc_bank_tile inlined (one call per modeled block read).
        bank = (baddr // CACHE_BLOCK) % self._tiles

        owner = self._owner.get(baddr)
        if owner is not None:
            # Dirty in a core's L1: directory forwards, owner downgrades
            # M->S and the LLC picks up the (still dirty) copy.
            t = self.sim._now + mesh.latency_ns(agent_tile, bank)
            owner_tile = mesh.core_tile(owner)
            t += self._llc_lat
            t += mesh.latency_ns(bank, owner_tile)
            t += self._l1_lat
            t += mesh.latency_ns(owner_tile, agent_tile, block)
            l1 = self._l1.get(owner)
            if l1 is not None:
                l1.mark_clean(baddr)
            del self._owner[baddr]
            self._llc_insert(baddr, dirty=True)
            if self._svc_slow:
                now = self.sim._now
                t = now + (t - now) * self._svc_mult
            return t, AccessTier.L1

        # LruCache.touch inlined — the LLC hit is the dominant outcome
        # once a transfer is streaming.
        llc = self.llc
        blocks = llc._blocks
        if baddr in blocks:
            blocks.move_to_end(baddr)
            llc.hits += 1
            # Composite LLC-hit latency memoized per (agent, bank):
            # request hop + tag latency + data return with payload.
            key = (agent_tile, bank)
            lat = self._llc_path.get(key)
            if lat is None:
                lat = (
                    mesh.latency_ns(agent_tile, bank)
                    + self._llc_lat
                    + mesh.latency_ns(bank, agent_tile, block)
                )
                self._llc_path[key] = lat
            if self._svc_slow:
                lat = lat * self._svc_mult
            return self.sim._now + lat, AccessTier.LLC
        llc.misses += 1
        t = self.sim._now + mesh.latency_ns(agent_tile, bank)

        # LLC miss: go to memory through the block's home channel.
        channel_idx = self.dram.channel_index(baddr)
        channel = self.dram.channels[channel_idx]
        mc_tile = mesh.mc_tile(channel_idx)
        t += self._llc_lat  # tag lookup discovering the miss
        t += mesh.latency_ns(bank, mc_tile)
        # Channel occupancy (queuing + 64B burst), then the DRAM array
        # latency and controller overhead.
        t = channel.request_at(t, block, self._mem_extra)
        t += mesh.latency_ns(mc_tile, agent_tile, block)
        if allocate:
            self._llc_insert(baddr, dirty=False)
        if self._svc_slow:
            now = self.sim._now
            t = now + (t - now) * self._svc_mult
        return t, AccessTier.MEM

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Functional (zero-time) read of the backing bytes."""
        return self.phys.read(addr, size)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def write_block(
        self, core: int, block_addr: int, data: Optional[bytes] = None
    ) -> float:
        """A core writes one block; returns the store latency (ns).

        Byte mutation and invalidation delivery happen *now*,
        synchronously, preserving invalidate-before-write ordering.
        """
        self.writes += 1
        block = self._block
        baddr = block_addr - (block_addr % block)
        if data is not None:
            size = len(data)
            if size > block:
                raise ValueError(
                    f"write of {size} bytes exceeds one block"
                )
            # PhysicalMemory.write's region fast path, inlined (one
            # byte-store per modeled block write).
            phys = self.phys
            base, end, buf = phys._last
            if base <= block_addr and block_addr + size <= end:
                off = block_addr - base
                buf[off : off + size] = data
            else:
                phys.write(block_addr, data)

        prev = self._owner.get(baddr)
        l1 = self._l1.get(core)
        if l1 is None:
            l1 = self._l1_for(core)
        blocks = l1._blocks
        if prev == core and baddr in blocks:
            # Write hit on own M copy: dirty-mark + LRU refresh inline
            # (LruCache.insert's miss/eviction logic cannot trigger).
            latency = self._l1_lat
            blocks[baddr] = True
            blocks.move_to_end(baddr)
        else:
            # Upgrade: invalidate any other copy, take ownership.
            if prev is not None and prev != core:
                other = self._l1.get(prev)
                if other is not None:
                    other.invalidate(baddr)
            mesh = self.mesh
            bank = mesh.llc_bank_tile(baddr)
            core_tile = mesh.core_tile(core)
            key = (core_tile, bank)
            latency = self._upgrade_path.get(key)
            if latency is None:
                latency = mesh.latency_ns(core_tile, bank) * 2 + self._llc_lat
                self._upgrade_path[key] = latency
            self.llc.invalidate(baddr)  # LLC copy is now stale
            evicted = l1.insert(baddr, dirty=True)
            if evicted is not None:
                self._l1_victim(evicted)
        self._owner[baddr] = core
        if self._subs:
            self._notify(baddr, InvalidationCause.WRITE)
        if self._svc_slow:
            latency = latency * self._svc_mult
        return latency

    def write_bytes(self, core: int, addr: int, data: bytes) -> float:
        """Write a byte range block by block; returns total latency."""
        block = self._block
        total = 0.0
        offset = 0
        while offset < len(data):
            baddr = (addr + offset) - ((addr + offset) % block)
            chunk_end = min(len(data), offset + (baddr + block - (addr + offset)))
            total += self.write_block(
                core, addr + offset, data[offset:chunk_end]
            )
            offset = chunk_end
        return total

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _l1_for(self, core: int) -> LruCache:
        l1 = self._l1.get(core)
        if l1 is None:
            l1 = LruCache(self.cfg.caches.l1d_blocks, f"{self.name}.l1[{core}]")
            self._l1[core] = l1
        return l1

    def _l1_victim(self, evicted: tuple[int, bool]) -> None:
        eaddr, dirty = evicted
        if self._owner.get(eaddr) is not None and dirty:
            del self._owner[eaddr]
        self._llc_insert(eaddr, dirty=dirty)

    def _llc_insert(self, baddr: int, dirty: bool) -> None:
        evicted = self.llc.insert(baddr, dirty=dirty)
        if evicted is None:
            return
        eaddr, edirty = evicted
        if edirty:
            # Write the victim back to memory (consumes channel bandwidth).
            self.dram.request(eaddr, self._block)
        self._notify(eaddr, InvalidationCause.EVICTION)

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    def tier_of(self, block_addr: int) -> AccessTier:
        block = self.cfg.caches.block_bytes
        baddr = block_addr - (block_addr % block)
        if baddr in self._owner:
            return AccessTier.L1
        if self.llc.contains(baddr):
            return AccessTier.LLC
        return AccessTier.MEM

    def subscriber_count(self, block_addr: int) -> int:
        return len(self._subs.get(block_addr, ()))

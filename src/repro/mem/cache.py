"""Behavioral LRU cache model used for both L1s and the LLC."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.common.errors import SimulationError


class LruCache:
    """Fully-associative LRU over cache-block addresses.

    Holds no data (data lives in :class:`PhysicalMemory`); tracks which
    blocks are resident and which are dirty, and reports evictions so
    the directory can deliver eviction-triggered invalidations — the
    source of LightSABRes' "false alarm" validate path (§4.2).
    """

    __slots__ = ("capacity", "name", "_blocks", "hits", "misses", "evictions")

    def __init__(self, capacity_blocks: int, name: str = ""):
        if capacity_blocks < 1:
            raise SimulationError(f"capacity must be >= 1: {capacity_blocks}")
        self.capacity = capacity_blocks
        self.name = name
        self._blocks: "OrderedDict[int, bool]" = OrderedDict()  # addr -> dirty
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def contains(self, block_addr: int) -> bool:
        return block_addr in self._blocks

    def is_dirty(self, block_addr: int) -> bool:
        return self._blocks.get(block_addr, False)

    def touch(self, block_addr: int) -> bool:
        """Access ``block_addr``; returns hit/miss and refreshes LRU."""
        if block_addr in self._blocks:
            self._blocks.move_to_end(block_addr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(
        self, block_addr: int, dirty: bool = False
    ) -> Optional[tuple[int, bool]]:
        """Insert (or update) a block; returns ``(evicted_addr, was_dirty)``
        if an eviction was required, else None."""
        if block_addr in self._blocks:
            self._blocks[block_addr] = self._blocks[block_addr] or dirty
            self._blocks.move_to_end(block_addr)
            return None
        evicted = None
        if len(self._blocks) >= self.capacity:
            evicted = self._blocks.popitem(last=False)
            self.evictions += 1
        self._blocks[block_addr] = dirty
        return evicted

    def invalidate(self, block_addr: int) -> bool:
        """Drop a block (coherence invalidation); True if present."""
        return self._blocks.pop(block_addr, None) is not None

    def mark_clean(self, block_addr: int) -> None:
        if block_addr in self._blocks:
            self._blocks[block_addr] = False

"""Memory-hierarchy substrate: addresses, backing store, caches,
coherence directory, and the per-chip memory system (Table 2)."""

from repro.mem.address import (
    AddressRange,
    block_base,
    block_index,
    block_span,
    crosses_page_boundary,
)
from repro.mem.backing import PhysicalMemory
from repro.mem.cache import LruCache
from repro.mem.system import AccessTier, ChipMemorySystem, InvalidationCause

__all__ = [
    "AccessTier",
    "AddressRange",
    "ChipMemorySystem",
    "InvalidationCause",
    "LruCache",
    "PhysicalMemory",
    "block_base",
    "block_index",
    "block_span",
    "crosses_page_boundary",
]

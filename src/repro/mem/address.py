"""Cache-block and page address arithmetic.

Addresses are plain ints (byte addresses).  A *block address* is the
byte address of the first byte of a 64 B cache block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.common.units import CACHE_BLOCK


def block_base(addr: int, block: int = CACHE_BLOCK) -> int:
    """Byte address of the cache block containing ``addr``."""
    return addr - (addr % block)


def block_index(addr: int, block: int = CACHE_BLOCK) -> int:
    """Ordinal index of the cache block containing ``addr``."""
    return addr // block


def block_span(addr: int, size: int, block: int = CACHE_BLOCK) -> List[int]:
    """Block addresses of every cache block touched by [addr, addr+size)."""
    if size <= 0:
        return []
    first = block_base(addr, block)
    last = block_base(addr + size - 1, block)
    return list(range(first, last + block, block))


def crosses_page_boundary(addr: int, size: int, page: int) -> bool:
    """True if [addr, addr+size) straddles a page boundary."""
    if size <= 0:
        return False
    return (addr // page) != ((addr + size - 1) // page)


@dataclass(frozen=True)
class AddressRange:
    """A contiguous byte range: the footprint of one object / SABRe."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size < 0:
            raise ValueError(f"invalid range: base={self.base} size={self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def blocks(self, block: int = CACHE_BLOCK) -> List[int]:
        return block_span(self.base, self.size, block)

    def num_blocks(self, block: int = CACHE_BLOCK) -> int:
        if self.size == 0:
            return 0
        return (
            block_index(self.end - 1, block) - block_index(self.base, block) + 1
        )

    def iter_blocks(self, block: int = CACHE_BLOCK) -> Iterator[int]:
        if self.size == 0:
            return
        first = block_base(self.base, block)
        last = block_base(self.end - 1, block)
        yield from range(first, last + block, block)

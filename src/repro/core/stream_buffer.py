"""Stream buffers for address-range snooping (§4.1, Fig. 3).

A stream buffer tracks the *window of vulnerability* of one SABRe: the
consecutive cache blocks issued to the memory hierarchy before the
object's version has been read.  Entries hold no data and no per-entry
address — a block's slot is found by subtracting the buffer's base
address (the hardware's "subtractor"), giving cheap indexed lookups
instead of associative search.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError
from repro.common.units import CACHE_BLOCK

#: The subtractor's shift/mask form of the block size: block addresses
#: are decomposed with ``>>``/``&`` instead of ``//``/``%`` — the same
#: trick the hardware plays, and measurably cheaper on the per-block
#: receive path.  (CACHE_BLOCK is asserted power-of-two at import.)
_BLOCK_SHIFT = CACHE_BLOCK.bit_length() - 1
_BLOCK_MASK = CACHE_BLOCK - 1
if 1 << _BLOCK_SHIFT != CACHE_BLOCK:
    raise AssertionError(f"CACHE_BLOCK must be a power of two: {CACHE_BLOCK}")


class StreamBuffer:
    """One stream buffer: base address + bitvector of ``depth`` slots."""

    __slots__ = ("depth", "_base_block", "_tracked", "_issued_bits", "_received_bits")

    def __init__(self, depth: int):
        if depth < 1:
            raise SimulationError(f"stream buffer depth must be >= 1: {depth}")
        self.depth = depth
        self._base_block: Optional[int] = None
        self._tracked = 0  # slots meaningful for the current SABRe
        self._issued_bits = 0
        self._received_bits = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._base_block is not None

    def assign(self, base_addr: int, total_blocks: int) -> None:
        """Bind this buffer to a SABRe's address range.

        Only the first ``min(depth, total_blocks)`` blocks are tracked:
        the unroll stage may not issue past the buffer's depth during
        the window of vulnerability (§4.1), so deeper blocks can never
        be in flight while the buffer matters.
        """
        if self.busy:
            raise SimulationError("stream buffer already assigned")
        if total_blocks < 1:
            raise SimulationError(f"SABRe needs >= 1 block: {total_blocks}")
        self._base_block = base_addr - (base_addr & _BLOCK_MASK)
        self._tracked = min(self.depth, total_blocks)
        self._issued_bits = 0
        self._received_bits = 0

    def release(self) -> None:
        """Free the buffer (window over, SABRe aborted, or completed)."""
        self._base_block = None
        self._tracked = 0
        self._issued_bits = 0
        self._received_bits = 0

    # ------------------------------------------------------------------
    # the subtractor (§4.2): address -> slot index
    # ------------------------------------------------------------------
    def slot_of(self, block_addr: int) -> Optional[int]:
        """Slot index for ``block_addr``, or None if outside the range."""
        if self._base_block is None:
            return None
        delta = block_addr - self._base_block
        if delta < 0 or delta & _BLOCK_MASK:
            return None
        slot = delta >> _BLOCK_SHIFT
        if slot >= self._tracked:
            return None
        return slot

    # ------------------------------------------------------------------
    # issue / reply tracking
    # ------------------------------------------------------------------
    def can_issue(self, slot: int) -> bool:
        """Unroll-stage check: is there a free slot for this block?"""
        return self.busy and 0 <= slot < self._tracked

    def mark_issued(self, slot: int) -> None:
        if not self.can_issue(slot):
            raise SimulationError(f"slot {slot} not issuable")
        self._issued_bits |= 1 << slot

    def mark_received(self, block_addr: int) -> bool:
        """Record a data reply; True if it matched this buffer."""
        # slot_of() inlined: this runs once per received block.
        base = self._base_block
        if base is None:
            return False
        delta = block_addr - base
        if delta < 0 or delta & _BLOCK_MASK:
            return False
        slot = delta >> _BLOCK_SHIFT
        if slot >= self._tracked:
            return False
        self._received_bits |= 1 << slot
        return True

    def is_issued(self, slot: int) -> bool:
        return bool(self._issued_bits >> slot & 1)

    def is_received(self, slot: int) -> bool:
        return bool(self._received_bits >> slot & 1)

    @property
    def tracked_slots(self) -> int:
        return self._tracked

    @property
    def base_block(self) -> Optional[int]:
        return self._base_block

    def matches(self, block_addr: int) -> bool:
        """Snoop check: does an invalidation hit our tracked range?"""
        return self.slot_of(block_addr) is not None

    def is_base(self, block_addr: int) -> bool:
        return self.busy and block_addr == self._base_block

"""The paper's contribution: SABRe one-sided operations and the
LightSABRes destination-side hardware (ATT + stream buffers + R2P2).
"""

from repro.core.att import ActiveTransfersTable, AttEntry, SabreId
from repro.core.design_space import DESIGN_SPACE, CcSide, CcMethod, design_space_table
from repro.core.r2p2 import R2P2Engine
from repro.core.stream_buffer import StreamBuffer

__all__ = [
    "ActiveTransfersTable",
    "AttEntry",
    "CcMethod",
    "CcSide",
    "DESIGN_SPACE",
    "R2P2Engine",
    "SabreId",
    "StreamBuffer",
    "design_space_table",
]

"""Table 1: the design space for one-sided atomic object reads.

The taxonomy classifies mechanisms by where concurrency control runs
(*source* vs *destination* — request-processing location, not data
location) and by CC method (locking vs optimistic).  SABRes are the
first destination-side solution built purely on one-sided operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List


class CcSide(Enum):
    SOURCE = "source"
    DESTINATION = "destination"


class CcMethod(Enum):
    LOCKING = "locking"
    OCC = "occ"


@dataclass(frozen=True)
class DesignPoint:
    """One cell of Table 1."""

    side: CcSide
    method: CcMethod
    systems: tuple
    notes: str


DESIGN_SPACE: List[DesignPoint] = [
    DesignPoint(
        CcSide.SOURCE,
        CcMethod.LOCKING,
        ("DrTM",),
        "remote lock acquisition: extra roundtrip, fault-tolerance risk",
    ),
    DesignPoint(
        CcSide.SOURCE,
        CcMethod.OCC,
        ("FaRM", "Pilaf"),
        "post-transfer checks need per-object metadata on the wire",
    ),
    DesignPoint(
        CcSide.DESTINATION,
        CcMethod.LOCKING,
        ("SABRes",),
        "lock at the data: no extra roundtrip, no cross-node deadlock",
    ),
    DesignPoint(
        CcSide.DESTINATION,
        CcMethod.OCC,
        ("SABRes",),
        "coherence-snooped optimistic reads; unmodified data store",
    ),
]


def design_space_table() -> str:
    """Render Table 1 as text (regenerated, not hard-coded prose)."""
    header = f"{'':14s}{'Source':34s}{'Destination':s}"
    rows = [header, "-" * 80]
    for method in (CcMethod.LOCKING, CcMethod.OCC):
        cells = {}
        for point in DESIGN_SPACE:
            if point.method is method:
                cells[point.side] = ", ".join(point.systems)
        rows.append(
            f"{method.value.upper():14s}"
            f"{cells.get(CcSide.SOURCE, ''):34s}"
            f"{cells.get(CcSide.DESTINATION, '')}"
        )
    return "\n".join(rows)

"""The R2P2: soNUMA's Remote Request Processing Pipeline enhanced with
LightSABRes (§4.2, Fig. 4; soNUMA adaptation §5.1).

One engine instance models one R2P2 backend at the destination chip
edge.  It serves stateless cache-block remote reads (original soNUMA)
and stateful SABRes (ATT + stream buffers), implementing four
concurrency-control variants selected by ``SabreMode``:

* ``SPECULATIVE`` — LightSABRes proper: the version read overlaps the
  data reads; the stream buffer snoops coherence invalidations during
  the window of vulnerability; ambiguous base-block invalidations are
  resolved by the validate stage.
* ``NO_SPECULATION`` — serialized read-version-then-data (§3.2).
* ``LOCKING`` — destination-side shared reader locks (§3.2).
* ``NAIVE_UNSAFE`` — Fig. 2's broken overlap (no snooping); kept to
  demonstrate the race it admits.

Protocol invariants (§5.1): every received request packet eventually
gets exactly one reply packet, even after an abort (junk payload), and
a final payload-free validation packet reports atomicity success.
"""

from __future__ import annotations

from typing import Callable, Deque, Dict, Optional
from collections import deque

from repro.atomicity.locks import ReaderWriterLockTable
from repro.common.config import NodeConfig, SabreMode
from repro.common.errors import ProtocolError
from repro.common.units import CACHE_BLOCK
from repro.core.att import ActiveTransfersTable, AttEntry, SabreId
from repro.core.stream_buffer import _BLOCK_MASK, _BLOCK_SHIFT
from repro.fabric.packets import (
    Packet,
    PacketKind,
    block_payload_size,
    cas_reply,
    read_reply,
    sabre_reply,
    sabre_validation,
    write_ack,
)
from repro.mem.system import ChipMemorySystem, InvalidationCause
from repro.objstore.layout import is_locked
from repro.sim.engine import Simulator, block_mode
from repro.sim.resources import BandwidthServer
from repro.sim.stats import Counter

#: Callback the node provides to put a packet on the fabric.
SendPacket = Callable[[Packet], None]


class R2P2Engine:
    """One LightSABRes-enhanced R2P2 backend."""

    __slots__ = ("sim", "cfg", "chip", "node_id", "index", "tile", "send_packet", "lock_table", "counters", "mode", "att", "_pending_registrations", "_pending_requests", "_cycle", "_block_cost", "issue_server", "reply_server", "_version_offset", "_batched", "_att_lookup", "_issue_service", "_reply_service", "_phys")

    def __init__(
        self,
        sim: Simulator,
        cfg: NodeConfig,
        chip: ChipMemorySystem,
        node_id: int,
        index: int,
        tile: int,
        send_packet: SendPacket,
        lock_table: Optional[ReaderWriterLockTable] = None,
        counters: Optional[Counter] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.chip = chip
        self.node_id = node_id
        self.index = index
        self.tile = tile
        self.send_packet = send_packet
        self.lock_table = lock_table or ReaderWriterLockTable()
        self.counters = counters or Counter()

        sabre = cfg.sabre
        self.mode = sabre.mode
        self.att = ActiveTransfersTable(
            sabre.stream_buffers, sabre.stream_buffer_depth
        )
        self._pending_registrations: Deque[Packet] = deque()
        # Data requests that arrived while their registration is still
        # queued behind ATT backpressure (counted, replayed on register).
        self._pending_requests: Dict[SabreId, int] = {}
        # Fig. 4 pipeline stages modeled as two serial servers: the
        # unroll/memory-access path and the send-reply path, each
        # sustaining one block per RMC cycle (Table 2: 1 GHz).
        self._cycle = cfg.rmc.cycle_ns
        self._block_cost = cfg.rmc.cycle_ns * cfg.rmc.r2p2_block_cycles
        self.issue_server = BandwidthServer(sim, 1.0, f"r2p2[{index}].issue")
        self.reply_server = BandwidthServer(sim, 1.0, f"r2p2[{index}].reply")
        self._version_offset = 0  # driver-registered header offset (§4.2)
        self._batched = block_mode() == "batched"
        self._att_lookup = self.att.lookup_fast
        self._phys = chip.phys
        # Per-block service times are loop invariants of the whole run:
        # the divisions below reproduce BandwidthServer.request's
        # arithmetic bit-for-bit.
        self._issue_service = self._block_cost / self.issue_server.rate
        self._reply_service = self._cycle / self.reply_server.rate

    # ------------------------------------------------------------------
    # packet entry point (called by the node's NI dispatch)
    # ------------------------------------------------------------------
    def handle_packet(self, pkt: Packet) -> None:
        # Ordered by arrival frequency: unrolled SABRe data requests
        # dominate, then stateless reads.
        kind = pkt.kind
        if kind is PacketKind.SABRE_REQUEST:
            self._handle_sabre_request(pkt)
        elif kind is PacketKind.READ_REQUEST:
            self._handle_read_request(pkt)
        elif kind is PacketKind.SABRE_REGISTRATION:
            self._handle_registration(pkt)
        elif kind is PacketKind.WRITE_REQUEST:
            self._handle_write_request(pkt)
        elif kind is PacketKind.CAS_REQUEST:
            self._handle_cas_request(pkt)
        else:
            raise ProtocolError(f"R2P2 cannot service {pkt.kind}")

    # ------------------------------------------------------------------
    # stateless remote reads (original soNUMA RRPP)
    # ------------------------------------------------------------------
    def _handle_read_request(self, pkt: Packet) -> None:
        self.counters.add("read_requests")
        addr = pkt.meta["addr"]
        size = pkt.meta["size"]
        t_issue = self.issue_server.request(self._block_cost)

        def start_read() -> None:
            done, _tier = self.chip.read_block(self.tile, addr)
            self.sim.call_at(done, finish_read)

        def finish_read() -> None:
            payload = self.chip.read_bytes(addr, size)
            t_reply = self.reply_server.request(self._cycle)
            reply = read_reply(
                self.node_id, pkt.src_node, pkt.transfer_id, pkt.block_offset, payload
            )
            self.sim.call_at(t_reply, self.send_packet, reply)

        self.sim.call_at(t_issue, start_read)

    # ------------------------------------------------------------------
    # stateless one-sided writes and remote CAS (original soNUMA/RDMA
    # primitives: cache-block-sized atomicity only, §1)
    # ------------------------------------------------------------------
    def _handle_write_request(self, pkt: Packet) -> None:
        self.counters.add("write_requests")
        addr = pkt.meta["addr"]
        payload = pkt.payload or b""
        t_issue = self.issue_server.request(self._block_cost)

        def perform() -> None:
            # The NI writes through the coherence domain: subscribers
            # (e.g. in-flight SABRes over this range) get invalidated.
            latency = self.chip.write_block(self._agent_core(), addr, payload)
            ack = write_ack(
                self.node_id, pkt.src_node, pkt.transfer_id, pkt.block_offset
            )
            t_reply = self.reply_server.request(self._cycle)
            self.sim.call_later(
                max(latency, t_reply - self.sim.now),
                lambda: self.send_packet(ack),
            )

        self.sim.call_at(t_issue, perform)

    def _handle_cas_request(self, pkt: Packet) -> None:
        self.counters.add("cas_requests")
        addr = pkt.meta["addr"]
        expected = pkt.meta["expected"]
        desired = pkt.meta["desired"]
        t_issue = self.issue_server.request(self._block_cost)

        def perform() -> None:
            done, _tier = self.chip.read_block(self.tile, addr)
            self.sim.call_at(done, decide)

        def decide() -> None:
            old = self.chip.phys.read_u64(addr)
            swapped = old == expected
            if swapped:
                word = (desired & (2**64 - 1)).to_bytes(8, "little")
                self.chip.write_block(self._agent_core(), addr, word)
            reply = cas_reply(
                self.node_id, pkt.src_node, pkt.transfer_id, old, swapped
            )
            t_reply = self.reply_server.request(self._cycle)
            self.sim.call_at(t_reply, self.send_packet, reply)

        self.sim.call_at(t_issue, perform)

    def _agent_core(self) -> int:
        """Pseudo core id for NI-originated stores (keeps the directory's
        ownership tracking distinct from real cores)."""
        return self.cfg.cores.count + self.index

    # ------------------------------------------------------------------
    # SABRe registration (§5.1)
    # ------------------------------------------------------------------
    def _handle_registration(self, pkt: Packet) -> None:
        self.counters.add("sabre_registrations")
        if not self.att.has_free_entry():
            self.counters.add("att_backpressure")
            self._pending_registrations.append(pkt)
            return
        self._register(pkt)

    def _register(self, pkt: Packet) -> None:
        sid: SabreId = (pkt.src_node, pkt.meta.get("rgp", 0), pkt.transfer_id)
        entry = self.att.register(
            sid,
            base_addr=pkt.meta["addr"],
            total_blocks=pkt.meta["total_blocks"],
            size_bytes=pkt.meta["size"],
            now=self.sim.now,
        )
        entry.snoop_cb = self._make_snoop(entry)
        entry.req_counter = self._pending_requests.pop(sid, 0)
        if self.mode is SabreMode.LOCKING:
            entry.speculative = False
            self._acquire_lock(entry)
        elif self.mode is SabreMode.NAIVE_UNSAFE:
            entry.speculative = False  # no window tracking at all
        self._pump(entry)

    def _handle_sabre_request(self, pkt: Packet) -> None:
        sid: SabreId = (pkt.src_node, pkt.meta.get("rgp", 0), pkt.transfer_id)
        entry = self._att_lookup(sid)
        if entry is None:
            if any(
                (p.src_node, p.meta.get("rgp", 0), p.transfer_id) == sid
                for p in self._pending_registrations
            ):
                self._pending_requests[sid] = (
                    self._pending_requests.get(sid, 0) + 1
                )
                return
            raise ProtocolError(
                f"SABRe request for unknown transfer {sid}; "
                "registration must precede data requests"
            )
        entry.req_counter += 1
        if entry.aborted:
            self._flush_junk(entry)
            self._maybe_finish(entry)
        else:
            self._pump(entry)

    # ------------------------------------------------------------------
    # unroll stage (§4.2): issue loads while conditions hold
    # ------------------------------------------------------------------
    def _pump(self, entry: AttEntry) -> None:
        """Issue loads while conditions hold.

        The batched kernel precomputes the whole issue run's timestamps
        from the (private, serial) issue server in one pass and injects
        them with one ``schedule_batch`` call; ``_may_issue`` stays the
        single authority over issue eligibility and stall accounting, so
        both block modes see the exact same decision sequence."""
        if entry.aborted or entry.finished:
            return
        total = entry.total_blocks
        req = entry.req_counter
        limit = total if total < req else req
        if not self._batched:
            while entry.issue_count < limit and self._may_issue(entry):
                self._issue(entry, entry.issue_count)
            return
        offset = entry.issue_count
        if offset >= limit or not self._may_issue(entry):
            return
        server = self.issue_server
        mode = self.mode
        spec = mode is SabreMode.SPECULATIVE
        chip = self.chip
        epoch = entry.epoch
        service = self._issue_service

        # First block inline — the common case is a single issue per
        # arriving request packet, which must stay as cheap as the
        # stepwise path it replaces.
        addr = entry.base_addr + offset * CACHE_BLOCK
        entry.issue_count = offset + 1
        if (spec or mode is SabreMode.NO_SPECULATION) and (
            (spec and entry.speculative) or offset == 0
        ):
            chip.subscribe(addr, entry.snoop_cb)
            entry.subscribed_blocks.append(addr)
        if spec and entry.speculative:
            sb = entry.stream_buffer
            if sb._base_block is not None and offset < sb._tracked:
                sb._issued_bits |= 1 << offset
        sim = self.sim
        now = sim._now
        next_free = server._next_free
        if next_free < now:
            next_free = now
        next_free += service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += self._block_cost
        offset += 1
        if offset >= limit or not self._may_issue(entry):
            sim.call_at(next_free, self._start_read, entry, addr, offset - 1, epoch)
            return

        # Burst: precompute the rest of the run and bulk-inject it.
        busy = server._busy_ns
        nbytes = server._bytes
        block_cost = self._block_cost
        base = entry.base_addr
        start_read = self._start_read
        snoop_cb = entry.snoop_cb
        entries = [(next_free, start_read, (entry, addr, offset - 1, epoch))]
        while True:
            addr = base + offset * CACHE_BLOCK
            entry.issue_count = offset + 1
            # Past offset 0 the subscribe condition collapses to the
            # open-window case, which is also the stream-buffer case.
            if spec and entry.speculative:
                chip.subscribe(addr, snoop_cb)
                entry.subscribed_blocks.append(addr)
                sb = entry.stream_buffer
                if sb._base_block is not None and offset < sb._tracked:
                    sb._issued_bits |= 1 << offset
            start = next_free if next_free > now else now
            next_free = start + service
            busy += service
            nbytes += block_cost
            entries.append((next_free, start_read, (entry, addr, offset, epoch)))
            offset += 1
            if offset >= limit or not self._may_issue(entry):
                break
        server._next_free = next_free
        server._busy_ns = busy
        server._bytes = nbytes
        sim.schedule_batch(entries)

    def _may_issue(self, entry: AttEntry) -> bool:
        offset = entry.issue_count
        if self.mode is SabreMode.NO_SPECULATION:
            # Serialized: the version must be read before any data.
            return offset == 0 or not entry.speculative
        if self.mode is SabreMode.LOCKING:
            return entry.lock_held
        if self.mode is SabreMode.NAIVE_UNSAFE:
            return True
        # SPECULATIVE: during the window of vulnerability the issue is
        # bounded by the stream buffer depth and must not cross a page
        # boundary (§4.1); afterwards both limits disappear.
        if not entry.speculative:
            return True
        if not entry.stream_buffer.can_issue(offset):
            self.counters.add("stream_buffer_stalls")
            return False
        page = self.cfg.page_bytes
        if entry.block_addr(offset) // page != entry.base_addr // page:
            self.counters.add("page_boundary_stalls")
            return False
        return True

    def _issue(self, entry: AttEntry, offset: int) -> None:
        addr = entry.base_addr + offset * CACHE_BLOCK
        entry.issue_count += 1
        mode = self.mode
        if mode is SabreMode.SPECULATIVE or mode is SabreMode.NO_SPECULATION:
            subscribe = (
                mode is SabreMode.SPECULATIVE and entry.speculative
            ) or offset == 0
            if subscribe:
                self.chip.subscribe(addr, entry.snoop_cb)
                entry.subscribed_blocks.append(addr)
        if mode is SabreMode.SPECULATIVE and entry.speculative:
            # can_issue + mark_issued inlined (offset is never negative).
            sb = entry.stream_buffer
            if sb._base_block is not None and offset < sb._tracked:
                sb._issued_bits |= 1 << offset
        t_issue = self.issue_server.request(self._block_cost)
        self.sim.call_at(
            t_issue, self._start_read, entry, addr, offset, entry.epoch
        )

    def _start_read(
        self, entry: AttEntry, addr: int, offset: int, epoch: int
    ) -> None:
        if entry.finished or entry.epoch != epoch:
            return
        done, _tier = self.chip.read_block(self.tile, addr)
        self.sim.call_at(done, self._on_mem_reply, entry, offset, epoch)

    # ------------------------------------------------------------------
    # memory replies
    # ------------------------------------------------------------------
    def _on_mem_reply(self, entry: AttEntry, offset: int, epoch: int = 0) -> None:
        if entry.finished or entry.epoch != epoch:
            return  # stale reply from before a hardware retry: squash
        if entry.aborted:
            self._reply_data(entry, offset, junk=True)
            self._maybe_finish(entry)
            return
        entry.received_bits |= 1 << offset  # mark_received, inlined
        # StreamBuffer.mark_received inlined (once per received block).
        sb = entry.stream_buffer
        base = sb._base_block
        if base is not None:
            delta = entry.base_addr + offset * CACHE_BLOCK - base
            if delta >= 0 and not delta & _BLOCK_MASK:
                slot = delta >> _BLOCK_SHIFT
                if slot < sb._tracked:
                    sb._received_bits |= 1 << slot
        if offset == 0 and self.mode is not SabreMode.LOCKING:
            epoch_before = entry.epoch
            self._consume_version(entry)
            if entry.epoch != epoch_before:
                return  # hardware retry restarted the SABRe
            if entry.aborted:
                self._reply_data(entry, offset, junk=True)
                self._maybe_finish(entry)
                return
        self._reply_data(entry, offset)
        self._maybe_finish(entry)

    def _consume_version(self, entry: AttEntry) -> None:
        version = self.chip.phys.read_u64(
            entry.base_addr + self._version_offset
        )
        if self.mode is not SabreMode.NAIVE_UNSAFE and is_locked(version):
            self._abort(entry, "locked_version")
            return
        entry.version = version
        if entry.speculative:
            self._close_window(entry)

    def _close_window(self, entry: AttEntry) -> None:
        """The version has been read: the window of vulnerability is
        over; drop the stream buffer's guard and release MLP limits."""
        entry.speculative = False
        if self.mode is SabreMode.SPECULATIVE:
            # Data-block subscriptions are no longer needed: the
            # hardware-software contract (writers bump the header
            # version first) funnels every later conflict through the
            # base block, which stays subscribed until the end.
            keep = entry.base_addr
            remaining = []
            for addr in entry.subscribed_blocks:
                if addr == keep:
                    remaining.append(addr)
                else:
                    self.chip.unsubscribe(addr, entry.snoop_cb)
            entry.subscribed_blocks = remaining
        self._pump(entry)

    # ------------------------------------------------------------------
    # coherence snooping (§4.1/§4.2)
    # ------------------------------------------------------------------
    def _make_snoop(self, entry: AttEntry):
        def snoop(block_addr: int, cause: InvalidationCause) -> None:
            if entry.finished or entry.aborted:
                return
            if block_addr == entry.base_addr:
                # Ambiguous: writer conflict or eviction.  Never abort
                # outright; re-check the version in the validate stage.
                entry.pending_validate = True
                self.counters.add("base_invalidations")
                return
            if entry.speculative:
                # Any other matching invalidation during the window is
                # treated as a race and aborts the SABRe (Fig. 3).
                self._abort(
                    entry,
                    "window_invalidation"
                    if cause is InvalidationCause.WRITE
                    else "window_eviction",
                )

        return snoop

    # ------------------------------------------------------------------
    # aborts & hardware retry (§5.1)
    # ------------------------------------------------------------------
    def _abort(self, entry: AttEntry, cause: str) -> None:
        if entry.aborted:
            return
        sabre_cfg = self.cfg.sabre
        if (
            sabre_cfg.hardware_retry
            and entry.replied_count == 0
            and entry.retries < sabre_cfg.hardware_retry_limit
        ):
            self._hardware_retry(entry)
            return
        entry.aborted = True
        entry.abort_cause = cause
        self.counters.add("sabre_aborts")
        self.counters.add(f"abort_{cause}")
        self._unsubscribe_all(entry)
        self._flush_junk(entry)

    def _hardware_retry(self, entry: AttEntry) -> None:
        """Transparent retry, only legal before any reply has been sent
        (request-reply invariant, §5.1)."""
        entry.retries += 1
        entry.epoch += 1
        self.counters.add("hardware_retries")
        self._unsubscribe_all(entry)
        entry.issue_count = 0
        entry.received_bits = 0
        entry.version = None
        entry.speculative = self.mode is SabreMode.SPECULATIVE
        entry.pending_validate = False
        entry.stream_buffer.release()
        entry.stream_buffer.assign(entry.base_addr, entry.total_blocks)
        self._pump(entry)

    def _unsubscribe_all(self, entry: AttEntry) -> None:
        for addr in entry.subscribed_blocks:
            self.chip.unsubscribe(addr, entry.snoop_cb)
        entry.subscribed_blocks = []

    def _flush_junk(self, entry: AttEntry) -> None:
        """Reply to received-but-never-issued requests after an abort so
        the one-reply-per-request flow-control invariant holds."""
        total = entry.total_blocks
        req = entry.req_counter
        limit = total if total < req else req
        first = entry.issue_count
        if first >= limit:
            return
        if not self._batched:
            for offset in range(first, limit):
                self._reply_data(entry, offset, junk=True)
            return
        # Batched: one pass over the junk run, one schedule_batch.
        sim = self.sim
        now = sim._now
        server = self.reply_server
        next_free = server._next_free
        busy = server._busy_ns
        nbytes = server._bytes
        cycle = self._cycle
        service = self._reply_service
        send = self.send_packet
        src, _rgp, tid = entry.sabre_id
        nid = self.node_id
        size_bytes = entry.size_bytes
        replied_bits = entry.replied_bits
        entries = []
        for offset in range(first, limit):
            if replied_bits >> offset & 1:
                continue
            replied_bits |= 1 << offset
            entry.replied_count += 1
            size = size_bytes - offset * CACHE_BLOCK
            if size > CACHE_BLOCK:
                size = CACHE_BLOCK
            elif size < 0:
                size = 0
            pkt = Packet(
                PacketKind.SABRE_REPLY, nid, src, tid, offset,
                size_bytes=size, payload=bytes(size),
            )
            start = next_free if next_free > now else now
            next_free = start + service
            busy += service
            nbytes += cycle
            entries.append((next_free, send, (pkt,)))
        entry.replied_bits = replied_bits
        if entries:
            server._next_free = next_free
            server._busy_ns = busy
            server._bytes = nbytes
            sim.schedule_batch(entries)

    # ------------------------------------------------------------------
    # reply path
    # ------------------------------------------------------------------
    def _reply_data(self, entry: AttEntry, offset: int, junk: bool = False) -> None:
        # mark_replied / block_payload_size / read_bytes / sabre_reply
        # inlined: this runs once per transferred cache block.
        if entry.replied_bits >> offset & 1:
            return
        entry.replied_bits |= 1 << offset
        entry.replied_count += 1
        size = entry.size_bytes - offset * CACHE_BLOCK
        if size > CACHE_BLOCK:
            size = CACHE_BLOCK
        elif size < 0:
            size = 0
        if junk:
            payload = bytes(size)
        else:
            # PhysicalMemory.read's region fast path, inlined.
            phys = self._phys
            addr = entry.base_addr + offset * CACHE_BLOCK
            base, end, buf = phys._last
            if base <= addr and addr + size <= end:
                off = addr - base
                payload = bytes(buf[off : off + size])
            else:
                payload = phys.read(addr, size)
        src, _rgp, tid = entry.sabre_id
        pkt = Packet(
            PacketKind.SABRE_REPLY,
            self.node_id,
            src,
            tid,
            offset,
            size_bytes=size,
            payload=payload,
        )
        # reply_server.request inlined (once per transferred block).
        server = self.reply_server
        sim = self.sim
        start = sim._now
        next_free = server._next_free
        if next_free > start:
            start = next_free
        service = self._reply_service
        next_free = start + service
        server._next_free = next_free
        server._busy_ns += service
        server._bytes += self._cycle
        sim.call_at(next_free, self.send_packet, pkt)

    # ------------------------------------------------------------------
    # completion & validate stage (§4.2)
    # ------------------------------------------------------------------
    def _maybe_finish(self, entry: AttEntry) -> None:
        if entry.finished or entry.validating:
            return
        if entry.replied_count < entry.total_blocks:
            return
        if entry.aborted:
            self._send_validation(entry, success=False)
            return
        if self.mode is SabreMode.LOCKING:
            self.lock_table.read_unlock(entry.base_addr)
            entry.lock_held = False
            self._send_validation(entry, success=True)
            return
        needs_validate = entry.pending_validate or self.mode is SabreMode.NAIVE_UNSAFE
        if not needs_validate:
            self._send_validation(entry, success=True)
            return
        # Validate stage: re-read the header and compare versions.
        entry.validating = True
        self.counters.add("validate_rereads")
        t_issue = self.issue_server.request(self._cycle)

        def start_reread() -> None:
            done, _tier = self.chip.read_block(self.tile, entry.base_addr)
            self.sim.call_at(done, finish_reread)

        def finish_reread() -> None:
            current = self.chip.phys.read_u64(
                entry.base_addr + self._version_offset
            )
            ok = current == entry.version and not is_locked(current)
            if not ok:
                self.counters.add("validate_failures")
                entry.aborted = True
                entry.abort_cause = "validate_mismatch"
                self.counters.add("sabre_aborts")
            self._send_validation(entry, success=ok)

        self.sim.call_at(t_issue, start_reread)

    def _send_validation(self, entry: AttEntry, success: bool) -> None:
        entry.finished = True
        if success:
            self.counters.add("sabre_successes")
        self._unsubscribe_all(entry)
        src, _rgp, tid = entry.sabre_id
        pkt = sabre_validation(self.node_id, src, tid, success)
        pkt.meta["version"] = entry.version
        t_reply = self.reply_server.request(self._cycle)
        self.sim.call_at(t_reply, self.send_packet, pkt)
        self.att.free(entry)
        if self._pending_registrations and self.att.has_free_entry():
            self._register(self._pending_registrations.popleft())

    # ------------------------------------------------------------------
    # destination-side locking variant (§3.2)
    # ------------------------------------------------------------------
    def _acquire_lock(self, entry: AttEntry) -> None:
        t_issue = self.issue_server.request(self._cycle)

        def attempt() -> None:
            if entry.finished:
                return
            done, _tier = self.chip.read_block(self.tile, entry.base_addr)
            self.sim.call_at(done, decide)

        def decide() -> None:
            if entry.finished:
                return
            version = self.chip.phys.read_u64(
                entry.base_addr + self._version_offset
            )
            if not is_locked(version) and self.lock_table.try_read_lock(
                entry.base_addr
            ):
                entry.lock_held = True
                entry.version = version
                self._pump(entry)
            else:
                self.counters.add("lock_waits")
                self.sim.call_later(
                    self.cfg.sabre.lock_retry_ns, lambda: attempt()
                )

        self.sim.call_at(t_issue, attempt)

"""Active Transfers Table (§4.2, Fig. 4).

An ATT entry represents one SABRe during its lifetime: base address,
size, the soNUMA request counter (§5.1), the issue counter, the
speculation bit that marks the window of vulnerability, the version
field recorded when the object's header is first read, and the
pending-validate flag raised by ambiguous base-block invalidations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.core.stream_buffer import StreamBuffer

#: (source node, request-generation pipeline id, transfer id) — §5.1.
SabreId = Tuple[int, int, int]


@dataclass(slots=True)
class AttEntry:
    """One in-flight SABRe at the destination R2P2."""

    sabre_id: SabreId
    base_addr: int
    total_blocks: int
    size_bytes: int
    stream_buffer: StreamBuffer
    registered_at: float

    req_counter: int = 0  # request packets received (§5.1 folding)
    issue_count: int = 0  # loads issued to the memory hierarchy
    received_bits: int = 0  # replies back from memory (bitvector)
    replied_bits: int = 0  # replies sent to the source (bitvector)
    replied_count: int = 0

    version: Optional[int] = None  # ATT version field (§4.2)
    speculative: bool = True  # set during the window of vulnerability
    pending_validate: bool = False  # base-block invalidation seen
    aborted: bool = False
    abort_cause: Optional[str] = None
    validating: bool = False
    finished: bool = False
    retries: int = 0  # hardware-retry ablation (§5.1)
    epoch: int = 0  # bumped by each hardware retry to squash stale replies
    subscribed_blocks: List[int] = field(default_factory=list)
    lock_held: bool = False  # LOCKING variant bookkeeping
    snoop_cb: Optional[Callable[[int, object], None]] = None

    @property
    def window_open(self) -> bool:
        return self.speculative and not self.aborted

    def mark_received(self, offset: int) -> None:
        self.received_bits |= 1 << offset

    def is_received(self, offset: int) -> bool:
        return bool(self.received_bits >> offset & 1)

    def mark_replied(self, offset: int) -> bool:
        """Record a reply for ``offset``; False if already replied."""
        if self.replied_bits >> offset & 1:
            return False
        self.replied_bits |= 1 << offset
        self.replied_count += 1
        return True

    @property
    def all_replied(self) -> bool:
        return self.replied_count >= self.total_blocks

    def block_addr(self, offset: int) -> int:
        return self.base_addr + offset * 64


class ActiveTransfersTable:
    """Fixed-size table of ATT entries, one stream buffer each.

    When every entry is busy, new registrations queue (the R2P2 simply
    exerts backpressure; §4.1's sizing argument makes this rare for the
    paper's configuration)."""

    def __init__(self, entries: int, stream_buffer_depth: int):
        if entries < 1:
            raise SimulationError(f"ATT needs >= 1 entry: {entries}")
        self.capacity = entries
        self._entries: Dict[SabreId, AttEntry] = {}
        #: Bound ``dict.get`` over the live-entry map: the R2P2's
        #: per-request lookup fast path (one packet per cache block
        #: lands here, so the method-dispatch hop is worth skipping).
        self.lookup_fast = self._entries.get
        self._free_buffers: List[StreamBuffer] = [
            StreamBuffer(stream_buffer_depth) for _ in range(entries)
        ]
        self.registrations = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    def has_free_entry(self) -> bool:
        return len(self._entries) < self.capacity

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def register(
        self,
        sabre_id: SabreId,
        base_addr: int,
        total_blocks: int,
        size_bytes: int,
        now: float,
    ) -> AttEntry:
        if sabre_id in self._entries:
            raise SimulationError(f"SABRe {sabre_id} already registered")
        if not self.has_free_entry():
            raise SimulationError("ATT full; caller must queue")
        buffer = self._free_buffers.pop()
        buffer.assign(base_addr, total_blocks)
        entry = AttEntry(
            sabre_id=sabre_id,
            base_addr=base_addr,
            total_blocks=total_blocks,
            size_bytes=size_bytes,
            stream_buffer=buffer,
            registered_at=now,
        )
        self._entries[sabre_id] = entry
        self.registrations += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def lookup(self, sabre_id: SabreId) -> Optional[AttEntry]:
        return self.lookup_fast(sabre_id)

    def free(self, entry: AttEntry) -> None:
        stored = self._entries.pop(entry.sabre_id, None)
        if stored is not entry:
            raise SimulationError(f"entry {entry.sabre_id} not active")
        entry.stream_buffer.release()
        self._free_buffers.append(entry.stream_buffer)

    def entries(self) -> List[AttEntry]:
        return list(self._entries.values())

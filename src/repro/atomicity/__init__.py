"""Concurrency-control mechanisms for atomic object reads (Table 1).

Source-side software mechanisms (FaRM per-cache-line versions, Pilaf
checksums) and destination-side locking state live here; the
destination-side hardware mechanism (LightSABRes) lives in
:mod:`repro.core`.
"""

from repro.atomicity.locks import LeaseLockTable, ReaderWriterLockTable
from repro.atomicity.mechanisms import (
    AtomicityMechanism,
    ChecksumMechanism,
    HardwareSabreMechanism,
    PerCacheLineMechanism,
    mechanism_by_name,
)

__all__ = [
    "AtomicityMechanism",
    "ChecksumMechanism",
    "HardwareSabreMechanism",
    "LeaseLockTable",
    "PerCacheLineMechanism",
    "ReaderWriterLockTable",
    "mechanism_by_name",
]

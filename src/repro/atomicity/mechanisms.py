"""Atomicity-mechanism strategies used by readers.

Each mechanism bundles the object layout it requires, whether the read
path is zero-copy, the functional post-transfer check, and the CPU
cost charged for that check — the ingredients Figs. 1, 8, 9 and 10
vary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.costs import SoftwareCosts
from repro.objstore.layout import (
    ChecksumLayout,
    ObjectLayout,
    PerCacheLineLayout,
    RawLayout,
    StripResult,
)


class AtomicityMechanism(ABC):
    """Strategy for enforcing atomic remote object reads."""

    #: Short identifier used in result tables.
    name: str = ""
    #: True when the transfer can land directly in the application
    #: buffer (no intermediate buffering, no stripping) — §2.3.
    zero_copy: bool = False
    #: True when atomicity is enforced by destination hardware, so the
    #: reader trusts the CQ success flag rather than inspecting bytes.
    hardware: bool = False

    def __init__(self, layout: ObjectLayout):
        self.layout = layout

    @abstractmethod
    def check(self, raw: bytes, data_len: int) -> StripResult:
        """Functional post-transfer validation + data extraction."""

    @abstractmethod
    def check_cost_ns(self, costs: SoftwareCosts, data_len: int) -> float:
        """CPU time charged for :meth:`check` on the reader core."""


class PerCacheLineMechanism(AtomicityMechanism):
    """FaRM's per-cache-line versions (state of the art, §2.1)."""

    name = "percl_versions"
    zero_copy = False

    def __init__(self, version_bits: int = 16):
        super().__init__(PerCacheLineLayout(version_bits))

    def check(self, raw: bytes, data_len: int) -> StripResult:
        return self.layout.unpack(raw, data_len)

    def check_cost_ns(self, costs: SoftwareCosts, data_len: int) -> float:
        return costs.strip_cost_ns(self.layout.wire_size(data_len))


class ChecksumMechanism(AtomicityMechanism):
    """Pilaf's checksum validation (§2.1): ~12 cycles per byte."""

    name = "checksum"
    zero_copy = False

    def __init__(self) -> None:
        super().__init__(ChecksumLayout())

    def check(self, raw: bytes, data_len: int) -> StripResult:
        return self.layout.unpack(raw, data_len)

    def check_cost_ns(self, costs: SoftwareCosts, data_len: int) -> float:
        return costs.checksum_cost_ns(data_len)


class HardwareSabreMechanism(AtomicityMechanism):
    """SABRes: atomicity is the destination hardware's problem.

    The object store stays unmodified (RawLayout), transfers are
    zero-copy, and the reader's only check is the CQ success field —
    an object-size-agnostic action (§7.2).
    """

    name = "sabre"
    zero_copy = True
    hardware = True

    def __init__(self) -> None:
        super().__init__(RawLayout())

    def check(self, raw: bytes, data_len: int) -> StripResult:
        return self.layout.unpack(raw, data_len)

    def check_cost_ns(self, costs: SoftwareCosts, data_len: int) -> float:
        return 0.0


def mechanism_by_name(name: str) -> AtomicityMechanism:
    """Factory used by the CLI and benchmark harnesses."""
    table = {
        PerCacheLineMechanism.name: PerCacheLineMechanism,
        ChecksumMechanism.name: ChecksumMechanism,
        HardwareSabreMechanism.name: HardwareSabreMechanism,
    }
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; choose from {sorted(table)}"
        ) from None

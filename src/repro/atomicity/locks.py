"""Reader-writer lock tables for destination-side locking SABRes and
the DrTM-style source-locking baseline.

The paper (§3.2) notes that a locking implementation of SABRes needs
*shared reader locks* so concurrent readers do not serialize, and that
lease locks (DrTM) address fault tolerance at the price of clock-skew
sensitivity.  Both live here as functional state machines; timing is
charged by the callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class _LockState:
    readers: int = 0
    writer: bool = False


class ReaderWriterLockTable:
    """Shared-reader / exclusive-writer locks keyed by object base."""

    def __init__(self) -> None:
        self._locks: Dict[int, _LockState] = {}
        self.reader_acquisitions = 0
        self.writer_acquisitions = 0
        self.contended = 0

    def _state(self, key: int) -> _LockState:
        state = self._locks.get(key)
        if state is None:
            state = _LockState()
            self._locks[key] = state
        return state

    def try_read_lock(self, key: int) -> bool:
        state = self._state(key)
        if state.writer:
            self.contended += 1
            return False
        state.readers += 1
        self.reader_acquisitions += 1
        return True

    def read_unlock(self, key: int) -> None:
        state = self._state(key)
        if state.readers <= 0:
            raise RuntimeError(f"read_unlock without lock on {key:#x}")
        state.readers -= 1

    def try_write_lock(self, key: int) -> bool:
        state = self._state(key)
        if state.writer or state.readers > 0:
            self.contended += 1
            return False
        state.writer = True
        self.writer_acquisitions += 1
        return True

    def write_unlock(self, key: int) -> None:
        state = self._state(key)
        if not state.writer:
            raise RuntimeError(f"write_unlock without lock on {key:#x}")
        state.writer = False

    def readers_of(self, key: int) -> int:
        return self._state(key).readers

    def write_locked(self, key: int) -> bool:
        return self._state(key).writer


@dataclass
class _Lease:
    holder: int
    expires_at: float


class LeaseLockTable:
    """DrTM-style lease locks: a lock auto-expires after ``lease_ns``.

    ``clock_skew_ns`` models per-node clock disagreement: a holder
    whose clock runs fast may believe its lease is still valid after
    the lock manager has expired it — the hazard §2.1 points out.
    """

    def __init__(self, lease_ns: float, clock_skew_ns: float = 0.0):
        if lease_ns <= 0:
            raise ValueError(f"lease must be positive: {lease_ns}")
        self.lease_ns = lease_ns
        self.clock_skew_ns = clock_skew_ns
        self._leases: Dict[int, _Lease] = {}
        self.granted = 0
        self.rejected = 0
        self.expired_grants = 0

    def try_acquire(self, key: int, holder: int, now: float) -> bool:
        lease = self._leases.get(key)
        if lease is not None and lease.expires_at > now:
            self.rejected += 1
            return False
        if lease is not None:
            self.expired_grants += 1
        self._leases[key] = _Lease(holder, now + self.lease_ns)
        self.granted += 1
        return True

    def holder_believes_valid(self, key: int, holder: int, now: float) -> bool:
        """Whether ``holder``'s (possibly skewed) clock says the lease
        still stands.  True while the manager has expired it == unsafe."""
        lease = self._leases.get(key)
        if lease is None or lease.holder != holder:
            return False
        return lease.expires_at + self.clock_skew_ns > now

    def release(self, key: int, holder: int) -> None:
        lease = self._leases.get(key)
        if lease is not None and lease.holder == holder:
            del self._leases[key]

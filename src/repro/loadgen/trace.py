"""Deterministic arrival-trace synthesis.

An open-loop arrival process at target rate ``qps`` is a Poisson
process: independent exponential gaps with mean ``1/qps``.  The trace
is generated entirely from :func:`~repro.common.rng.make_rng` streams,
so the same :class:`TraceConfig` always yields the same
:class:`~repro.serve.ops.ArrivalTrace` — the foundation of both the
virtual-time determinism tests and the serial == ``--jobs`` sweep
parity.

Key popularity and read/write mixes are the YCSB ones
(:data:`repro.workloads.ycsb.YCSB_MIXES`, :mod:`repro.workloads.
generators`): workload A is update-heavy, B read-mostly, C read-only,
over uniform or Zipfian key popularity.  A ``txn_fraction`` slice of
arrivals becomes multi-key read-modify-write transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.objstore.sharded import ShardedKV
from repro.serve.ops import ArrivalTrace, TimedOp
from repro.workloads.generators import UniformPicker, ZipfianPicker
from repro.workloads.ycsb import DISTRIBUTIONS, YCSB_MIXES


@dataclass
class TraceConfig:
    """One synthetic arrival trace."""

    qps: float = 1000.0
    #: Op count; ``duration_s > 0`` overrides it with ``qps * duration``.
    n_ops: int = 1000
    duration_s: float = 0.0
    workload: str = "B"
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    #: Fraction of arrivals that are multi-key transactions.
    txn_fraction: float = 0.0
    txn_reads: int = 2
    txn_writes: int = 1
    n_objects: int = 512
    seed: int = 1

    def validate(self) -> None:
        if self.qps <= 0:
            raise ConfigError(f"qps must be > 0: {self.qps}")
        if self.workload not in YCSB_MIXES:
            raise ConfigError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(YCSB_MIXES)}"
            )
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                f"unknown distribution {self.distribution!r}; "
                f"choose from {DISTRIBUTIONS}"
            )
        if not 0.0 <= self.txn_fraction <= 1.0:
            raise ConfigError("txn_fraction must be in [0, 1]")
        if self.txn_reads < 0 or self.txn_writes < 0:
            raise ConfigError("txn key counts cannot be negative")
        if self.txn_fraction > 0 and self.txn_reads + self.txn_writes < 1:
            raise ConfigError("transactions need at least one key")
        if self.txn_reads + self.txn_writes > self.n_objects:
            raise ConfigError("transaction wider than the key space")
        if self.n_ops < 1 and self.duration_s <= 0:
            raise ConfigError("need n_ops >= 1 or duration_s > 0")

    @property
    def write_fraction(self) -> float:
        return YCSB_MIXES[self.workload]

    def total_ops(self) -> int:
        if self.duration_s > 0:
            return max(1, int(self.qps * self.duration_s))
        return self.n_ops


def _picker(cfg: TraceConfig):
    ids = range(cfg.n_objects)
    if cfg.distribution == "zipfian":
        return ZipfianPicker(
            ids, cfg.seed, theta=cfg.zipf_theta, label="loadgen"
        )
    return UniformPicker(ids, cfg.seed, label="loadgen")


def _txn_keys(cfg: TraceConfig, pick) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Distinct keys for one transaction, still popularity-weighted:
    draw from the picker, skipping repeats (bounded, then fall back to
    a sequential sweep so the draw always terminates)."""
    wanted = cfg.txn_reads + cfg.txn_writes
    picked: List[int] = []
    attempts = 0
    while len(picked) < wanted and attempts < 50 * wanted:
        idx = pick.pick()
        attempts += 1
        if idx not in picked:
            picked.append(idx)
    fill = 0
    while len(picked) < wanted:
        if fill not in picked:
            picked.append(fill)
        fill += 1
    names = [ShardedKV.key_name(i) for i in picked]
    return (
        tuple(names[: cfg.txn_reads]),
        tuple(names[cfg.txn_reads :]),
    )


def build_trace(cfg: TraceConfig) -> ArrivalTrace:
    """Synthesize the arrival trace for ``cfg`` (deterministic)."""
    cfg.validate()
    arrivals = make_rng(cfg.seed, "loadgen-arrivals")
    mix = make_rng(cfg.seed, "loadgen-mix")
    pick = _picker(cfg)
    rate_per_ns = cfg.qps / 1e9
    ops: List[TimedOp] = []
    t = 0.0
    for op_id in range(cfg.total_ops()):
        t += arrivals.expovariate(rate_per_ns)
        roll = mix.random()
        if roll < cfg.txn_fraction:
            read_keys, write_keys = _txn_keys(cfg, pick)
            ops.append(
                TimedOp(
                    op_id=op_id,
                    at_ns=t,
                    kind="txn",
                    read_keys=read_keys,
                    write_keys=write_keys,
                )
            )
            continue
        key = ShardedKV.key_name(pick.pick())
        kind = "put" if mix.random() < cfg.write_fraction else "get"
        ops.append(TimedOp(op_id=op_id, at_ns=t, kind=kind, key=key))
    return ArrivalTrace(ops=ops, offered_qps=cfg.qps, seed=cfg.seed)

"""The wall-clock open-loop client.

Fires every op of an :class:`~repro.serve.ops.ArrivalTrace` at its
arrival time — on the wall clock, scaled from the trace's virtual
nanoseconds — against a live ``repro-serve`` gateway, without ever
waiting for earlier requests (open loop).  Requests ride a small pool
of keep-alive connections; when the pool is dry a new connection is
opened, so a saturated server sees the backlog instead of throttling
the client.

Latencies here are *wall-clock* — they include the gateway, the time
bridge, and the event loop, unlike the virtual-ns latencies inside the
simulation — and are therefore not deterministic run to run.  The
deterministic path is :meth:`repro.serve.bridge.SimBridge.replay`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import quote

from repro.serve.ops import ArrivalTrace, TimedOp
from repro.sim.stats import Samples


@dataclass
class LoadReport:
    """Wall-clock accounting for one open-loop run."""

    offered_qps: float
    achieved_qps: float
    duration_s: float
    n_ops: int
    n_ok: int
    n_errors: int
    status_counts: Dict[int, int]
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    transport_errors: int
    per_op: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def achieved_ratio(self) -> float:
        if self.offered_qps <= 0:
            return 1.0
        return self.achieved_qps / self.offered_qps

    def to_dict(self, include_ops: bool = False) -> Dict[str, Any]:
        out = {
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "achieved_ratio": self.achieved_ratio,
            "duration_s": self.duration_s,
            "n_ops": self.n_ops,
            "n_ok": self.n_ok,
            "n_errors": self.n_errors,
            "status_counts": {str(k): v for k, v in self.status_counts.items()},
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_ms": self.mean_ms,
            "transport_errors": self.transport_errors,
        }
        if include_ops:
            out["ops"] = self.per_op
        return out


class _ConnPool:
    """Keep-alive connection pool that grows on demand (open loop:
    a request never queues behind another for a socket)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self.opened = 0

    async def acquire(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        while self._idle:
            reader, writer = self._idle.pop()
            if not writer.is_closing():
                return reader, writer
        self.opened += 1
        return await asyncio.open_connection(self.host, self.port)

    def release(
        self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        self._idle.append(conn)

    def discard(
        self, conn: Tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        try:
            conn[1].close()
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        while self._idle:
            self.discard(self._idle.pop())


def _render_request(op: TimedOp) -> bytes:
    if op.kind == "txn":
        body = json.dumps(
            {
                "read_keys": list(op.read_keys),
                "write_keys": list(op.write_keys),
            }
        ).encode("utf-8")
        head = (
            f"POST /v1/txn HTTP/1.1\r\nHost: load\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\nConnection: keep-alive\r\n\r\n"
        )
        return head.encode("latin-1") + body
    method = "GET" if op.kind == "get" else "PUT"
    head = (
        f"{method} /v1/obj/{quote(op.key)} HTTP/1.1\r\nHost: load\r\n"
        f"Content-Length: 0\r\nConnection: keep-alive\r\n\r\n"
    )
    return head.encode("latin-1")


async def _read_response(reader: asyncio.StreamReader) -> int:
    """Parse one keep-alive response; returns the HTTP status."""
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length:
        await reader.readexactly(length)
    return status


async def run_open_loop(
    trace: ArrivalTrace,
    host: str,
    port: int,
    time_scale: float = 1.0,
    request_timeout_s: float = 30.0,
    keep_per_op: bool = False,
) -> LoadReport:
    """Drive ``trace`` against a live gateway.

    ``time_scale`` compresses the virtual arrival stamps onto the wall
    clock: wall seconds between arrivals = virtual ns gap / 1e9 /
    ``time_scale``.  The default 1.0 replays virtual nanoseconds as
    wall nanoseconds — against the fast-mode gateway the trace's QPS
    *is* the wall QPS asked of the server.
    """
    loop = asyncio.get_running_loop()
    pool = _ConnPool(host, port)
    latencies = Samples("load_wall_s")
    status_counts: Dict[int, int] = {}
    per_op: List[Dict[str, Any]] = []
    transport_errors = 0
    tasks: List[asyncio.Task] = []

    async def fire(op: TimedOp) -> None:
        nonlocal transport_errors
        payload = _render_request(op)
        t0 = loop.time()
        try:
            conn = await pool.acquire()
            try:
                conn[1].write(payload)
                await conn[1].drain()
                status = await asyncio.wait_for(
                    _read_response(conn[0]), request_timeout_s
                )
                pool.release(conn)
            except BaseException:
                pool.discard(conn)
                raise
        except (
            ConnectionError,
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ValueError,
        ):
            transport_errors += 1
            return
        wall_s = loop.time() - t0
        latencies.add(wall_s)
        status_counts[status] = status_counts.get(status, 0) + 1
        if keep_per_op:
            per_op.append(
                {
                    "op_id": op.op_id,
                    "kind": op.kind,
                    "status": status,
                    "wall_ms": wall_s * 1e3,
                }
            )

    start = loop.time()
    for op in trace.ops:
        due = start + op.at_ns / 1e9 / time_scale
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(op)))
    if tasks:
        await asyncio.gather(*tasks)
    duration = max(loop.time() - start, 1e-9)
    pool.close()

    n_ok = status_counts.get(200, 0)
    n_done = sum(status_counts.values())
    return LoadReport(
        offered_qps=trace.offered_qps * time_scale
        if trace.offered_qps
        else len(trace.ops) / duration,
        achieved_qps=n_ok / duration,
        duration_s=duration,
        n_ops=len(trace.ops),
        n_ok=n_ok,
        n_errors=(n_done - n_ok) + transport_errors,
        status_counts=status_counts,
        p50_ms=latencies.percentile(50.0) * 1e3,
        p95_ms=latencies.percentile(95.0) * 1e3,
        p99_ms=latencies.percentile(99.0) * 1e3,
        mean_ms=latencies.mean * 1e3,
        transport_errors=transport_errors,
        per_op=per_op,
    )

"""``repro-load`` — open-loop load against a live (or simulated) target.

Three ways to run:

* ``repro-load --url http://127.0.0.1:8373 --qps 200 --duration 5`` —
  wall-clock open loop against a live ``repro-serve``; reports
  achieved QPS, p50/p95/p99 latency, and error counts.
* ``repro-load --replay --qps 500000 --ops 5000`` — the same trace
  replayed in virtual time on an in-process cluster (no server
  needed, fully deterministic).
* ``repro-load --sweep --output sweep.json`` — the saturation sweep:
  offered QPS doubles until achieved/offered collapses; the JSON
  artifact records every step and the measured peak.

``--output FILE`` writes the JSON artifact for any mode.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional
from urllib.parse import urlparse

from repro.common.errors import ConfigError
from repro.loadgen.client import run_open_loop
from repro.loadgen.sweep import SweepConfig, run_sweep, write_artifact
from repro.loadgen.trace import TraceConfig, build_trace
from repro.serve.bridge import SimBridge
from repro.serve.settings import ServeSettings
from repro.workloads.ycsb import DISTRIBUTIONS, YCSB_MIXES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-load",
        description="Open-loop load harness for the repro-serve gateway.",
    )
    target = parser.add_argument_group("target")
    target.add_argument(
        "--url",
        default="http://127.0.0.1:8373",
        help="live gateway base URL (wall-clock mode, the default)",
    )
    target.add_argument(
        "--replay",
        action="store_true",
        help="replay in virtual time on an in-process cluster instead",
    )
    target.add_argument(
        "--sweep",
        action="store_true",
        help="saturation sweep (implies --replay per step)",
    )

    load = parser.add_argument_group("load shape")
    load.add_argument("--qps", type=float, default=1000.0)
    load.add_argument("--ops", type=int, default=1000)
    load.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="seconds of offered load (overrides --ops)",
    )
    load.add_argument("--mix", choices=sorted(YCSB_MIXES), default="B")
    load.add_argument("--distribution", choices=DISTRIBUTIONS, default="zipfian")
    load.add_argument("--zipf-theta", type=float, default=0.99)
    load.add_argument("--txn-fraction", type=float, default=0.0)
    load.add_argument("--objects", type=int, default=512)
    load.add_argument("--seed", type=int, default=1)
    load.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="wall compression for --url mode (see loadgen.client)",
    )

    sweep = parser.add_argument_group("sweep shape")
    sweep.add_argument("--qps-start", type=float, default=4_000_000.0)
    sweep.add_argument("--qps-factor", type=float, default=2.0)
    sweep.add_argument("--steps", type=int, default=8)
    sweep.add_argument("--collapse-ratio", type=float, default=0.85)
    sweep.add_argument("--ops-per-step", type=int, default=2000)
    sweep.add_argument("--mechanism", default="sabre")
    sweep.add_argument("--shards", type=int, default=4)

    parser.add_argument("--output", help="write the JSON artifact here")
    return parser


def _trace_config(args: argparse.Namespace) -> TraceConfig:
    return TraceConfig(
        qps=args.qps,
        n_ops=args.ops,
        duration_s=args.duration,
        workload=args.mix,
        distribution=args.distribution,
        zipf_theta=args.zipf_theta,
        txn_fraction=args.txn_fraction,
        n_objects=args.objects,
        seed=args.seed,
    )


def _emit(payload: dict, output: Optional[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _run_sweep(args: argparse.Namespace) -> int:
    cfg = SweepConfig(
        qps_start=args.qps_start,
        qps_factor=args.qps_factor,
        max_steps=args.steps,
        collapse_ratio=args.collapse_ratio,
        ops_per_step=args.ops_per_step,
        workload=args.mix,
        distribution=args.distribution,
        zipf_theta=args.zipf_theta,
        txn_fraction=args.txn_fraction,
        mechanism=args.mechanism,
        n_shards=args.shards,
        n_objects=args.objects,
        seed=args.seed,
    )
    result = run_sweep(cfg)
    summary = result.to_dict()
    del summary["config"]  # keep stdout focused; the artifact has it all
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.output:
        write_artifact(result, args.output)
    print(
        f"repro-load: peak {result.peak_qps:,.0f} req/s, "
        f"knee {result.knee_qps:,.0f} req/s offered "
        f"({'collapsed' if result.collapsed else 'never collapsed'})",
        file=sys.stderr,
    )
    return 0


def _run_replay(args: argparse.Namespace) -> int:
    trace = build_trace(_trace_config(args))
    bridge = SimBridge(
        ServeSettings(n_objects=args.objects, seed=args.seed)
    )
    bridge.warm()
    report = bridge.replay(trace)
    payload = report.to_row()
    payload["errors_by_status"] = report.errors_by_status
    _emit(payload, args.output)
    return 0


def _run_live(args: argparse.Namespace) -> int:
    parsed = urlparse(args.url)
    if parsed.scheme != "http" or not parsed.hostname:
        raise ConfigError(f"need an http://host:port URL, got {args.url!r}")
    trace = build_trace(_trace_config(args))
    report = asyncio.run(
        run_open_loop(
            trace,
            parsed.hostname,
            parsed.port or 80,
            time_scale=args.time_scale,
        )
    )
    _emit(report.to_dict(), args.output)
    return 0 if report.transport_errors == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.sweep:
            return _run_sweep(args)
        if args.replay:
            return _run_replay(args)
        return _run_live(args)
    except ConfigError as exc:
        print(f"repro-load: {exc}", file=sys.stderr)
        return 2
    except ConnectionError as exc:
        print(f"repro-load: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""``repro-load``: the open-loop load harness for the serving gateway.

* :mod:`repro.loadgen.trace` — deterministic arrival-trace synthesis:
  Poisson (open-loop) arrivals at a target QPS, key popularity and
  read/write mixes reused from the YCSB workload module.
* :mod:`repro.loadgen.client` — the wall-clock client: fires each op
  of a trace at its arrival time over real sockets against a live
  ``repro-serve`` and accounts latency percentiles and errors.
* :mod:`repro.loadgen.sweep` — the saturation sweep: step offered QPS
  until achieved/offered collapses, writing a JSON artifact; also
  registers the ``serve_load_sweep`` experiment spec.

Open-loop means arrivals never wait for completions: a slow server
faces a growing backlog instead of a conveniently self-throttling
client, which is what makes the achieved/offered ratio an honest
saturation signal (Schroeder et al., NSDI'06).
"""

from repro.loadgen.client import LoadReport, run_open_loop
from repro.loadgen.sweep import SweepConfig, run_sweep
from repro.loadgen.trace import TraceConfig, build_trace

__all__ = [
    "LoadReport",
    "SweepConfig",
    "TraceConfig",
    "build_trace",
    "run_open_loop",
    "run_sweep",
]

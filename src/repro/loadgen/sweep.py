"""The saturation sweep: step offered QPS until the cluster collapses.

Each step builds a fresh simulated cluster and replays a freshly
synthesized arrival trace through :meth:`repro.serve.bridge.SimBridge.
replay` (virtual time, fully deterministic).  Offered QPS grows
geometrically until the achieved/offered ratio drops below the
collapse threshold — the open-loop saturation knee — or the step
budget runs out.  The artifact records every step plus the measured
peak, which is what docs/serving.md quotes as the honest
requests-per-second number for the default 4-shard cluster.

Two consumers:

* ``repro-load --sweep`` writes the JSON artifact from the CLI;
* the registered ``serve_load_sweep`` experiment spec runs a scaled
  sweep per mechanism under the harness (serial == ``--jobs`` parity
  holds because every step is a pure function of config + seed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed
from repro.experiments import ExperimentSpec, QaCheck, Variant, register
from repro.loadgen.trace import TraceConfig, build_trace
from repro.serve.bridge import SimBridge
from repro.serve.settings import ServeSettings


@dataclass
class SweepConfig:
    """One saturation sweep."""

    qps_start: float = 4_000_000.0
    qps_factor: float = 2.0
    max_steps: int = 8
    #: Achieved/offered ratio below which the step counts as collapsed.
    collapse_ratio: float = 0.85
    ops_per_step: int = 2_000
    workload: str = "B"
    distribution: str = "zipfian"
    zipf_theta: float = 0.99
    txn_fraction: float = 0.0
    mechanism: str = "sabre"
    n_shards: int = 4
    replication: int = 2
    n_objects: int = 512
    object_size: int = 1024
    n_clients: int = 2
    max_sessions: int = 16
    request_timeout_ns: float = 5_000_000.0
    seed: int = 1

    def validate(self) -> None:
        if self.qps_start <= 0:
            raise ConfigError(f"qps_start must be > 0: {self.qps_start}")
        if self.qps_factor <= 1.0:
            raise ConfigError(f"qps_factor must be > 1: {self.qps_factor}")
        if self.max_steps < 1:
            raise ConfigError("need at least one sweep step")
        if not 0.0 < self.collapse_ratio <= 1.0:
            raise ConfigError("collapse_ratio must be in (0, 1]")
        if self.ops_per_step < 1:
            raise ConfigError("need at least one op per step")
        self.serve_settings().validate()

    def serve_settings(self) -> ServeSettings:
        return ServeSettings(
            mechanism=self.mechanism,
            n_shards=self.n_shards,
            replication=min(self.replication, self.n_shards),
            n_objects=self.n_objects,
            object_size=self.object_size,
            n_clients=self.n_clients,
            max_sessions=self.max_sessions,
            request_timeout_ns=self.request_timeout_ns,
            seed=self.seed,
        )

    def trace_config(self, qps: float, step: int) -> TraceConfig:
        return TraceConfig(
            qps=qps,
            n_ops=self.ops_per_step,
            workload=self.workload,
            distribution=self.distribution,
            zipf_theta=self.zipf_theta,
            txn_fraction=self.txn_fraction,
            n_objects=self.n_objects,
            seed=derive_seed(self.seed, "load-sweep", step),
        )


@dataclass
class SweepResult:
    config: SweepConfig
    steps: List[Dict[str, float]] = field(default_factory=list)

    @property
    def collapsed(self) -> bool:
        if not self.steps:
            return False
        return self.steps[-1]["achieved_ratio"] < self.config.collapse_ratio

    @property
    def peak_qps(self) -> float:
        """Highest achieved QPS across steps — quoted as the cluster's
        measured capacity."""
        if not self.steps:
            return 0.0
        return max(step["achieved_qps"] for step in self.steps)

    @property
    def knee_qps(self) -> float:
        """Last offered QPS the cluster kept up with (0 when even the
        first step collapsed)."""
        held = [
            step["offered_qps"]
            for step in self.steps
            if step["achieved_ratio"] >= self.config.collapse_ratio
        ]
        return max(held) if held else 0.0

    @property
    def undetected_violations(self) -> int:
        return int(
            sum(step["undetected_violations"] for step in self.steps)
        )

    def to_dict(self) -> Dict[str, Any]:
        from dataclasses import asdict

        return {
            "config": asdict(self.config),
            "steps": self.steps,
            "peak_qps": self.peak_qps,
            "knee_qps": self.knee_qps,
            "collapsed": self.collapsed,
            "undetected_violations": self.undetected_violations,
        }


def run_sweep(cfg: SweepConfig) -> SweepResult:
    """Run the sweep (deterministic: fresh cluster per step)."""
    cfg.validate()
    result = SweepResult(config=cfg)
    qps = cfg.qps_start
    for step in range(cfg.max_steps):
        bridge = SimBridge(cfg.serve_settings())
        bridge.warm()
        trace = build_trace(cfg.trace_config(qps, step))
        report = bridge.replay(trace)
        row = {"step": float(step), **report.to_row()}
        result.steps.append(row)
        if report.achieved_ratio < cfg.collapse_ratio:
            break
        qps *= cfg.qps_factor
    return result


def write_artifact(result: SweepResult, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# registered experiment
# ----------------------------------------------------------------------

SWEEP_HEADERS = (
    "workload",
    "sabre_peak_qps",
    "sabre_knee_qps",
    "percl_peak_qps",
    "percl_knee_qps",
    "sabre_violations",
    "percl_violations",
)


def _sweep_point(ctx) -> Dict[str, float]:
    p = ctx.params
    cfg = SweepConfig(
        qps_start=p["qps_start"],
        qps_factor=p["qps_factor"],
        max_steps=p["max_steps"],
        collapse_ratio=p["collapse_ratio"],
        ops_per_step=max(50, int(p["ops_per_step"] * ctx.scale)),
        workload=p["workload"],
        distribution=p["distribution"],
        txn_fraction=p["txn_fraction"],
        mechanism=p["mechanism"],
        n_shards=p["n_shards"],
        replication=p["replication"],
        n_objects=p["n_objects"],
        seed=p["seed"],
    )
    result = run_sweep(cfg)
    v = ctx.variant
    return {
        f"{v}_peak_qps": result.peak_qps,
        f"{v}_knee_qps": result.knee_qps,
        f"{v}_violations": float(result.undetected_violations),
    }


SERVE_LOAD_SWEEP_SPEC = register(
    ExperimentSpec(
        name="serve_load_sweep",
        description=(
            "Open-loop saturation sweep of the serving stack: "
            "offered QPS doubles until achieved/offered collapses"
        ),
        axes={"workload": ("B", "C")},
        variants=(
            Variant("sabre", {"mechanism": "sabre"}),
            Variant("percl", {"mechanism": "percl_versions"}),
        ),
        defaults={
            "mechanism": "sabre",
            "qps_start": 8_000_000.0,
            "qps_factor": 2.0,
            "max_steps": 4,
            "collapse_ratio": 0.85,
            "ops_per_step": 600,
            "distribution": "zipfian",
            "txn_fraction": 0.05,
            "n_shards": 4,
            "replication": 2,
            "n_objects": 512,
            "seed": 23,
        },
        headers=SWEEP_HEADERS,
        point_fn=_sweep_point,
        base_seed=23,
        qa_checks=(
            QaCheck("sabre_peak_qps", agg="min", lo=0.0),
            QaCheck("sabre_violations", agg="max", hi=0.0),
            QaCheck("percl_peak_qps", agg="min", lo=0.0),
        ),
    )
)

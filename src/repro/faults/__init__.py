"""Fault injection beyond clean crash/recover: gray failures,
network partitions and asymmetric link degradation, straggling
backups, and clock-skewed lease views — the rack-scale failure modes
the SABRes argument must survive but :class:`~repro.objstore.failover.
FailurePlan` alone does not exercise."""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.schedule import FAULT_KINDS, FaultSchedule, FaultWindow

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "FaultWindow",
]

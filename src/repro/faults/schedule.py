"""Composable fault schedules beyond clean crash/recover.

:class:`~repro.objstore.failover.FailurePlan` models the one fault
rack-scale papers always model — a shard dies, a backup is promoted.
Real deployments mostly fail *around* that: a shard answers but 10x
slower (gray failure), a switch port drops one direction of one link
(asymmetric partition), a backup straggles behind the replication
fan-out, a skewed clock holds a lease long past its expiry.  This
module is the data half of that failure model:

* A :class:`FaultWindow` is one timed fault — gray, straggler, or
  partition — with its target and severity.
* A :class:`FaultSchedule` is a validated collection of windows plus a
  per-node clock-skew map; builders (:meth:`FaultSchedule.gray_cycles`,
  :meth:`FaultSchedule.partition_cycles`,
  :meth:`FaultSchedule.straggler_cycles`) produce the standard soak
  shapes.

Windows may overlap — unlike crashes, concurrent gray/partition faults
compose (multipliers multiply, severs OR), and the injector
(:class:`~repro.faults.injector.FaultInjector`) does the stacking.
Everything is plain data with schedule-time triggers, so fault runs are
deterministic and byte-identical under parallel sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigError

#: The fault families a window can carry (crash/recover stays with
#: :class:`~repro.objstore.failover.FailurePlan` — it changes
#: membership; these change *behavior* while membership holds).
FAULT_KINDS = ("gray", "straggler", "partition")


@dataclass(frozen=True)
class FaultWindow:
    """One timed fault, open over ``[start_ns, end_ns)``.

    * ``gray`` — node ``node`` serves everything ``multiplier``x
      slower: RPC dispatch/service *and* its memory system.
    * ``straggler`` — node ``node``'s RPC plane (replication acks,
      handler service) runs ``multiplier``x slower but its memory
      system keeps full speed: one-sided reads stay fast while the
      write fan-out limps — the classic straggling backup.
    * ``partition`` — the directed link ``src -> dst`` degrades:
      ``drop`` severs new conversations, ``latency_mult``/``bw_mult``
      slow packets that still flow.  ``src=None`` or ``dst=None`` is a
      wildcard over all other nodes (isolate a node, or degrade its
      whole ingress side).
    """

    kind: str
    start_ns: float
    end_ns: float
    node: Optional[int] = None
    multiplier: float = 1.0
    src: Optional[int] = None
    dst: Optional[int] = None
    drop: bool = False
    latency_mult: float = 1.0
    bw_mult: float = 1.0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ConfigError(
                f"{self.kind} window [{self.start_ns}, {self.end_ns}) "
                "must be non-empty and non-negative"
            )
        if self.kind in ("gray", "straggler"):
            if self.node is None:
                raise ConfigError(f"a {self.kind} window needs a target node")
            if self.multiplier < 1.0:
                raise ConfigError(
                    f"{self.kind} multiplier must be >= 1, got "
                    f"{self.multiplier} (a fault cannot speed a node up)"
                )
        else:  # partition
            if self.src is None and self.dst is None:
                raise ConfigError(
                    "a partition window needs src or dst (both None would "
                    "degrade every link — crash the node instead)"
                )
            if self.src is not None and self.src == self.dst:
                raise ConfigError("a partition window needs src != dst")
            if self.latency_mult < 1.0:
                raise ConfigError(
                    f"partition latency_mult must be >= 1, got "
                    f"{self.latency_mult}"
                )
            if not 0.0 < self.bw_mult <= 1.0:
                raise ConfigError(
                    f"partition bw_mult must be in (0, 1], got {self.bw_mult}"
                )
            if not self.drop and self.latency_mult == 1.0 and self.bw_mult == 1.0:
                raise ConfigError(
                    "a partition window must drop or degrade the link"
                )


class FaultSchedule:
    """A validated set of fault windows plus per-node clock skews."""

    def __init__(
        self,
        windows: Sequence[FaultWindow] = (),
        clock_skew_ns: Mapping[int, float] = (),
    ):
        ordered = sorted(
            windows, key=lambda w: (w.start_ns, w.end_ns, w.kind)
        )
        for window in ordered:
            window.validate()
        self.windows: Tuple[FaultWindow, ...] = tuple(ordered)
        skews: Dict[int, float] = dict(clock_skew_ns)
        for node, skew in skews.items():
            if node < 0:
                raise ConfigError(f"skewed node id cannot be negative: {node}")
            if skew < 0:
                raise ConfigError(f"clock skew cannot be negative: {skew}")
        self.clock_skew_ns: Dict[int, float] = skews

    def __len__(self) -> int:
        return len(self.windows)

    def __bool__(self) -> bool:
        return bool(self.windows) or any(self.clock_skew_ns.values())

    def end_ns(self) -> float:
        """When the last window closes (0 for an empty schedule);
        workloads validate their duration covers it, mirroring
        :meth:`FailurePlan.end_ns`."""
        return max((w.end_ns for w in self.windows), default=0.0)

    def windows_of(self, kind: str) -> Tuple[FaultWindow, ...]:
        return tuple(w for w in self.windows if w.kind == kind)

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule carrying both sets of windows and skews
        (skew maps must not disagree on a node)."""
        skews = dict(self.clock_skew_ns)
        for node, skew in other.clock_skew_ns.items():
            if skews.get(node, skew) != skew:
                raise ConfigError(
                    f"conflicting clock skews for node {node}: "
                    f"{skews[node]} vs {skew}"
                )
            skews[node] = skew
        return FaultSchedule(self.windows + other.windows, skews)

    # ------------------------------------------------------------------
    # builders (the standard soak shapes)
    # ------------------------------------------------------------------
    @classmethod
    def gray_cycles(
        cls,
        nodes: Sequence[int],
        first_ns: float,
        width_ns: float,
        gap_ns: float,
        count: int,
        multiplier: float,
        kind: str = "gray",
    ) -> "FaultSchedule":
        """``count`` gray (or straggler) windows round-robining over
        ``nodes``: each ``width_ns`` long, ``gap_ns`` of full health in
        between — the shape :meth:`FailurePlan.cycles` uses for
        crashes, minus the membership change."""
        if not nodes:
            raise ConfigError("gray cycles need at least one target node")
        if count < 0:
            raise ConfigError(f"cycle count cannot be negative: {count}")
        if width_ns <= 0 or gap_ns < 0:
            raise ConfigError("width must be positive, gap non-negative")
        windows: List[FaultWindow] = []
        t = first_ns
        for i in range(count):
            windows.append(
                FaultWindow(
                    kind,
                    start_ns=t,
                    end_ns=t + width_ns,
                    node=nodes[i % len(nodes)],
                    multiplier=multiplier,
                )
            )
            t += width_ns + gap_ns
        return cls(windows)

    @classmethod
    def straggler_cycles(
        cls,
        nodes: Sequence[int],
        first_ns: float,
        width_ns: float,
        gap_ns: float,
        count: int,
        multiplier: float,
    ) -> "FaultSchedule":
        """Straggling-backup windows — :meth:`gray_cycles` with the
        RPC-plane-only semantics."""
        return cls.gray_cycles(
            nodes, first_ns, width_ns, gap_ns, count, multiplier,
            kind="straggler",
        )

    @classmethod
    def partition_cycles(
        cls,
        links: Sequence[Tuple[Optional[int], Optional[int]]],
        first_ns: float,
        width_ns: float,
        gap_ns: float,
        count: int,
        drop: bool = True,
        latency_mult: float = 1.0,
        bw_mult: float = 1.0,
    ) -> "FaultSchedule":
        """``count`` partition windows round-robining over ``links``
        (``(src, dst)`` pairs, ``None`` a wildcard side)."""
        if not links:
            raise ConfigError("partition cycles need at least one link")
        if count < 0:
            raise ConfigError(f"cycle count cannot be negative: {count}")
        if width_ns <= 0 or gap_ns < 0:
            raise ConfigError("width must be positive, gap non-negative")
        windows: List[FaultWindow] = []
        t = first_ns
        for i in range(count):
            src, dst = links[i % len(links)]
            windows.append(
                FaultWindow(
                    "partition",
                    start_ns=t,
                    end_ns=t + width_ns,
                    src=src,
                    dst=dst,
                    drop=drop,
                    latency_mult=latency_mult,
                    bw_mult=bw_mult,
                )
            )
            t += width_ns + gap_ns
        return cls(windows)

"""Schedule-driven fault injector over a soNUMA cluster.

The execution half of :mod:`repro.faults.schedule`: construction turns
every :class:`~repro.faults.schedule.FaultWindow` into two simulation
events (open, close) and applies the clock-skew map, then the windows
fire on the simulated clock — deterministic schedule-time triggers,
never wall time.

What each family touches when a window opens:

* **gray** — the target node's :class:`~repro.mem.system.
  ChipMemorySystem` service multiplier *and* its
  :class:`~repro.sonuma.rpc.RpcEndpoint` service multiplier.  The node
  answers everything, just slower; watchdogs must re-arm, not fail.
* **straggler** — the RPC plane only: replication acks and handler
  service limp while one-sided reads keep full speed.
* **partition** — :meth:`Fabric.degrade_link` tokens, expanded from
  the window's (possibly wildcard) link spec.  Tokens are restored at
  close *regardless of node aliveness*, which is what keeps
  ``set_alive`` and link degradation composable: a node that crashes
  inside a window and recovers after it rejoins with clean link
  tables.

Overlapping windows stack: per-node multipliers are the product of the
open windows (the injector keeps a stack per node), link tokens compose
inside the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.faults.schedule import FaultSchedule, FaultWindow


@dataclass
class FaultStats:
    """What the injector did, for result rows and fuzz fingerprints."""

    gray_windows: int = 0
    straggler_windows: int = 0
    partition_windows: int = 0
    windows_closed: int = 0
    #: Directed links a partition window degraded (post-wildcard).
    links_degraded: int = 0
    skewed_nodes: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "gray_windows": self.gray_windows,
            "straggler_windows": self.straggler_windows,
            "partition_windows": self.partition_windows,
            "windows_closed": self.windows_closed,
            "links_degraded": self.links_degraded,
            "skewed_nodes": self.skewed_nodes,
        }


class FaultInjector:
    """Drives a :class:`FaultSchedule` against a cluster.

    ``cluster`` is any object with ``sim``, ``fabric``, and ``nodes``
    (a :class:`~repro.sonuma.node.Cluster`); pass the owning
    :class:`~repro.objstore.sharded.ShardedKV` as ``kv`` to also arm
    the service-level failover machinery (client RPC watchdogs via
    ``rpc_timeout_ns`` — armed only when the service has none yet, so
    a :class:`~repro.objstore.failover.FailoverManager`'s choice wins).
    """

    def __init__(
        self,
        cluster,
        schedule: Optional[FaultSchedule] = None,
        kv=None,
        rpc_timeout_ns: Optional[float] = None,
    ):
        self.cluster = cluster
        self.schedule = schedule or FaultSchedule()
        self.stats = FaultStats()
        #: Timeline of ``(t_ns, event, window)`` for reporting.
        self.events: List[Tuple[float, str, FaultWindow]] = []
        #: node id -> stack of open service multipliers, per plane.
        self._chip_stack: Dict[int, List[float]] = {}
        self._rpc_stack: Dict[int, List[float]] = {}
        #: open partition window -> its fabric tokens.
        self._tokens: Dict[int, List] = {}
        self._open = 0

        fabric = cluster.fabric
        n_nodes = len(cluster.nodes)
        for window in self.schedule.windows:
            for endpoint in (window.node, window.src, window.dst):
                if endpoint is not None and not 0 <= endpoint < n_nodes:
                    raise ConfigError(
                        f"{window.kind} window names node {endpoint}; "
                        f"cluster has {n_nodes}"
                    )
        for node_id, skew in sorted(self.schedule.clock_skew_ns.items()):
            if node_id >= n_nodes:
                raise ConfigError(
                    f"skew map names node {node_id}; cluster has {n_nodes}"
                )
            fabric.set_clock_skew(node_id, skew)
            if skew > 0:
                self.stats.skewed_nodes += 1

        if kv is not None and rpc_timeout_ns is not None:
            if kv.rpc_timeout_ns is None:
                kv.rpc_timeout_ns = rpc_timeout_ns

        sim = cluster.sim
        for idx, window in enumerate(self.schedule.windows):
            sim.call_at(window.start_ns, self._open_window, idx, window)
            sim.call_at(window.end_ns, self._close_window, idx, window)

    # ------------------------------------------------------------------
    def any_active(self) -> bool:
        """True while at least one fault window is open — workloads
        meter reads against this, mirroring ``FailoverManager.
        any_down``."""
        return self._open > 0

    def active_multiplier(self, node_id: int) -> float:
        """The composed service multiplier a gray/straggler target is
        running at (1.0 when healthy) — introspection for tests."""
        chip = 1.0
        for m in self._chip_stack.get(node_id, ()):
            chip *= m
        rpc = 1.0
        for m in self._rpc_stack.get(node_id, ()):
            rpc *= m
        return max(chip, rpc)

    # ------------------------------------------------------------------
    def _open_window(self, idx: int, window: FaultWindow) -> None:
        self._open += 1
        self.events.append((self.cluster.sim.now, "open", window))
        if window.kind == "partition":
            self.stats.partition_windows += 1
            tokens = []
            fabric = self.cluster.fabric
            for src, dst in self._expand_links(window):
                tokens.append(
                    fabric.degrade_link(
                        src,
                        dst,
                        drop=window.drop,
                        latency_mult=window.latency_mult,
                        bw_mult=window.bw_mult,
                    )
                )
            self._tokens[idx] = tokens
            self.stats.links_degraded += len(tokens)
            return
        if window.kind == "gray":
            self.stats.gray_windows += 1
            self._push(self._chip_stack, window.node, window.multiplier)
        else:  # straggler: RPC plane only
            self.stats.straggler_windows += 1
        self._push(self._rpc_stack, window.node, window.multiplier)
        self._apply_node(window.node)

    def _close_window(self, idx: int, window: FaultWindow) -> None:
        self._open -= 1
        self.stats.windows_closed += 1
        self.events.append((self.cluster.sim.now, "close", window))
        if window.kind == "partition":
            fabric = self.cluster.fabric
            for token in self._tokens.pop(idx):
                fabric.restore_link(token)
            return
        if window.kind == "gray":
            self._chip_stack[window.node].remove(window.multiplier)
        self._rpc_stack[window.node].remove(window.multiplier)
        self._apply_node(window.node)

    def _expand_links(self, window: FaultWindow) -> List[Tuple[int, int]]:
        n_nodes = len(self.cluster.nodes)
        src, dst = window.src, window.dst
        if src is not None and dst is not None:
            return [(src, dst)]
        if dst is not None:  # isolate/degrade the node's ingress
            return [(s, dst) for s in range(n_nodes) if s != dst]
        return [(src, d) for d in range(n_nodes) if d != src]

    def _push(
        self, stacks: Dict[int, List[float]], node_id: int, mult: float
    ) -> None:
        stacks.setdefault(node_id, []).append(mult)

    def _apply_node(self, node_id: int) -> None:
        node = self.cluster.nodes[node_id]
        chip = 1.0
        for m in self._chip_stack.get(node_id, ()):
            chip *= m
        node.chip.set_service_multiplier(chip)
        endpoint = node.rpc_endpoint
        if endpoint is not None:
            rpc = 1.0
            for m in self._rpc_stack.get(node_id, ()):
                rpc *= m
            endpoint.service_multiplier = rpc

"""SABRes: Atomic Object Reads for In-Memory Rack-Scale Computing.

A behavioral, byte-accurate reproduction of Daglis et al., MICRO 2016.

The package builds the full system the paper evaluates:

* a discrete-event simulation kernel (:mod:`repro.sim`),
* a 16-core chip memory hierarchy with a snooping coherence directory
  (:mod:`repro.mem`, :mod:`repro.noc`),
* the soNUMA protocol and RMC pipelines (:mod:`repro.sonuma`,
  :mod:`repro.fabric`),
* **LightSABRes** — the paper's contribution: ATT, stream buffers, and
  the R2P2 engine with speculative / no-speculation / locking variants
  (:mod:`repro.core`),
* software atomicity baselines (FaRM per-cache-line versions, Pilaf
  checksums, lock tables) (:mod:`repro.atomicity`),
* a FaRM-like distributed object store and KV application
  (:mod:`repro.objstore`),
* microbenchmarks and the per-figure experiment harness
  (:mod:`repro.workloads`, :mod:`repro.harness`).

Quick start::

    from repro import Cluster, ObjectStore, RawLayout

    cluster = Cluster()
    store = ObjectStore(cluster.node(0).phys, RawLayout())
    store.create(1, b"hello world")
    handle = store.handle(1)

    src = cluster.node(1)
    buf = src.alloc_buffer(handle.wire_size)

    def reader():
        result = yield src.sabre_read(0, handle.base_addr,
                                      handle.wire_size, buf)
        print("atomic:", result.success)

    cluster.sim.process(reader())
    cluster.run()
"""

from repro.atomicity.mechanisms import (
    AtomicityMechanism,
    ChecksumMechanism,
    HardwareSabreMechanism,
    PerCacheLineMechanism,
    mechanism_by_name,
)
from repro.common.config import (
    ClusterConfig,
    NodeConfig,
    SabreConfig,
    SabreMode,
    default_cluster,
)
from repro.common.costs import DEFAULT_COSTS, SoftwareCosts
from repro.objstore.farm import FarmConfig, FarmKV, FarmResult, run_farm
from repro.objstore.layout import (
    ChecksumLayout,
    ObjectLayout,
    PerCacheLineLayout,
    RawLayout,
    stamped_payload,
    torn_words,
)
from repro.objstore.local import LocalReadConfig, run_local_reads
from repro.objstore.sharded import HashRing, ShardedConfig, ShardedKV
from repro.objstore.store import ObjectHandle, ObjectStore
from repro.sonuma.node import Cluster, SoNode
from repro.sonuma.rpc import RpcEndpoint
from repro.sonuma.transfer import OpKind, TransferResult
from repro.workloads.microbench import (
    MicrobenchConfig,
    MicrobenchResult,
    run_microbench,
)
from repro.workloads.ycsb import YcsbConfig, YcsbResult, run_ycsb

__version__ = "1.0.0"

__all__ = [
    "AtomicityMechanism",
    "ChecksumLayout",
    "ChecksumMechanism",
    "Cluster",
    "ClusterConfig",
    "DEFAULT_COSTS",
    "FarmConfig",
    "FarmKV",
    "FarmResult",
    "HardwareSabreMechanism",
    "HashRing",
    "LocalReadConfig",
    "MicrobenchConfig",
    "MicrobenchResult",
    "NodeConfig",
    "ObjectHandle",
    "ObjectLayout",
    "ObjectStore",
    "OpKind",
    "PerCacheLineLayout",
    "PerCacheLineMechanism",
    "RawLayout",
    "RpcEndpoint",
    "SabreConfig",
    "SabreMode",
    "ShardedConfig",
    "ShardedKV",
    "SoNode",
    "SoftwareCosts",
    "TransferResult",
    "YcsbConfig",
    "YcsbResult",
    "default_cluster",
    "mechanism_by_name",
    "run_farm",
    "run_local_reads",
    "run_microbench",
    "run_ycsb",
    "stamped_payload",
    "torn_words",
]

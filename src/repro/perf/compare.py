"""Regression gate: diff a BENCH_perf.json against a committed baseline.

A scenario *regresses* when its throughput falls more than
``threshold`` (default 15 %) below the baseline on the gated metric
(default ``events_per_s``).  Improvements never fail the gate — they
are how the baseline gets refreshed.

One-sided scenarios are asymmetric:

* **current without baseline** passes — new scenarios must be able to
  land before their baseline does;
* **baseline without current** FAILS — a benchmark that silently
  stops running (renamed, crashed, filtered out) is indistinguishable
  from a 100 % regression, and for a long time this gate shrugged it
  off as "missing" and reported PASS.  Deleting a scenario for real
  means deleting its baseline entry in the same change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError

#: Default allowed throughput drop before the gate fails.
DEFAULT_THRESHOLD = 0.15

#: Metric the gate reads from each scenario row.
DEFAULT_METRIC = "events_per_s"


@dataclass
class ScenarioDelta:
    """One scenario's baseline-vs-current comparison."""

    name: str
    baseline: Optional[float]
    current: Optional[float]

    @property
    def ratio(self) -> Optional[float]:
        # ``not self.baseline`` also catches a 0.0 baseline: no
        # meaningful ratio exists (and no ZeroDivisionError either) —
        # the scenario is treated as having no usable baseline.
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline

    @property
    def vanished(self) -> bool:
        """Baseline entry exists but the current run never produced
        the scenario — the silently-stopped-benchmark case."""
        return self.baseline is not None and self.current is None

    def regressed(self, threshold: float) -> bool:
        ratio = self.ratio
        return ratio is not None and ratio < 1.0 - threshold


@dataclass
class CompareResult:
    metric: str
    threshold: float
    deltas: List[ScenarioDelta]

    @property
    def regressions(self) -> List[ScenarioDelta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def vanished(self) -> List[ScenarioDelta]:
        """Scenarios with a baseline but no current measurement."""
        return [d for d in self.deltas if d.vanished]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.vanished

    def report(self) -> str:
        lines = [
            f"perf compare — metric={self.metric}, "
            f"regression threshold {self.threshold:.0%}"
        ]
        for d in self.deltas:
            if d.vanished:
                lines.append(
                    f"  {d.name:<24} VANISHED (baseline "
                    f"{d.baseline:.1f}, no current measurement)"
                )
                continue
            if d.ratio is None:
                status = "no-baseline"
                lines.append(f"  {d.name:<24} {status}")
                continue
            flag = "REGRESSION" if d.regressed(self.threshold) else "ok"
            lines.append(
                f"  {d.name:<24} {d.baseline:>14.1f} -> {d.current:>14.1f}"
                f"  ({d.ratio:>6.2f}x)  {flag}"
            )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _scenario_metric(bench: Dict[str, Any], metric: str) -> Dict[str, float]:
    rows = bench.get("scenarios")
    if not isinstance(rows, dict):
        raise ConfigError("malformed bench JSON: no 'scenarios' mapping")
    out: Dict[str, float] = {}
    for name, row in rows.items():
        value = row.get(metric)
        if isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def compare_benchmarks(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    metric: str = DEFAULT_METRIC,
) -> CompareResult:
    """Compare two loaded BENCH dicts on ``metric``."""
    if not 0.0 < threshold < 1.0:
        raise ConfigError(f"threshold must be in (0, 1): {threshold}")
    cur = _scenario_metric(current, metric)
    base = _scenario_metric(baseline, metric)
    names = sorted(set(cur) | set(base))
    deltas = [
        ScenarioDelta(name=n, baseline=base.get(n), current=cur.get(n))
        for n in names
    ]
    return CompareResult(metric=metric, threshold=threshold, deltas=deltas)


def compare_files(
    current_path: str,
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    metric: str = DEFAULT_METRIC,
) -> CompareResult:
    with open(current_path) as fh:
        current = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    return compare_benchmarks(
        current, baseline, threshold=threshold, metric=metric
    )

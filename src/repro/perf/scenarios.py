"""Perf-benchmark scenarios: fixed-work end-to-end simulator runs.

Each scenario is a plain function ``fn(scale) -> dict`` that builds its
workload from a *fixed* config (fixed seeds, fixed measurement window,
so a given scale implies a fixed operation count), runs it to
completion, and returns scenario-specific counters — at minimum
``ops`` (application-level operations completed) and ``sim_ns`` (the
simulated horizon).  The bench harness (:mod:`repro.perf.bench`) wraps
the call with wall-clock timing and simulator event accounting.

Scenario configs deliberately mirror the registered experiment specs'
flagship points (the 4-shard YCSB deployment of ``ycsb_latency``, the
default ``txn_mix`` and ``failover_availability`` mixes) so a perf
regression here is a perf regression every sweep pays.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.harness.report import scaled_duration
from repro.workloads.availability import FailoverMixConfig, run_failover_mix
from repro.workloads.elastic import ElasticConfig, run_elastic
from repro.workloads.fuzz import fuzz_round
from repro.workloads.txn_mix import TxnMixConfig, run_txn_mix
from repro.workloads.ycsb import YcsbConfig, run_ycsb

ScenarioFn = Callable[[float], Dict[str, float]]

#: Seeds for the atomicity-fuzz crash-lane rounds (one round per seed).
FUZZ_ROUND_SEEDS: Tuple[int, ...] = (505, 506, 507)


def ycsb_latency(scale: float = 1.0) -> Dict[str, float]:
    """YCSB-B (the classic read-mostly mix, this repo's default) over
    Zipfian keys on the flagship 4-shard SABRe deployment — the config
    every ``ycsb_latency`` sweep point pays."""
    cfg = YcsbConfig(
        workload="B",
        distribution="zipfian",
        mechanism="sabre",
        n_shards=4,
        readers_per_client=2,
        replication=2,
        object_size=1024,
        n_objects=512,
        duration_ns=scaled_duration(400_000.0, scale),
        warmup_ns=15_000.0,
        seed=7,
    )
    result = run_ycsb(cfg)
    ops = result.reads_completed + result.writes_completed
    return {"ops": ops, "sim_ns": cfg.duration_ns}


def txn_mix(scale: float = 1.0) -> Dict[str, float]:
    """The default YCSB-T-style RMW/read-only transaction mix."""
    cfg = TxnMixConfig(duration_ns=scaled_duration(250_000.0, scale), seed=17)
    result = run_txn_mix(cfg)
    return {
        "ops": result.commits,
        "attempts": result.attempts,
        "sim_ns": cfg.duration_ns,
    }


def failover_availability(scale: float = 1.0) -> Dict[str, float]:
    """The availability mix: readers/writers/transactions riding
    through crash/promote/recover cycles."""
    cfg = FailoverMixConfig(
        duration_ns=scaled_duration(250_000.0, scale), seed=29
    )
    result = run_failover_mix(cfg)
    ops = result.reads_completed + result.writes_completed + result.commits
    return {
        "ops": ops,
        "crashes": result.crashes,
        "sim_ns": cfg.duration_ns,
    }


def gray_availability(scale: float = 1.0) -> Dict[str, float]:
    """The gray-failure availability mix: the flagship
    ``gray_availability`` sweep point (zipfian readers/writers/
    transactions riding through slow-but-alive windows on the shards).
    Because the injector's steady-state cost is a single flag test on
    the fabric/chip/RPC hot paths, this scenario's no-fault cousins
    (``failover_availability`` with zero crash cycles inside the sweep)
    bound the injector overhead: the regression gate's tolerance (<5%)
    is the budget."""
    cfg = FailoverMixConfig(
        duration_ns=scaled_duration(250_000.0, scale),
        seed=37,
        cycles=0,
        distribution="zipfian",
        fault_kind="gray",
        fault_windows=3,
        gray_multiplier=8.0,
        fallback_after_ns=0.0,
    )
    result = run_failover_mix(cfg)
    ops = result.reads_completed + result.writes_completed + result.commits
    return {
        "ops": ops,
        "fault_reads": result.reads_during_fault,
        "watchdog_rearms": result.watchdog_rearms,
        "sim_ns": cfg.duration_ns,
    }


def atomicity_fuzz(scale: float = 1.0) -> Dict[str, float]:
    """Crash-lane fuzz throughput: seed-derived randomized
    interleavings with 3 crash/recover cycles each.  ``ops`` counts
    completed rounds, so ``ops_per_s`` is interleavings per second —
    the number that bounds how many schedules every fuzz lane can
    afford."""
    duration = scaled_duration(45_000.0, scale, floor_ns=20_000.0)
    rounds = 0
    sim_ns = 0.0
    consumed = 0
    for seed in FUZZ_ROUND_SEEDS:
        outcome = fuzz_round(
            "sabre", 4, seed=seed, duration_ns=duration, crash_cycles=3
        )
        rounds += 1
        sim_ns += duration
        consumed += outcome.reads_consumed
    return {"ops": rounds, "reads_consumed": consumed, "sim_ns": sim_ns}


def elastic_scaling(scale: float = 1.0) -> Dict[str, float]:
    """The live-resharding mix: the flagship ``elastic_scaling`` sweep
    point (4 -> 8 shard scale-out mid-run) *without* the fresh-baseline
    comparison run, so the timing covers exactly one elastic run — the
    migration machinery (handoffs, timed copies, double-read walks,
    writer redirects) is what this scenario prices."""
    cfg = ElasticConfig(
        duration_ns=scaled_duration(240_000.0, scale),
        seed=43,
        compare_baseline=False,
    )
    result = run_elastic(cfg)
    ops = (
        result.pre_reads
        + result.mid_reads
        + result.post_reads
        + result.pre_writes
        + result.mid_writes
        + result.post_writes
    )
    return {
        "ops": ops,
        "keys_migrated": result.reshard.keys_migrated,
        "sim_ns": cfg.duration_ns,
    }


#: Registered perf scenarios, in report order.
SCENARIOS: Dict[str, ScenarioFn] = {
    "ycsb_latency": ycsb_latency,
    "txn_mix": txn_mix,
    "failover_availability": failover_availability,
    "gray_availability": gray_availability,
    "atomicity_fuzz": atomicity_fuzz,
    "elastic_scaling": elastic_scaling,
}


def scenario_names() -> Tuple[str, ...]:
    return tuple(SCENARIOS)

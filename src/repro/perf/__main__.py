"""``python -m repro.perf`` — alias for the ``repro-perf`` CLI."""

import sys

from repro.perf.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Timed execution of perf scenarios and the ``BENCH_perf.json`` shape.

The harness runs each scenario ``repeats`` times, keeps the fastest
wall-clock repeat (event counts are deterministic, wall time is not),
and reports simulator throughput three ways:

* ``events_per_s`` — scheduled simulator callbacks per wall second,
  the engine-level headline;
* ``sim_ns_per_s`` — simulated nanoseconds per wall second;
* ``ops_per_s`` — application-level operations per wall second.

For cancellation-heavy scenarios (``failover_availability``'s RPC
watchdogs and lease timers), ``events_scheduled`` and ``events_fired``
diverge by exactly the artifact's ``events_cancelled`` count; quote
``fired_per_s`` as the headline there, since cancelled callbacks are
bookkeeping, not dispatched work.

Event counts come from :data:`repro.sim.engine.TRACKED_SIMULATORS`:
every simulator a scenario builds registers itself while a bench is
running, so multi-cluster scenarios (e.g. the fuzz lane's many rounds)
are fully accounted.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.perf.scenarios import SCENARIOS, ScenarioFn
from repro.sim import engine as engine_mod

#: Default artifact path, relative to the repo root / current directory.
DEFAULT_ARTIFACT = "BENCH_perf.json"

#: Env var selecting the scheduler implementation (the engine's own
#: constant, re-exported for the CLI and tests).
SCHEDULER_ENV = engine_mod.SCHEDULER_ENV


@contextmanager
def _tracked_simulators() -> Iterator[List[Any]]:
    """Collect every Simulator constructed inside the block."""
    prev = engine_mod.TRACKED_SIMULATORS
    sims: List[Any] = []
    engine_mod.TRACKED_SIMULATORS = sims
    try:
        yield sims
    finally:
        engine_mod.TRACKED_SIMULATORS = prev


@contextmanager
def _scheduler(engine: Optional[str]) -> Iterator[None]:
    """Pin the scheduler implementation for the duration of a bench."""
    if engine is None:
        yield
        return
    prev = os.environ.get(SCHEDULER_ENV)
    os.environ[SCHEDULER_ENV] = engine
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(SCHEDULER_ENV, None)
        else:
            os.environ[SCHEDULER_ENV] = prev


@dataclass
class ScenarioTiming:
    """Best-repeat measurement of one scenario.

    ``events_scheduled`` and ``events_fired`` legitimately diverge in
    cancellation-heavy scenarios (failover watchdogs, lease timers):
    every cancelled callback was scheduled but never fires.
    ``events_cancelled`` makes that gap explicit in the artifact, and
    :attr:`fired_per_s` — not :attr:`events_per_s` — is the headline
    throughput number to quote for those scenarios, since it only
    counts callbacks that did real work.
    """

    name: str
    wall_s: float
    events_scheduled: int
    events_fired: int
    sim_ns: float
    ops: float
    events_cancelled: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def events_per_s(self) -> float:
        return self.events_scheduled / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def fired_per_s(self) -> float:
        return self.events_fired / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sim_ns_per_s(self) -> float:
        return self.sim_ns / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    def to_json_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "wall_s": round(self.wall_s, 6),
            "events_scheduled": self.events_scheduled,
            "events_fired": self.events_fired,
            "events_cancelled": self.events_cancelled,
            "events_per_s": round(self.events_per_s, 1),
            "fired_per_s": round(self.fired_per_s, 1),
            "sim_ns": self.sim_ns,
            "sim_ns_per_s": round(self.sim_ns_per_s, 1),
            "ops": self.ops,
            "ops_per_s": round(self.ops_per_s, 1),
        }
        out.update(self.extras)
        return out

    #: to_json_dict keys that are derived or core (everything else in a
    #: journaled payload is an ``extras`` counter).
    _CORE_KEYS = frozenset(
        {
            "wall_s",
            "events_scheduled",
            "events_fired",
            "events_cancelled",
            "events_per_s",
            "fired_per_s",
            "sim_ns",
            "sim_ns_per_s",
            "ops",
            "ops_per_s",
        }
    )

    @classmethod
    def from_json_dict(cls, name: str, data: Dict[str, Any]) -> "ScenarioTiming":
        """Rebuild a timing from its journaled ``to_json_dict`` payload
        (derived ``*_per_s`` rates recompute from the raw fields)."""
        return cls(
            name=name,
            wall_s=float(data["wall_s"]),
            events_scheduled=int(data["events_scheduled"]),
            events_fired=int(data["events_fired"]),
            sim_ns=float(data["sim_ns"]),
            ops=float(data["ops"]),
            events_cancelled=int(data.get("events_cancelled", 0)),
            extras={
                k: v for k, v in data.items() if k not in cls._CORE_KEYS
            },
        )


def run_scenario(
    name: str,
    fn: Optional[ScenarioFn] = None,
    scale: float = 1.0,
    repeats: int = 2,
    engine: Optional[str] = None,
) -> ScenarioTiming:
    """Run one scenario ``repeats`` times; keep the fastest repeat."""
    if fn is None:
        try:
            fn = SCENARIOS[name]
        except KeyError:
            raise ConfigError(
                f"unknown perf scenario {name!r}; "
                f"registered: {', '.join(SCENARIOS)}"
            ) from None
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    best: Optional[ScenarioTiming] = None
    with _scheduler(engine):
        for _ in range(repeats):
            with _tracked_simulators() as sims:
                t0 = time.perf_counter()
                counters = dict(fn(scale))
                wall = time.perf_counter() - t0
            scheduled = sum(s.events_scheduled for s in sims)
            fired = sum(s.events_fired for s in sims)
            cancelled = sum(s.events_cancelled for s in sims)
            sim_ns = float(counters.pop("sim_ns", 0.0))
            ops = float(counters.pop("ops", 0.0))
            timing = ScenarioTiming(
                name=name,
                wall_s=wall,
                events_scheduled=scheduled,
                events_fired=fired,
                sim_ns=sim_ns,
                ops=ops,
                events_cancelled=cancelled,
                extras=counters,
            )
            if best is None or timing.wall_s < best.wall_s:
                best = timing
    assert best is not None
    return best


@dataclass
class BenchResult:
    """One full perf-suite run: per-scenario timings plus provenance."""

    scenarios: Dict[str, ScenarioTiming]
    scale: float
    repeats: int
    engine: str
    elapsed_s: float
    reference: Optional[Dict[str, Any]] = None

    def to_json_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "suite": "repro-perf",
            "version": 1,
            "scale": self.scale,
            "repeats": self.repeats,
            "engine": self.engine,
            "elapsed_s": round(self.elapsed_s, 3),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "scenarios": {
                name: timing.to_json_dict()
                for name, timing in self.scenarios.items()
            },
        }
        if self.reference is not None:
            out["reference"] = self.reference
        return out

    def write_json(self, path: str) -> None:
        # Write-then-rename: a suite killed mid-write must never leave
        # a truncated BENCH artifact for the compare gate to choke on.
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)


def _speedups(
    scenarios: Dict[str, ScenarioTiming], reference: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-scenario throughput ratios vs a reference BENCH dict."""
    ref_rows = reference.get("scenarios", {})
    speedups: Dict[str, Any] = {}
    for name, timing in scenarios.items():
        row = ref_rows.get(name)
        if not row:
            continue
        entry: Dict[str, float] = {}
        ref_events = row.get("events_per_s") or 0.0
        if ref_events > 0:
            entry["events_per_s"] = round(timing.events_per_s / ref_events, 3)
        ref_sim = row.get("sim_ns_per_s") or 0.0
        if ref_sim > 0:
            entry["sim_ns_per_s"] = round(timing.sim_ns_per_s / ref_sim, 3)
        if entry:
            speedups[name] = entry
    return speedups


def _scenario_key(name: str, scale: float, repeats: int, engine: str) -> str:
    """Journal key for one scenario measurement configuration."""
    import hashlib

    canon = repr(("repro-perf", 1, name, scale, repeats, engine))
    return hashlib.sha256(canon.encode()).hexdigest()


def run_suite(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    repeats: int = 2,
    engine: Optional[str] = None,
    reference_path: Optional[str] = None,
    journal: Optional[Any] = None,
) -> BenchResult:
    """Run the (selected) scenarios and assemble a :class:`BenchResult`.

    ``reference_path`` names a previously written BENCH JSON (e.g. the
    committed pre-optimization reference); when given, the result embeds
    per-scenario speedup ratios against it.

    ``journal`` is a :class:`repro.experiments.context.RunContext`
    (typically a campaign directory's context): each scenario's timing
    is recorded as it lands, and already-journaled scenarios are served
    back instead of re-measured — so a killed suite resumes from the
    unfinished scenarios, exactly like an experiment campaign.  Wall
    times are of course only as fresh as the attempt that measured
    them; delete the journal to force re-measurement.
    """
    chosen = list(names) if names else list(SCENARIOS)
    effective = engine or os.environ.get(SCHEDULER_ENV, "calendar")
    start = time.perf_counter()
    timings: Dict[str, ScenarioTiming] = {}
    for name in chosen:
        key = None
        if journal is not None:
            key = _scenario_key(name, scale, repeats, effective)
            cached = journal.get(key)
            if cached is not None:
                timings[name] = ScenarioTiming.from_json_dict(name, cached)
                continue
        timings[name] = run_scenario(
            name, scale=scale, repeats=repeats, engine=engine
        )
        if journal is not None and key is not None:
            journal.record(key, timings[name].to_json_dict(), stage=name)
    elapsed = time.perf_counter() - start
    effective_engine = effective
    reference = None
    if reference_path:
        with open(reference_path) as fh:
            ref = json.load(fh)
        reference = {
            "path": reference_path,
            "engine": ref.get("engine", "unknown"),
            "speedup": _speedups(timings, ref),
        }
    return BenchResult(
        scenarios=timings,
        scale=scale,
        repeats=repeats,
        engine=effective_engine,
        elapsed_s=elapsed,
        reference=reference,
    )

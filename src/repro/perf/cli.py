"""``repro-perf``: run the perf suite and gate regressions.

Examples
--------
Run the full suite and write ``BENCH_perf.json`` at the repo root::

    repro-perf run

CI smoke mode (reduced op counts) with a speedup reference::

    repro-perf run --scale 0.2 --repeats 1 \
        --reference benchmarks/perf_prechange.json

Gate against the committed baseline (fails the process on a >15 %
throughput regression; ``--warn-only`` downgrades that to a warning,
which is how PR builds run it)::

    repro-perf compare BENCH_perf.json benchmarks/perf_baseline.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.perf.bench import DEFAULT_ARTIFACT, run_suite
from repro.perf.compare import DEFAULT_METRIC, DEFAULT_THRESHOLD, compare_files
from repro.perf.scenarios import SCENARIOS, scenario_names


def profile_scenario(
    name: str, scale: float = 0.5, top: int = 30, sort: str = "cumulative"
) -> int:
    """cProfile one scenario run and print the hottest functions.

    The next hot-path hunt starts here instead of from scratch::

        repro-perf profile ycsb_latency --scale 0.5 --top 30
    """
    import cProfile
    import pstats

    try:
        fn = SCENARIOS[name]
    except KeyError:
        print(
            f"unknown scenario {name!r}; "
            f"registered: {', '.join(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    fn(scale)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Simulator perf benchmarks and regression gating.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the perf suite")
    run_p.add_argument(
        "scenarios",
        nargs="*",
        metavar="SCENARIO",
        help=f"subset to run (default: all of {', '.join(scenario_names())})",
    )
    run_p.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="measurement-window scale factor (CI smoke uses 0.2)",
    )
    run_p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help=(
            "wall-clock repeats per scenario; the fastest is kept "
            "(event counts are deterministic, wall time is not — "
            "best-of-3 rides out background load on shared hosts)"
        ),
    )
    run_p.add_argument(
        "--engine",
        choices=("calendar", "heap"),
        default=None,
        help="pin the scheduler implementation (default: env/default)",
    )
    run_p.add_argument(
        "--json-out",
        default=DEFAULT_ARTIFACT,
        help=f"artifact path (default: {DEFAULT_ARTIFACT})",
    )
    run_p.add_argument(
        "--reference",
        default=None,
        help="BENCH JSON to embed per-scenario speedup ratios against",
    )
    run_p.add_argument(
        "--campaign-dir",
        default=None,
        metavar="DIR",
        help="journal finished scenarios under a campaign directory; "
        "a killed suite resumes from the unfinished ones",
    )

    cmp_p = sub.add_parser(
        "compare", help="diff a BENCH_perf.json against a baseline"
    )
    cmp_p.add_argument("current", help="freshly produced BENCH JSON")
    cmp_p.add_argument("baseline", help="committed baseline BENCH JSON")
    cmp_p.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional throughput drop (default 0.15)",
    )
    cmp_p.add_argument(
        "--metric",
        default=DEFAULT_METRIC,
        help=f"scenario metric to gate on (default {DEFAULT_METRIC})",
    )
    cmp_p.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (PR builds)",
    )

    prof_p = sub.add_parser(
        "profile",
        help="cProfile one scenario and dump the hottest functions",
    )
    prof_p.add_argument("scenario", help="scenario to profile")
    prof_p.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="measurement-window scale factor (default 0.5: profiling "
        "overhead makes full-scale runs needlessly slow)",
    )
    prof_p.add_argument(
        "--top",
        type=int,
        default=30,
        help="number of functions to print (default 30)",
    )
    prof_p.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort key (default cumulative)",
    )

    ls_p = sub.add_parser("list", help="list registered perf scenarios")
    del ls_p
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in scenario_names():
            print(name)
        return 0

    if args.command == "run":
        journal = None
        if args.campaign_dir:
            from repro.experiments.context import CampaignContext

            journal = CampaignContext(args.campaign_dir)
        result = run_suite(
            names=args.scenarios or None,
            scale=args.scale,
            repeats=args.repeats,
            engine=args.engine,
            reference_path=args.reference,
            journal=journal,
        )
        if journal is not None:
            journal.close()
            print(
                f"journal: {journal.hits} scenario(s) served from "
                f"{args.campaign_dir}, {journal.misses} measured"
            )
        result.write_json(args.json_out)
        for name, timing in result.scenarios.items():
            print(
                f"{name:<24} wall {timing.wall_s:7.3f}s  "
                f"{timing.events_per_s:>12.0f} events/s  "
                f"{timing.sim_ns_per_s:>12.0f} sim-ns/s  "
                f"{timing.ops_per_s:>10.0f} ops/s"
            )
        if result.reference:
            for name, ratios in result.reference["speedup"].items():
                shown = ", ".join(
                    f"{metric} {ratio:.2f}x" for metric, ratio in ratios.items()
                )
                print(f"{name:<24} vs {result.reference['path']}: {shown}")
        print(f"wrote {args.json_out}")
        return 0

    if args.command == "profile":
        return profile_scenario(
            args.scenario, scale=args.scale, top=args.top, sort=args.sort
        )

    if args.command == "compare":
        result = compare_files(
            args.current,
            args.baseline,
            threshold=args.threshold,
            metric=args.metric,
        )
        print(result.report())
        if not result.ok and args.warn_only:
            print("(warn-only: not failing the build)")
            return 0
        return 0 if result.ok else 1

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())

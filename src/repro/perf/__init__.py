"""Performance-benchmark subsystem.

Times end-to-end simulator runs of the flagship scenarios (YCSB on a
4-shard rack, the transaction mix, the availability-under-crashes mix,
and the atomicity-fuzz crash lane) and reports *simulator throughput*:
events per wall-clock second, simulated ns per wall-clock second, and
operations per second.  ``repro-perf run`` writes ``BENCH_perf.json``
at the repo root; ``repro-perf compare`` gates regressions against a
committed baseline.

See ``docs/performance.md`` for the hot-path architecture and how to
refresh the baseline.
"""

from repro.perf.bench import BenchResult, run_scenario, run_suite
from repro.perf.compare import compare_benchmarks
from repro.perf.scenarios import SCENARIOS, scenario_names

__all__ = [
    "BenchResult",
    "SCENARIOS",
    "compare_benchmarks",
    "run_scenario",
    "run_suite",
    "scenario_names",
]

"""Tests for the shard crash/failover subsystem: plan validation,
typed in-flight failures, backup promotion and permanent re-routing,
epoch fencing, timed re-sync, transaction forced aborts, determinism,
and the registered failover experiments."""

import pytest

from repro.common.errors import ConfigError, ShardCrashedError
from repro.experiments import registry
from repro.experiments.runner import SweepRunner
from repro.objstore.failover import (
    FailoverManager,
    FailurePlan,
    ShardFault,
)
from repro.objstore.layout import is_locked
from repro.objstore.sharded import REPLY_FENCED, ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.workloads.availability import (
    FAILOVER_ATOMICITY_SPEC,
    FAILOVER_AVAILABILITY_SPEC,
    FailoverMixConfig,
    run_failover_mix,
)


def small_kv(**kw):
    defaults = dict(
        n_shards=4,
        replication=2,
        mechanism="sabre",
        object_size=256,
        n_objects=32,
        seed=7,
    )
    defaults.update(kw)
    return ShardedKV(ShardedConfig(**defaults))


def run_gen(kv, gen):
    """Drive one generator to completion; return its value."""
    out = []

    def proc():
        value = yield from gen
        out.append(value)

    kv.cluster.sim.process(proc())
    kv.cluster.sim.run()
    return out[0]


class TestFailurePlan:
    def test_cycles_builder_round_robins(self):
        plan = FailurePlan.cycles(
            [0, 1], first_crash_ns=100.0, downtime_ns=50.0, uptime_ns=25.0,
            count=3,
        )
        assert [f.shard for f in plan.faults] == [0, 1, 0]
        assert [f.crash_ns for f in plan.faults] == [100.0, 175.0, 250.0]
        assert plan.faults[0].recover_ns == 150.0
        assert plan.end_ns() == 300.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            FailurePlan([ShardFault(0, -1.0)])
        with pytest.raises(ConfigError):
            FailurePlan([ShardFault(0, 100.0, 50.0)])  # recover < crash
        with pytest.raises(ConfigError):  # overlapping faults, one shard
            FailurePlan([ShardFault(0, 0.0, 100.0), ShardFault(0, 50.0)])
        with pytest.raises(ConfigError):  # fault after a permanent crash
            FailurePlan([ShardFault(0, 0.0, None), ShardFault(0, 500.0)])
        with pytest.raises(ConfigError):
            FailurePlan.cycles([], 0.0, 10.0, 10.0, 1)

    def test_plan_must_name_real_shards(self):
        kv = small_kv(n_shards=2)
        with pytest.raises(ConfigError):
            FailoverManager(kv, FailurePlan([ShardFault(7, 100.0)]))


class TestCrash:
    def test_in_flight_rpc_fails_with_typed_error(self):
        """A put in flight to the crashing primary fails with
        ShardCrashedError, redirects to the promotee, and still lands
        exactly once."""
        kv = small_kv()
        fm = FailoverManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)

        sim.call_at(100.0, lambda: fm.crash(primary))
        ack = run_gen(kv, iter_put(kv, 0, key))
        assert ack == b"\x01"
        # The redirect was observed as a typed failure on the old
        # primary, and the update landed on the promoted backup.
        assert kv.write_stats[primary].crash_redirects == 1
        assert kv.write_stats[primary].primary_updates == 0
        assert kv.write_stats[backup].primary_updates == 1
        assert kv.stores[backup].current_version(idx) == 2
        assert fm.stats.failed_rpcs >= 1

    def test_reads_served_by_promoted_backup_while_primary_down(self):
        kv = small_kv()
        fm = FailoverManager(kv)
        key = kv.keys()[0]
        primary, backup = kv.replicas_of(key)
        fm.crash(primary)
        session = kv.reader_session(0)
        ok = run_gen(kv, session.lookup(key, t_end=50_000.0))
        assert ok is True
        assert len(session.stats[backup].op_latency) == 1
        assert len(session.stats[primary].op_latency) == 0
        # The promotee serves as *primary* of the new view, not as a
        # fallback read.
        assert session.stats[backup].fallback_reads == 0
        assert kv.current_primary(key) == backup

    def test_promotion_is_permanent_after_recovery(self):
        kv = small_kv()
        fm = FailoverManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        primary, backup = kv.replicas_of(key)
        fm.crash(primary)
        sim.call_at(1_000.0, lambda: fm.recover(primary))
        sim.run()
        assert kv.serving[primary]
        # Recovered shard rejoined as a backup; the promotee keeps the
        # keys it took over.
        assert kv.current_primary(key) == backup
        assert kv.replicas_of(key)[0] == backup
        assert fm.stats.recoveries == 1

    def test_double_crash_rejected(self):
        kv = small_kv()
        fm = FailoverManager(kv)
        fm.crash(1)
        with pytest.raises(ConfigError):
            fm.crash(1)
        with pytest.raises(ConfigError):
            fm.recover(0)  # not down


def iter_put(kv, client, key):
    """A put as a plain generator (instead of a spawned process)."""
    ack = yield kv.put(client, key)
    return ack


class TestFencing:
    def test_stale_epoch_put_is_fenced(self):
        """A forged put stamped with a superseded epoch is refused by
        the handler — the check every real request passes through."""
        kv = small_kv()
        FailoverManager(kv)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        kv.epoch += 1  # view moved on; the forged request did not
        stale = (0).to_bytes(8, "little") + idx.to_bytes(8, "little") + bytes(
            kv.cfg.payload_len
        )

        def forged():
            reply = yield kv.client_rpc(0).call(
                kv.shards[primary].node_id, "shard_put", stale
            )
            return reply

        assert run_gen(kv, forged()) == REPLY_FENCED
        assert kv.write_stats[primary].fenced_rejects == 1
        assert kv.stores[primary].current_version(idx) == 0  # nothing landed

    def test_demoted_primary_fences_puts_for_moved_keys(self):
        """After a crash+recovery the old primary no longer owns its
        keys; a put addressed to it (stale view) is fenced even with a
        current epoch."""
        kv = small_kv()
        fm = FailoverManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        fm.crash(primary)
        sim.call_at(500.0, lambda: fm.recover(primary))
        sim.run()
        assert kv.serving[primary]
        forged = kv.epoch.to_bytes(8, "little") + idx.to_bytes(
            8, "little"
        ) + bytes(kv.cfg.payload_len)

        def send():
            reply = yield kv.client_rpc(0).call(
                kv.shards[primary].node_id, "shard_put", forged
            )
            return reply

        assert run_gen(kv, send()) == REPLY_FENCED

    def test_stale_epoch_try_lock_is_fenced(self):
        kv = small_kv()
        FailoverManager(kv)
        manager = TxnManager(kv)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        kv.epoch += 3
        payload = (0).to_bytes(8, "little") + idx.to_bytes(8, "little")

        def forged():
            reply = yield kv.client_rpc(0).call(
                kv.shards[primary].node_id, "txn_lock", payload
            )
            return reply

        assert run_gen(kv, forged()) == REPLY_FENCED
        assert manager.stats[primary].fenced_locks == 1
        assert not is_locked(kv.stores[primary].current_version(idx))

    def test_rejoining_shard_fences_until_resync_completes(self):
        """Between NI-up and re-sync-end the shard is alive but not
        serving: requests reaching it are fenced."""
        kv = small_kv()
        fm = FailoverManager(kv, resync_fixed_ns=10_000.0)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        fm.crash(primary)
        fm.recover(primary)  # NI back up; re-sync runs for >= 10 us
        payload = kv.epoch.to_bytes(8, "little") + idx.to_bytes(
            8, "little"
        ) + bytes(kv.cfg.payload_len)
        replies = []

        def probe():
            reply = yield kv.client_rpc(0).call(
                kv.shards[primary].node_id, "shard_put", payload
            )
            replies.append(reply)

        sim.process(probe())
        sim.run(until=5_000.0)  # inside the re-sync window
        assert replies == [REPLY_FENCED]
        assert not kv.serving[primary]
        sim.run()
        assert kv.serving[primary]


class TestResync:
    def test_recovered_shard_resyncs_missed_writes(self):
        """Writes accepted by the promotee during the outage reach the
        rejoining shard before it serves again."""
        kv = small_kv()
        fm = FailoverManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)
        fm.crash(primary)

        def write_then_recover():
            for _ in range(3):
                yield kv.put(0, key)
            fm.recover(primary)

        sim.process(write_then_recover())
        sim.run()
        assert kv.stores[backup].current_version(idx) == 6
        assert kv.stores[primary].current_version(idx) == 6
        assert fm.stats.resynced_objects > 0

    def test_resync_clears_stranded_locks(self):
        """An odd (locked) version stranded by a crash mid-update is
        rounded down to the last committed image on rejoin."""
        kv = small_kv()
        fm = FailoverManager(kv)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        store = kv.stores[primary]
        store.phys.write(store.version_addr(idx), (3).to_bytes(8, "little"))
        fm.crash(primary)
        fm.recover(primary)
        kv.cluster.sim.run()
        assert not is_locked(store.current_version(idx))

    def test_resync_charges_simulated_time(self):
        kv = small_kv()
        fm = FailoverManager(
            kv, resync_fixed_ns=1_000.0, resync_ns_per_object=10.0
        )
        sim = kv.cluster.sim
        fm.crash(2)
        fm.recover(2)
        sim.run()
        hosted = sum(1 for place in kv._placement if 2 in place)
        assert sim.now >= 1_000.0 + 10.0 * hosted
        assert fm.stats.resync_ns == 1_000.0 + 10.0 * hosted


class TestTxnForcedAborts:
    def test_crash_under_lock_rpc_forces_abort_crash(self):
        """Crashing the locked shard while the lock RPC is in flight
        yields the distinct abort_crash reason — and the retry commits
        against the promoted view."""
        kv = small_kv()
        fm = FailoverManager(kv)
        manager = TxnManager(kv)
        session = manager.session(0)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        primary = kv.primary_of(key)
        outcomes = []

        def txn():
            outcome = yield from session.run([key], [key], t_end=100_000.0)
            outcomes.append(outcome)

        def racer():
            while manager.stats[primary].lock_rpcs == 0:
                yield sim.timeout(5.0)
            fm.crash(primary)

        sim.process(txn())
        sim.process(racer())
        sim.run()
        (outcome,) = outcomes
        assert outcome.committed
        assert outcome.crash_aborts >= 1
        assert sum(s.crash_aborts for s in manager.stats) >= 1
        # The commit landed on the promoted primary.
        promoted = kv.current_primary(key)
        assert promoted != primary
        assert kv.stores[promoted].current_version(kv.key_index(key)) >= 2

    def test_crash_aborts_reported_in_txn_rows(self):
        kv = small_kv()
        FailoverManager(kv)
        manager = TxnManager(kv)
        rows = manager.txn_rows()
        assert all("crash_aborts" in row for row in rows)
        assert all("fenced_locks" in row for row in rows)
        assert all("partial_commits" in row for row in rows)


class TestMixDeterminismAndHeap:
    CFG = dict(
        n_shards=4,
        n_objects=24,
        object_size=256,
        duration_ns=60_000.0,
        warmup_ns=5_000.0,
        cycles=3,
        seed=41,
    )

    def fingerprint(self, result):
        return (
            result.reads_completed,
            result.reads_during_outage,
            result.writes_completed,
            result.commits,
            result.crash_aborts,
            result.promotions,
            result.read_latency.values,
            result.shard_rows,
            result.txn_rows,
        )

    def test_failover_runs_are_deterministic(self):
        a = run_failover_mix(FailoverMixConfig(**self.CFG))
        b = run_failover_mix(FailoverMixConfig(**self.CFG))
        assert self.fingerprint(a) == self.fingerprint(b)

    def test_soak_keeps_heap_bounded(self):
        """Three crash/recovery cycles of RPC watchdog churn: the
        cancelled-entry compaction keeps the event heap proportional to
        live work instead of growing with every completed RPC."""
        cfg = FailoverMixConfig(**self.CFG)
        kv = ShardedKV(cfg.to_sharded())
        manager = TxnManager(kv)
        fm = FailoverManager(kv, cfg.plan())
        sim = kv.cluster.sim
        t_end = cfg.duration_ns
        peak = {"heap": 0}

        def reader(session, label):
            i = label
            keys = kv.keys()
            while sim.now < t_end:
                yield from session.lookup(keys[i % len(keys)], t_end)
                i += 1

        def writer(client, label):
            i = label
            keys = kv.keys()
            while sim.now < t_end:
                yield kv.put(client, keys[i % len(keys)])
                yield sim.timeout(100.0)
                i += 1

        def txn(session, label):
            keys = kv.keys()
            i = label
            while sim.now < t_end:
                ks = [keys[(i + j) % len(keys)] for j in range(3)]
                yield from session.run(ks, ks[:1], t_end)
                i += 1

        def monitor():
            while sim.now < t_end:
                peak["heap"] = max(peak["heap"], sim.heap_size)
                yield sim.timeout(250.0)

        for client in range(4):
            sim.process(reader(kv.reader_session(client), client))
            sim.process(writer(client, client))
            sim.process(txn(manager.session(client), client))
        sim.process(monitor())
        sim.run()

        assert fm.stats.crashes == 3
        assert fm.stats.recoveries == 3
        # Lazy deletion alone would leave one dead watchdog per served
        # RPC (thousands here); the pending set must stay within a
        # small multiple of the live process count and drain to zero.
        # The heap scheduler gets there through compaction; the
        # calendar scheduler also reaps cancelled entries as they reach
        # a lane head, so it may bound the set without ever compacting.
        if sim.scheduler == "heap":
            assert sim.compactions >= 1
        assert peak["heap"] < 2_000
        assert sim.heap_size == 0


class TestSpecs:
    def test_registered(self):
        names = registry.names()
        assert "failover_availability" in names
        assert "failover_atomicity" in names

    def test_availability_reads_continue_during_outage(self):
        result = SweepRunner(
            FAILOVER_AVAILABILITY_SPEC, scale=0.2, axes={"cycles": (3,)}
        ).run()
        (row,) = result.rows
        assert row["reads"] > 0
        assert row["reads_during_outage"] > 0
        assert row["writes_during_outage"] > 0
        assert row["promotions"] > 0
        assert row["recoveries"] == 3
        assert row["undetected_violations"] == 0

    def test_atomicity_zero_violations_across_cycles(self):
        result = SweepRunner(FAILOVER_ATOMICITY_SPEC, scale=0.2).run()
        (row,) = result.rows
        for label in ("sabre", "percl", "checksum", "drtm"):
            assert row[f"{label}_violations"] == 0
            assert row[f"{label}_torn_reads"] == 0
            assert row[f"{label}_reads"] > 0

    def test_atomicity_parallel_sweep_byte_identical_to_serial(self):
        serial = SweepRunner(FAILOVER_ATOMICITY_SPEC, scale=0.1).run()
        parallel = SweepRunner(FAILOVER_ATOMICITY_SPEC, scale=0.1, jobs=2).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FailoverMixConfig(replication=1).validate()
        with pytest.raises(ConfigError):
            FailoverMixConfig(cycles=-1).validate()
        with pytest.raises(ConfigError):
            FailoverMixConfig(first_crash_frac=1.5).validate()
        with pytest.raises(ConfigError):
            # Plan falls off the end of the run.
            FailoverMixConfig(cycles=10, downtime_frac=0.2).validate()


class TestReviewRegressions:
    def test_watchdog_on_slow_but_live_shard_does_not_fail_the_call(self):
        """A reply that merely outlives the watchdog must not be
        treated as a crash: the lock a slow shard actually acquired
        would be orphaned forever (and a slow put would double-apply).
        The watchdog re-arms while the peer's lease is intact."""
        kv = small_kv()
        FailoverManager(kv, rpc_timeout_ns=100.0)  # far below one RTT
        manager = TxnManager(kv)
        session = manager.session(0)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        outcomes = []

        def txn():
            outcome = yield from session.run([key], [key], t_end=200_000.0)
            outcomes.append(outcome)

        kv.cluster.sim.process(txn())
        kv.cluster.sim.run()
        (outcome,) = outcomes
        assert outcome.committed
        assert outcome.crash_aborts == 0
        # No orphaned lock, and exactly one committed update.
        assert not is_locked(kv.stores[primary].current_version(idx))
        assert kv.stores[primary].current_version(idx) == 2

    def test_slow_put_does_not_double_apply(self):
        kv = small_kv()
        FailoverManager(kv, rpc_timeout_ns=50.0)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        acks = []

        def client():
            ack = yield kv.put(0, key)
            acks.append(ack)

        kv.cluster.sim.process(client())
        kv.cluster.sim.run()
        assert acks == [b"\x01"]
        assert kv.stores[primary].current_version(idx) == 2
        assert kv.write_stats[primary].primary_updates == 1

    def test_plan_crashing_into_a_resync_window_rejected_up_front(self):
        """A crash scheduled while the shard is still re-syncing from
        the previous fault must fail at construction, not unwind the
        simulation from a callback."""
        kv = small_kv()
        with pytest.raises(ConfigError):
            FailoverManager(
                kv,
                FailurePlan(
                    [ShardFault(0, 1_000.0, 2_000.0), ShardFault(0, 2_000.0)]
                ),
            )
        kv = small_kv()
        with pytest.raises(ConfigError):
            # cycles() accepts uptime_ns=0, but back-to-back faults of
            # the same shard cannot fit its re-sync window.
            FailoverManager(
                kv,
                FailurePlan.cycles(
                    [0], first_crash_ns=1_000.0, downtime_ns=2_000.0,
                    uptime_ns=0.0, count=2,
                ),
            )

    def test_plan_with_enough_uptime_still_accepted(self):
        kv = small_kv()
        fm = FailoverManager(
            kv,
            FailurePlan.cycles(
                [0, 1], first_crash_ns=5_000.0, downtime_ns=5_000.0,
                uptime_ns=20_000.0, count=4,
            ),
        )
        kv.cluster.sim.run()
        assert fm.stats.crashes == 4
        assert fm.stats.recoveries == 4

    def test_stale_commit_after_resync_does_not_replicate_phantoms(self):
        """A commit whose lock died in a crash + re-sync must neither
        apply nor replicate: backups may never run ahead of the current
        primary with a write no client was ever acked for."""
        kv = small_kv()
        fm = FailoverManager(kv)
        manager = TxnManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        old_primary = kv.primary_of(key)

        def scenario():
            # Acquire the lock the regular way (owner token 5)...
            reply = yield kv.client_rpc(0).call(
                kv.shards[old_primary].node_id,
                "txn_lock",
                kv.epoch.to_bytes(8, "little")
                + (5).to_bytes(8, "little")
                + idx.to_bytes(8, "little"),
            )
            assert reply.startswith(b"\x01")
            # ... then lose it to a crash + re-sync round trip.
            fm.crash(old_primary)
            fm.recover(old_primary)
            while not kv.serving[old_primary]:
                yield sim.timeout(500.0)
            # The straggling commit reaches the demoted, re-synced shard.
            yield kv.client_rpc(0).call(
                kv.shards[old_primary].node_id,
                "txn_commit",
                (5).to_bytes(8, "little") + idx.to_bytes(8, "little"),
            )

        sim.process(scenario())
        sim.run()
        # Nothing applied, nothing replicated: every replica still
        # holds the pre-transaction image.
        for shard in kv.replicas_of(key):
            assert kv.stores[shard].current_version(idx) == 0, shard
        assert manager.stats[old_primary].partial_commits == 1

    def test_stale_release_cannot_unlock_a_new_owners_lock(self):
        """ABA guard: after a crash + re-sync restores the pre-crash
        committed version, a new transaction's lock republishes the
        same odd value — a straggling release from the *old* owner
        must not unlock it (owner tokens, not bare versions)."""
        kv = small_kv()
        fm = FailoverManager(kv)
        TxnManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        shard = kv.primary_of(key)

        def scenario():
            # Owner A locks (token 7) at version 0 -> 1.
            reply = yield kv.client_rpc(0).call(
                kv.shards[shard].node_id,
                "txn_lock",
                kv.epoch.to_bytes(8, "little")
                + (7).to_bytes(8, "little")
                + idx.to_bytes(8, "little"),
            )
            assert reply.startswith(b"\x01")
            # Crash + recover: A's lock dies, version restored to 0.
            fm.crash(shard)
            fm.recover(shard)
            while not kv.serving[shard]:
                yield sim.timeout(500.0)
            assert not is_locked(kv.stores[shard].current_version(idx))
            # The shard was demoted; route the new lock to the current
            # primary... but the ABA hazard is on the *same* store, so
            # forge owner B's lock directly at the recovered shard
            # after promoting it back for this key.
            fm.crash(kv.current_primary(key))
            assert kv.current_primary(key) == shard
            reply = yield kv.client_rpc(0).call(
                kv.shards[shard].node_id,
                "txn_lock",
                kv.epoch.to_bytes(8, "little")
                + (9).to_bytes(8, "little")
                + idx.to_bytes(8, "little"),
            )
            assert reply.startswith(b"\x01")  # B holds version 1 again
            # A's straggling release (token 7, restore version 0).
            yield kv.client_rpc(0).call(
                kv.shards[shard].node_id,
                "txn_release",
                (7).to_bytes(8, "little")
                + idx.to_bytes(8, "little")
                + (0).to_bytes(8, "little"),
            )
            # B's lock survives; B's own release (token 9) works.
            assert is_locked(kv.stores[shard].current_version(idx))
            yield kv.client_rpc(0).call(
                kv.shards[shard].node_id,
                "txn_release",
                (9).to_bytes(8, "little")
                + idx.to_bytes(8, "little")
                + (0).to_bytes(8, "little"),
            )
            assert kv.stores[shard].current_version(idx) == 0

        sim.process(scenario())
        sim.run()

    def test_put_deadline_bounds_a_permanent_total_outage(self):
        """put(t_end=...) returns None instead of polling forever when
        every replica of the key is permanently down."""
        kv = small_kv()
        fm = FailoverManager(kv)
        key = kv.keys()[0]
        for shard in kv.replicas_of(key):
            fm.crash(shard)
        acks = []

        def client():
            ack = yield kv.put(0, key, t_end=20_000.0)
            acks.append(ack)

        kv.cluster.sim.process(client())
        kv.cluster.sim.run()  # terminates: the poll is bounded
        assert acks == [None]
        assert kv.cluster.sim.now >= 20_000.0

    def test_replication_survives_unrelated_epoch_bump(self):
        """A replica update in flight when an *unrelated* crash bumps
        the epoch must still apply: fencing it would silently strand
        the backup behind an acked write, and a later promotion would
        serve the stale version."""
        kv = small_kv()
        fm = FailoverManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)
        unrelated = next(
            s for s in range(kv.cfg.n_shards) if s not in (primary, backup)
        )
        acks = []

        def client():
            ack = yield kv.put(0, key)
            acks.append(ack)
            # The ack does not wait for replication; bump the epoch
            # while the shard_replicate RPC is still in flight.
            fm.crash(unrelated)

        sim.process(client())
        sim.run()
        assert acks == [b"\x01"]
        assert kv.stores[primary].current_version(idx) == 2
        # The backup caught up despite the epoch bump mid-replication.
        assert kv.stores[backup].current_version(idx) == 2
        assert kv.write_stats[backup].replica_updates == 1


class TestGrayFaultComposition:
    """The fault injector composed with the service-level failover
    machinery: gray windows must stress — never break — the
    slow-not-dead hardening."""

    def test_gray_window_rearms_watchdog_instead_of_failing_txn(self):
        """A transaction committing through a gray window on its
        primary: the RPC watchdog fires (the shard is far slower than
        the timeout) but must re-arm against the intact lease, so the
        commit lands with zero crash aborts and no orphaned lock."""
        from repro.faults import FaultInjector, FaultSchedule, FaultWindow

        kv = small_kv()
        FailoverManager(kv, rpc_timeout_ns=300.0)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        FaultInjector(
            kv.cluster,
            FaultSchedule(
                [
                    FaultWindow(
                        "gray",
                        start_ns=0.0,
                        end_ns=150_000.0,
                        node=primary,
                        multiplier=40.0,
                    )
                ]
            ),
            kv=kv,
        )
        manager = TxnManager(kv)
        session = manager.session(0)
        outcomes = []

        def txn():
            outcome = yield from session.run([key], [key], t_end=200_000.0)
            outcomes.append(outcome)

        kv.cluster.sim.process(txn())
        kv.cluster.sim.run()
        (outcome,) = outcomes
        assert outcome.committed
        assert outcome.crash_aborts == 0
        rearms = sum(e.watchdog_rearms for e in kv.all_endpoints())
        assert rearms > 0  # the watchdog demonstrably fired and re-armed
        timed_out = sum(e.timed_out_calls for e in kv.all_endpoints())
        assert timed_out == 0
        assert not is_locked(kv.stores[primary].current_version(idx))
        assert kv.stores[primary].current_version(idx) == 2

    def test_gray_mix_keeps_serving_with_zero_violations(self):
        """The kv-level gray mix: readers/writers/txns ride through
        slow-but-alive windows; reads keep completing inside the
        windows and the atomicity audit stays clean."""
        cfg = FailoverMixConfig(
            duration_ns=60_000.0,
            seed=37,
            cycles=0,
            fault_kind="gray",
            fault_windows=2,
            gray_multiplier=10.0,
            fallback_after_ns=0.0,
        )
        result = run_failover_mix(cfg)
        assert result.fault_windows == 2
        assert result.reads_during_fault > 0
        assert result.undetected_violations == 0
        assert result.reads_completed > result.reads_during_fault

"""Unit tests for the LRU cache model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.mem.cache import LruCache


def test_insert_and_contains():
    c = LruCache(4)
    assert c.insert(0) is None
    assert c.contains(0)
    assert not c.contains(64)


def test_touch_hit_miss_counting():
    c = LruCache(4)
    c.insert(0)
    assert c.touch(0)
    assert not c.touch(64)
    assert c.hits == 1
    assert c.misses == 1


def test_eviction_is_lru_order():
    c = LruCache(2)
    c.insert(0)
    c.insert(64)
    evicted = c.insert(128)
    assert evicted == (0, False)
    assert not c.contains(0)
    assert c.evictions == 1


def test_touch_refreshes_lru():
    c = LruCache(2)
    c.insert(0)
    c.insert(64)
    c.touch(0)  # 64 becomes LRU
    evicted = c.insert(128)
    assert evicted == (64, False)


def test_dirty_propagates_through_eviction():
    c = LruCache(1)
    c.insert(0, dirty=True)
    evicted = c.insert(64)
    assert evicted == (0, True)


def test_reinsert_keeps_dirty_bit_sticky():
    c = LruCache(2)
    c.insert(0, dirty=True)
    c.insert(0, dirty=False)
    assert c.is_dirty(0)


def test_mark_clean():
    c = LruCache(2)
    c.insert(0, dirty=True)
    c.mark_clean(0)
    assert not c.is_dirty(0)


def test_invalidate():
    c = LruCache(2)
    c.insert(0)
    assert c.invalidate(0)
    assert not c.invalidate(0)
    assert len(c) == 0


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        LruCache(0)


@given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
def test_never_exceeds_capacity(accesses):
    c = LruCache(8)
    for a in accesses:
        if not c.touch(a * 64):
            c.insert(a * 64)
        assert len(c) <= 8


@given(st.lists(st.integers(min_value=0, max_value=31), max_size=200))
def test_most_recent_always_resident(accesses):
    c = LruCache(4)
    for a in accesses:
        addr = a * 64
        if not c.touch(addr):
            c.insert(addr)
        assert c.contains(addr)

"""Unit tests for repro.common.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.units import (
    CACHE_BLOCK,
    blocks_in,
    bytes_per_ns_to_gbps,
    cycles_to_ns,
    gbps_to_bytes_per_ns,
    ns_to_cycles,
)


def test_cache_block_is_64_bytes():
    assert CACHE_BLOCK == 64


def test_cycles_to_ns_at_2ghz():
    assert cycles_to_ns(6, 2.0) == pytest.approx(3.0)


def test_cycles_to_ns_at_1ghz():
    assert cycles_to_ns(7, 1.0) == pytest.approx(7.0)


def test_ns_to_cycles_roundtrip():
    assert ns_to_cycles(cycles_to_ns(128, 2.0), 2.0) == pytest.approx(128)


def test_zero_frequency_rejected():
    with pytest.raises(ValueError):
        cycles_to_ns(1, 0.0)
    with pytest.raises(ValueError):
        ns_to_cycles(1, -1.0)


def test_gbps_conversion_identity():
    # 1 GB/s == 1 byte/ns by definition of our units.
    assert gbps_to_bytes_per_ns(100.0) == pytest.approx(100.0)
    assert bytes_per_ns_to_gbps(25.6) == pytest.approx(25.6)


def test_negative_bandwidth_rejected():
    with pytest.raises(ValueError):
        gbps_to_bytes_per_ns(-1.0)


def test_blocks_in_exact_and_partial():
    assert blocks_in(0) == 0
    assert blocks_in(1) == 1
    assert blocks_in(64) == 1
    assert blocks_in(65) == 2
    assert blocks_in(8192) == 128


def test_blocks_in_negative_rejected():
    with pytest.raises(ValueError):
        blocks_in(-1)


@given(st.integers(min_value=0, max_value=1 << 24))
def test_blocks_in_covers_size(size):
    blocks = blocks_in(size)
    assert blocks * CACHE_BLOCK >= size
    assert (blocks - 1) * CACHE_BLOCK < size or blocks == 0


@given(
    st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
)
def test_cycle_conversion_roundtrip(ns, freq):
    assert cycles_to_ns(ns_to_cycles(ns, freq), freq) == pytest.approx(ns)

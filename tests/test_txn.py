"""Unit tests for the multi-object transaction layer: commit applies
and replicates, validation catches interleaved writers, try-locks
conflict instead of deadlocking, aborts roll locks back, and the
per-shard txn stats account for all of it."""

import pytest

from repro.common.errors import ConfigError
from repro.objstore.layout import is_locked, stamped_payload
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager, TxnOutcome, TxnStats

T_END = 500_000.0


def build(**kw):
    defaults = dict(
        n_shards=2,
        replication=2,
        mechanism="sabre",
        object_size=256,
        n_objects=32,
        seed=7,
    )
    defaults.update(kw)
    kv = ShardedKV(ShardedConfig(**defaults))
    return kv, TxnManager(kv)


def run_txn(kv, session, read_keys, write_keys=(), t_end=T_END, **kw):
    out = []

    def proc():
        outcome = yield from session.run(read_keys, write_keys, t_end, **kw)
        out.append(outcome)

    kv.cluster.sim.process(proc())
    kv.cluster.sim.run()
    return out[0]


@pytest.mark.smoke
class TestCommit:
    def test_rmw_commit_applies_and_replicates(self):
        kv, mgr = build()
        session = mgr.session(0)
        keys = ["key-0", "key-1", "key-2"]
        outcome = run_txn(kv, session, keys, write_keys=["key-0", "key-1"])
        assert outcome.committed
        assert outcome.attempts == 1
        for key in ("key-0", "key-1"):
            idx = kv.key_index(key)
            for shard in kv.replicas_of(key):
                assert kv.stores[shard].current_version(idx) == 2
                strip = kv.stores[shard].read(idx)
                assert strip.data == stamped_payload(2, kv.cfg.payload_len)
        # Read-only key untouched.
        idx = kv.key_index("key-2")
        for shard in kv.replicas_of("key-2"):
            assert kv.stores[shard].current_version(idx) == 0

    def test_read_set_carries_observed_versions_and_values(self):
        kv, mgr = build()
        session = mgr.session(0)
        outcome = run_txn(kv, session, ["key-3", "key-4"])
        assert outcome.committed
        for entry in outcome.reads.values():
            assert entry.version == 0
            assert entry.data == stamped_payload(0, kv.cfg.payload_len)
            assert not entry.torn

    def test_read_only_txn_locks_nothing(self):
        kv, mgr = build()
        session = mgr.session(0)
        outcome = run_txn(kv, session, ["key-0", "key-5", "key-9"])
        assert outcome.committed
        assert all(s.lock_rpcs == 0 for s in mgr.stats)
        assert sum(s.validate_rpcs for s in mgr.stats) >= 1

    def test_commits_attributed_to_every_touched_primary(self):
        kv, mgr = build()
        session = mgr.session(0)
        keys = [kv.key_name(i) for i in range(8)]
        shards = {kv.primary_of(k) for k in keys}
        assert shards == {0, 1}  # spans the deployment
        outcome = run_txn(kv, session, keys, write_keys=keys[:4])
        assert outcome.committed
        for shard in shards:
            assert mgr.stats[shard].commits == 1

    def test_unknown_key_rejected(self):
        kv, mgr = build()
        session = mgr.session(0)
        with pytest.raises(ConfigError):
            run_txn(kv, session, ["nope"])

    def test_bad_max_attempts_rejected(self):
        kv, mgr = build()
        session = mgr.session(0)
        with pytest.raises(ConfigError):
            run_txn(kv, session, ["key-0"], max_attempts=0)


@pytest.mark.smoke
class TestValidationAborts:
    def test_interleaved_put_aborts_read_only_validation(self):
        """A writer committing between a txn's read and its validation
        must abort the transaction (stale read set)."""
        kv, mgr = build()
        session = mgr.session(0)
        key = "key-0"
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        sim = kv.cluster.sim
        out = []

        def txn():
            status, reads = yield from session.attempt([key], [], T_END)
            out.append((status, reads))

        def racer():
            # Wait until the txn's read completed, then sneak a
            # committed update in before its validate RPC lands.
            while not session.reader.stats[primary].op_latency.values:
                yield sim.timeout(50.0)
            kv.stores[primary].write(idx, stamped_payload(2, kv.cfg.payload_len))

        sim.process(txn())
        sim.process(racer())
        sim.run()
        status, reads = out[0]
        assert status == "abort_validate"
        assert reads[key].version == 0
        assert mgr.stats[primary].validation_aborts == 1

    def test_interleaved_put_aborts_write_set_via_lock_reply(self):
        """The pre-lock version returned by ``txn_lock`` doubles as the
        write-set validation: a conflicting commit between read and
        lock aborts."""
        kv, mgr = build()
        session = mgr.session(0)
        key = "key-0"
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        sim = kv.cluster.sim
        out = []

        def txn():
            status, _reads = yield from session.attempt([key], [key], T_END)
            out.append(status)

        def racer():
            while not session.reader.stats[primary].op_latency.values:
                yield sim.timeout(50.0)
            kv.stores[primary].write(idx, stamped_payload(2, kv.cfg.payload_len))

        sim.process(txn())
        sim.process(racer())
        sim.run()
        assert out == ["abort_validate"]
        # The abort rolled the lock back: version is the racer's commit.
        version = kv.stores[primary].current_version(idx)
        assert version == 2
        assert not is_locked(version)
        assert mgr.stats[primary].release_rpcs == 1

    def test_retry_after_abort_commits(self):
        """§7.2's retry policy lifted to transactions: the aborted
        attempt re-reads the fresh versions and commits."""
        kv, mgr = build()
        session = mgr.session(0)
        key = "key-0"
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        sim = kv.cluster.sim
        raced = {"done": False}
        out = []

        def txn():
            outcome = yield from session.run([key], [key], T_END)
            out.append(outcome)

        def racer():
            while not session.reader.stats[primary].op_latency.values:
                yield sim.timeout(50.0)
            if not raced["done"]:
                raced["done"] = True
                kv.stores[primary].write(
                    idx, stamped_payload(2, kv.cfg.payload_len)
                )

        sim.process(txn())
        sim.process(racer())
        sim.run()
        outcome = out[0]
        assert outcome.committed
        assert outcome.attempts == 2
        assert outcome.validation_aborts == 1
        assert mgr.stats[primary].retries == 1
        # Final state: racer's commit (v2) then the txn's commit (v4).
        assert kv.stores[primary].current_version(idx) == 4


@pytest.mark.smoke
class TestLockConflicts:
    def _wedge(self, kv, key):
        """Hold the lock on ``key``'s primary copy, as a transaction
        mid-commit would."""
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        store = kv.stores[primary]
        locked = store.current_version(idx) + 1
        store.phys.write(store.version_addr(idx), locked.to_bytes(8, "little"))
        return primary

    def test_lock_conflict_aborts_without_waiting(self):
        # remote_read consumes regardless of the lock word, so the
        # attempt reaches the lock phase and the try-lock — not the
        # read — is what fails.
        kv, mgr = build(mechanism="remote_read")
        session = mgr.session(0)
        key = "key-0"
        primary = self._wedge(kv, key)
        outcome = run_txn(kv, session, [key], write_keys=[key], max_attempts=3)
        # The try-lock on the wedged key conflicts every attempt — no
        # deadlock, just counted aborts.
        assert not outcome.committed
        assert outcome.lock_aborts == 3
        assert mgr.stats[primary].lock_conflicts == 3

    def test_two_txns_on_shared_keys_serialize(self):
        """Two concurrent transactions over an overlapping write set:
        both eventually commit and every version ends even."""
        kv, mgr = build()
        a, b = mgr.session(0), mgr.session(1 % kv.cfg.clients)
        keys = ["key-0", "key-1", "key-2", "key-3"]
        sim = kv.cluster.sim
        outcomes = []

        def txn(session, write_keys):
            outcome = yield from session.run(keys, write_keys, T_END)
            outcomes.append(outcome)

        sim.process(txn(a, keys[:3]))
        sim.process(txn(b, keys[1:]))
        sim.run()
        assert all(o.committed for o in outcomes)
        for key in keys:
            idx = kv.key_index(key)
            for shard in kv.replicas_of(key):
                version = kv.stores[shard].current_version(idx)
                assert not is_locked(version)
                strip = kv.stores[shard].read(idx)
                assert strip.data == stamped_payload(
                    version, kv.cfg.payload_len
                )

    def test_txn_locks_bounce_concurrent_puts_not_deadlock(self):
        """While a transaction holds locks across RPC round trips,
        plain puts to the same objects bounce off the bounded spin and
        retry — the worker pool never wedges and both finish."""
        kv, mgr = build()
        session = mgr.session(0)
        keys = ["key-0", "key-1"]
        sim = kv.cluster.sim
        done = []

        def txn():
            outcome = yield from session.run(keys, keys, T_END)
            done.append(("txn", outcome.committed))

        def writer():
            for _ in range(3):
                yield kv.put(0, keys[0])
            done.append(("writer", True))

        sim.process(txn())
        sim.process(writer())
        sim.run()
        assert ("txn", True) in done
        assert ("writer", True) in done
        idx = kv.key_index(keys[0])
        version = kv.stores[kv.primary_of(keys[0])].current_version(idx)
        assert version == 8  # one txn commit + three puts, all landed
        assert not is_locked(version)


class TestStats:
    def test_merge_and_rows(self):
        a, b = TxnStats(), TxnStats()
        a.commits, b.commits = 2, 3
        a.lock_conflicts, b.validation_aborts = 1, 4
        a.torn_reads_observed = 5
        a.merge(b)
        assert a.commits == 5
        assert a.lock_conflicts == 1
        assert a.validation_aborts == 4
        assert a.torn_reads_observed == 5
        row = a.as_dict()
        assert row["commits"] == 5
        assert row["validation_aborts"] == 4

    def test_outcome_abort_total(self):
        outcome = TxnOutcome(committed=False, lock_aborts=2, validation_aborts=3)
        assert outcome.aborts == 5

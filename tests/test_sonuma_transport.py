"""Integration tests: two-node soNUMA transport (remote reads, SABRes,
timing invariants, protocol bookkeeping)."""

import dataclasses

import pytest

from repro.common.config import ClusterConfig, SabreMode
from repro.common.errors import SimulationError
from repro.objstore.layout import RawLayout, stamped_payload
from repro.objstore.store import ObjectStore
from repro.sonuma.node import Cluster
from repro.sonuma.transfer import OpKind


def two_nodes(mode=SabreMode.SPECULATIVE, **sabre_kwargs):
    cfg = ClusterConfig().with_sabre_mode(mode)
    if sabre_kwargs:
        sabre = dataclasses.replace(cfg.node.sabre, **sabre_kwargs)
        node = dataclasses.replace(cfg.node, sabre=sabre)
        cfg = dataclasses.replace(cfg, node=node)
    return Cluster(cfg)


def make_object(cluster, payload_len=1000, version=4, obj_id=1):
    store = ObjectStore(cluster.node(0).phys, RawLayout())
    store.create(obj_id, stamped_payload(version, payload_len), version=version)
    return store, store.handle(obj_id)


def run_op(cluster, op_name, handle, obj_version, payload_len):
    src = cluster.node(1)
    buf = src.alloc_buffer(handle.wire_size)
    results = []

    def proc():
        op = getattr(src, op_name)
        result = yield op(0, handle.base_addr, handle.wire_size, buf)
        results.append(result)

    cluster.sim.process(proc())
    cluster.run()
    raw = src.read_local(buf, handle.wire_size)
    strip = RawLayout().unpack(raw, payload_len)
    return results[0], strip


class TestRemoteRead:
    def test_returns_correct_bytes(self):
        cluster = two_nodes()
        store, handle = make_object(cluster)
        result, strip = run_op(cluster, "remote_read", handle, 4, 1000)
        assert result.success
        assert result.op is OpKind.REMOTE_READ
        assert strip.version == 4
        assert strip.data == stamped_payload(4, 1000)

    def test_timings_are_ordered(self):
        cluster = two_nodes()
        store, handle = make_object(cluster)
        result, _ = run_op(cluster, "remote_read", handle, 4, 1000)
        t = result.timings
        assert t.posted <= t.pickup <= t.first_request <= t.last_reply
        assert t.last_reply < t.completed
        assert t.end_to_end_ns > 100.0  # at least one memory round trip

    def test_single_block_latency_in_paper_range(self):
        """Fig. 7a: one-block reads land around 200 ns (3-4x of a ~90 ns
        local memory access) on the modeled system."""
        cluster = two_nodes()
        store = ObjectStore(cluster.node(0).phys, RawLayout())
        store.create(1, stamped_payload(2, 56), version=2)
        handle = store.handle(1)
        result, _ = run_op(cluster, "remote_read", handle, 2, 56)
        assert 150.0 <= result.timings.end_to_end_ns <= 320.0

    def test_larger_reads_scale_sublinearly(self):
        cluster = two_nodes()
        store = ObjectStore(cluster.node(0).phys, RawLayout())
        store.create(1, stamped_payload(2, 56), version=2)
        store.create(2, stamped_payload(2, 8184), version=2)
        small, _ = run_op(cluster, "remote_read", store.handle(1), 2, 56)
        cluster2 = two_nodes()
        store2 = ObjectStore(cluster2.node(0).phys, RawLayout())
        store2.create(2, stamped_payload(2, 8184), version=2)
        big, _ = run_op(cluster2, "remote_read", store2.handle(2), 2, 8184)
        ratio = big.timings.end_to_end_ns / small.timings.end_to_end_ns
        # 128x the data in far less than 128x (or even 8x) the time.
        assert ratio < 8.0

    def test_zero_size_rejected(self):
        cluster = two_nodes()
        with pytest.raises(SimulationError):
            cluster.node(1).remote_read(0, 0x1000, 0, 0x2000)

    def test_self_target_rejected(self):
        cluster = two_nodes()
        with pytest.raises(SimulationError):
            cluster.node(0).remote_read(0, 0x1000, 64, 0x2000)


class TestSabre:
    @pytest.mark.parametrize(
        "mode",
        [SabreMode.SPECULATIVE, SabreMode.NO_SPECULATION, SabreMode.LOCKING],
    )
    def test_quiescent_sabre_succeeds_with_correct_bytes(self, mode):
        cluster = two_nodes(mode)
        store, handle = make_object(cluster)
        result, strip = run_op(cluster, "sabre_read", handle, 4, 1000)
        assert result.success
        assert result.op is OpKind.SABRE
        assert strip.data == stamped_payload(4, 1000)
        assert cluster.node(0).counters.get("sabre_successes") == 1
        assert cluster.node(0).counters.get("sabre_aborts") == 0

    def test_validation_carries_version(self):
        cluster = two_nodes()
        store, handle = make_object(cluster, version=6)
        result, _ = run_op(cluster, "sabre_read", handle, 6, 1000)
        assert result.remote_version == 6

    def test_sabre_on_locked_object_fails(self):
        """An odd header version means a writer holds the object: the
        R2P2 aborts and software sees success=False (§5.1)."""
        cluster = two_nodes()
        store, handle = make_object(cluster, version=4)
        # Lock the object in place (odd version).
        cluster.node(0).phys.write_u64(handle.base_addr, 5)
        result, _ = run_op(cluster, "sabre_read", handle, 5, 1000)
        assert not result.success
        assert cluster.node(0).counters.get("abort_locked_version") == 1

    def test_sabre_latency_close_to_remote_read(self):
        """Fig. 7a: LightSABRes match remote reads for small objects."""
        cluster = two_nodes()
        store, handle = make_object(cluster, payload_len=120)
        sabre, _ = run_op(cluster, "sabre_read", handle, 4, 120)
        cluster2 = two_nodes()
        store2, handle2 = make_object(cluster2, payload_len=120)
        read, _ = run_op(cluster2, "remote_read", handle2, 4, 120)
        delta = abs(sabre.timings.end_to_end_ns - read.timings.end_to_end_ns)
        assert delta <= 0.15 * read.timings.end_to_end_ns

    def test_no_speculation_pays_serialization(self):
        """§3.2/§7.1: serializing the version read adds roughly one
        memory access (~90 ns) to a multi-block SABRe."""
        lat = {}
        for mode in (SabreMode.SPECULATIVE, SabreMode.NO_SPECULATION):
            cluster = two_nodes(mode)
            store, handle = make_object(cluster, payload_len=1000)
            result, _ = run_op(cluster, "sabre_read", handle, 4, 1000)
            assert result.success
            lat[mode] = result.timings.end_to_end_ns
        penalty = lat[SabreMode.NO_SPECULATION] - lat[SabreMode.SPECULATIVE]
        assert 50.0 <= penalty <= 150.0

    def test_att_backpressure_with_one_stream_buffer(self):
        cfg = ClusterConfig().with_sabre_mode(SabreMode.SPECULATIVE)
        sabre = dataclasses.replace(cfg.node.sabre, stream_buffers=1)
        rmc = dataclasses.replace(cfg.node.rmc, backends=1)
        node = dataclasses.replace(cfg.node, sabre=sabre, rmc=rmc)
        cfg = dataclasses.replace(cfg, node=node)
        cluster = Cluster(cfg)
        store = ObjectStore(cluster.node(0).phys, RawLayout())
        for i in range(4):
            store.create(i, stamped_payload(2, 2000), version=2)
        src = cluster.node(1)
        done = []

        def proc(i):
            h = store.handle(i)
            buf = src.alloc_buffer(h.wire_size)
            result = yield src.sabre_read(0, h.base_addr, h.wire_size, buf)
            done.append(result.success)

        for i in range(4):
            cluster.sim.process(proc(i))
        cluster.run()
        assert done == [True] * 4
        assert cluster.node(0).counters.get("att_backpressure") > 0

    def test_concurrent_sabres_all_complete(self):
        cluster = two_nodes()
        store = ObjectStore(cluster.node(0).phys, RawLayout())
        n = 24
        for i in range(n):
            store.create(i, stamped_payload(2, 500), version=2)
        src = cluster.node(1)
        done = []

        def proc(i):
            h = store.handle(i)
            buf = src.alloc_buffer(h.wire_size)
            result = yield src.sabre_read(0, h.base_addr, h.wire_size, buf)
            done.append(result.success)

        for i in range(n):
            cluster.sim.process(proc(i))
        cluster.run()
        assert done == [True] * n


class TestPageBoundary:
    def test_window_stalls_at_page_boundary(self):
        """§4.1: the unroll may not cross a page boundary during the
        window of vulnerability; the SABRe stalls, then completes."""
        cfg = ClusterConfig()
        node = dataclasses.replace(cfg.node, page_bytes=4096)
        cfg = dataclasses.replace(cfg, node=node)
        cluster = Cluster(cfg)
        dst = cluster.node(0)
        # Position an object so it straddles a 4 KB page boundary early.
        pad = 4096 - (dst.phys.allocate(64) % 4096) - 128
        if pad > 0:
            dst.phys.allocate(pad)
        store = ObjectStore(dst.phys, RawLayout())
        store.create(1, stamped_payload(2, 4000), version=2)
        handle = store.handle(1)
        assert (handle.base_addr // 4096) != ((handle.base_addr + handle.wire_size - 1) // 4096)
        result, strip = run_op(cluster, "sabre_read", handle, 2, 4000)
        assert result.success
        assert strip.data == stamped_payload(2, 4000)
        assert dst.counters.get("page_boundary_stalls") > 0

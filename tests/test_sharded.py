"""Tests for the sharded, replicated KV service: consistent-hash
routing, primary/backup placement, read fallback, write replication,
and the SABRe safety property under concurrent shard writers."""

import pytest

from repro.common.errors import ConfigError
from repro.objstore.layout import is_locked, stamped_payload
from repro.objstore.sharded import (
    HashRing,
    ShardedConfig,
    ShardedKV,
    ShardStats,
)
from repro.workloads.ycsb import YcsbConfig, run_ycsb


def small_cfg(**kw):
    defaults = dict(
        n_shards=2,
        replication=2,
        mechanism="sabre",
        object_size=256,
        n_objects=32,
        seed=7,
    )
    defaults.update(kw)
    return ShardedConfig(**defaults)


class TestHashRing:
    def test_routing_is_deterministic_for_a_fixed_seed(self):
        keys = [f"key-{i}" for i in range(200)]
        a = HashRing(range(4), vnodes=32, seed=9)
        b = HashRing(range(4), vnodes=32, seed=9)
        assert [a.primary(k) for k in keys] == [b.primary(k) for k in keys]
        assert [a.replicas(k, 3) for k in keys] == [b.replicas(k, 3) for k in keys]

    def test_different_seed_reshuffles_placement(self):
        keys = [f"key-{i}" for i in range(200)]
        a = HashRing(range(4), vnodes=32, seed=9)
        b = HashRing(range(4), vnodes=32, seed=10)
        assert [a.primary(k) for k in keys] != [b.primary(k) for k in keys]

    def test_replicas_distinct_and_primary_first(self):
        ring = HashRing(range(5), vnodes=16, seed=3)
        for i in range(100):
            replicas = ring.replicas(f"key-{i}", 3)
            assert len(set(replicas)) == 3
            assert replicas[0] == ring.primary(f"key-{i}")

    def test_all_shards_receive_keys(self):
        ring = HashRing(range(4), vnodes=64, seed=1)
        owners = {ring.primary(f"key-{i}") for i in range(512)}
        assert owners == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ConfigError):
            HashRing([], vnodes=8)
        with pytest.raises(ConfigError):
            HashRing(range(2), vnodes=0)
        with pytest.raises(ConfigError):
            HashRing(range(2)).replicas("k", 0)

    def test_replicas_clamp_to_shard_count(self):
        """Asking for more replicas than shards yields every shard
        exactly once (successor lists cannot invent shards)."""
        ring = HashRing(range(3), vnodes=8, seed=5)
        for key in ("a", "b", "key-7"):
            replicas = ring.replicas(key, 10)
            assert sorted(replicas) == [0, 1, 2]
            assert replicas[0] == ring.primary(key)

    def test_replicas_property_over_seeds(self):
        """Property sweep: for every (seed, vnodes, shard count) and
        every n — below, at, and above the shard count — the successor
        list has exactly ``min(n, shards)`` *distinct* shards, starts
        at the primary, and is prefix-consistent (replicas(k, m) is a
        prefix of replicas(k, n) for m <= n)."""
        for seed in (1, 2, 9, 41, 1337):
            for shards in (1, 2, 3, 5, 8):
                for vnodes in (1, 3, 64):
                    ring = HashRing(range(shards), vnodes=vnodes, seed=seed)
                    for i in range(25):
                        key = f"key-{i}"
                        full = ring.replicas(key, shards + 3)
                        assert len(full) == shards
                        assert len(set(full)) == shards
                        assert full[0] == ring.primary(key)
                        for n in range(1, shards + 1):
                            prefix = ring.replicas(key, n)
                            assert len(prefix) == n
                            assert len(set(prefix)) == n
                            assert prefix == full[:n]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            small_cfg(mechanism="bogus").validate()
        with pytest.raises(ConfigError):
            small_cfg(replication=3, n_shards=2).validate()
        with pytest.raises(ConfigError):
            small_cfg(n_shards=0).validate()
        with pytest.raises(ConfigError):
            small_cfg(object_size=8).validate()

    def test_default_clients_track_shards(self):
        assert small_cfg(n_shards=3).clients == 3
        assert small_cfg(n_shards=3, n_clients=1).clients == 1

    def test_cluster_sizes_to_shards_plus_clients(self):
        cfg = small_cfg(n_shards=3, n_clients=2)
        assert cfg.cluster_config().nodes == 5


class TestPlacement:
    def test_placement_deterministic_across_builds(self):
        a = ShardedKV(small_cfg())
        b = ShardedKV(small_cfg())
        assert [a.replicas_of(k) for k in a.keys()] == [
            b.replicas_of(k) for k in b.keys()
        ]

    def test_every_replica_holds_the_object(self):
        kv = ShardedKV(small_cfg())
        for key in kv.keys():
            idx = kv.key_index(key)
            for shard in kv.replicas_of(key):
                handle = kv.stores[shard].handle(idx)
                assert handle.data_len == kv.cfg.payload_len

    def test_unknown_key_rejected(self):
        kv = ShardedKV(small_cfg())
        with pytest.raises(ConfigError):
            kv.key_index("nope")

    def test_objects_spread_across_shards(self):
        kv = ShardedKV(small_cfg(n_shards=4, n_objects=256, replication=1))
        sizes = [len(store) for store in kv.stores]
        assert sum(sizes) == 256
        assert min(sizes) > 0


class TestWritePath:
    def test_put_updates_primary_and_replicates_to_backup(self):
        kv = ShardedKV(small_cfg())
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)
        acks = []

        def client():
            reply = yield kv.put(0, key)
            acks.append(reply)

        sim.process(client())
        sim.run()
        assert acks == [b"\x01"]
        assert kv.stores[primary].current_version(idx) == 2
        # Asynchronous replication completed by the time the sim drained.
        assert kv.stores[backup].current_version(idx) == 2
        assert kv.write_stats[primary].primary_updates == 1
        assert kv.write_stats[backup].replica_updates == 1

    def test_concurrent_puts_to_one_key_serialize(self):
        kv = ShardedKV(small_cfg())
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)

        def client(i):
            yield kv.put(0, key)

        for i in range(4):
            sim.process(client(i))
        sim.run()
        # Four committed updates: version advanced by 2 each, ending even.
        version = kv.stores[primary].current_version(idx)
        assert version == 8
        assert not is_locked(version)


class TestReadFallback:
    def _locked_primary_kv(self, fallback_ns):
        kv = ShardedKV(
            small_cfg(mechanism="percl_versions", fallback_after_ns=fallback_ns)
        )
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.replicas_of(key)[0]
        store = kv.stores[primary]
        # Wedge the primary copy: an odd version fails every software
        # check, as if a writer died mid-update.
        locked = store.current_version(idx) + 1
        store.phys.write(store.version_addr(idx), locked.to_bytes(8, "little"))
        return kv, key, primary

    def test_fallback_serves_read_from_backup(self):
        kv, key, primary = self._locked_primary_kv(fallback_ns=2_000.0)
        session = kv.reader_session(0)
        outcome = []

        def reader():
            ok = yield from session.lookup(key, t_end=50_000.0)
            outcome.append(ok)

        kv.cluster.sim.process(reader())
        kv.cluster.sim.run()
        assert outcome == [True]
        backup = kv.replicas_of(key)[1]
        assert session.stats[backup].fallback_reads == 1
        assert session.stats[primary].retries >= 1
        assert len(session.stats[backup].op_latency) == 1

    def test_no_fallback_when_disabled(self):
        kv, key, primary = self._locked_primary_kv(fallback_ns=0.0)
        session = kv.reader_session(0)
        outcome = []

        def reader():
            ok = yield from session.lookup(key, t_end=10_000.0)
            outcome.append(ok)

        kv.cluster.sim.process(reader())
        kv.cluster.sim.run()
        assert outcome == [False]
        assert all(s.fallback_reads == 0 for s in session.stats)


class TestFallbackAudit:
    """Backup-fallback reads must flow through the exact same per-shard
    accounting as primary reads: routed/fallback counters, latency
    samples, and — the regression this class pins — the ground-truth
    torn-read audit.  A torn payload that sneaks past the software
    check must increment ``undetected_violations`` on the serving
    shard whether it was read from a primary or a backup."""

    @staticmethod
    def _torn_but_check_passing_image(kv, shard, idx):
        """Overwrite ``idx``'s copy on ``shard`` with an image whose
        per-cache-line stamps are self-consistent (the percl check
        passes) but whose payload words disagree (ground-truth torn) —
        the signature of the silent violations Table 1 studies."""
        length = kv.cfg.payload_len
        half = (length // 2 // 8) * 8
        torn = stamped_payload(2, half) + stamped_payload(4, length - half)
        store = kv.stores[shard]
        store.phys.write(store.handle(idx).base_addr, kv.layout.pack(2, torn))

    def _kv(self, fallback_ns=2_000.0):
        return ShardedKV(
            ShardedConfig(
                n_shards=2,
                replication=2,
                mechanism="percl_versions",
                object_size=256,
                n_objects=32,
                seed=7,
                fallback_after_ns=fallback_ns,
            )
        )

    def _run_lookup(self, kv, session, key):
        outcome = []

        def reader():
            ok = yield from session.lookup(key, t_end=50_000.0)
            outcome.append(ok)

        kv.cluster.sim.process(reader())
        kv.cluster.sim.run()
        return outcome[0]

    def test_fallback_read_counted_in_audit_like_primary_read(self):
        kv = self._kv()
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)
        # Wedge the primary (odd version: every check fails) and plant
        # the torn-but-valid image on the backup the read falls back to.
        store = kv.stores[primary]
        locked = store.current_version(idx) + 1
        store.phys.write(store.version_addr(idx), locked.to_bytes(8, "little"))
        self._torn_but_check_passing_image(kv, backup, idx)

        session = kv.reader_session(0)
        assert self._run_lookup(kv, session, key) is True
        assert session.stats[backup].fallback_reads == 1
        assert session.stats[backup].reads_routed == 1
        assert len(session.stats[backup].op_latency) == 1
        # The regression: the audit fired on the *fallback* read.
        assert session.stats[backup].undetected_violations == 1
        assert session.stats[primary].undetected_violations == 0

    def test_primary_read_audit_baseline_matches(self):
        """The same planted image on the primary produces the same
        accounting there — fallback and primary paths are symmetric."""
        kv = self._kv(fallback_ns=0.0)
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        self._torn_but_check_passing_image(kv, primary, idx)

        session = kv.reader_session(0)
        assert self._run_lookup(kv, session, key) is True
        assert session.stats[primary].reads_routed == 1
        assert session.stats[primary].fallback_reads == 0
        assert len(session.stats[primary].op_latency) == 1
        assert session.stats[primary].undetected_violations == 1

    def test_fallback_audit_lands_in_merged_shard_rows(self):
        kv = self._kv()
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)
        store = kv.stores[primary]
        locked = store.current_version(idx) + 1
        store.phys.write(store.version_addr(idx), locked.to_bytes(8, "little"))
        self._torn_but_check_passing_image(kv, backup, idx)

        session = kv.reader_session(0)
        assert self._run_lookup(kv, session, key) is True
        rows = {row["shard"]: row for row in kv.shard_load()}
        assert rows[backup]["undetected_violations"] == 1
        assert rows[backup]["fallback_reads"] == 1
        assert rows[primary]["undetected_violations"] == 0


class TestSafety:
    def test_concurrent_writers_on_one_shard_never_tear_sabre_reads(self):
        """The headline safety property, scaled out: a single shard
        under write-heavy YCSB-A from several client nodes serves only
        atomic SABRes — the ground-truth audit finds zero torn reads."""
        cfg = YcsbConfig(
            workload="A",
            distribution="zipfian",
            mechanism="sabre",
            n_shards=1,
            n_clients=3,
            readers_per_client=2,
            replication=1,
            object_size=512,
            n_objects=8,  # hot objects: maximize reader/writer conflicts
            duration_ns=80_000.0,
            warmup_ns=10_000.0,
            seed=23,
        )
        result = run_ycsb(cfg)
        assert result.writes_completed > 0
        assert result.reads_completed > 0
        assert result.undetected_violations == 0
        # Conflicts genuinely happened — and every one was caught by
        # the destination hardware (aborts), not leaked to readers.
        assert result.sabre_aborts > 0
        assert result.retries > 0

    def test_shard_stats_merge_folds_meters_samples_and_counters(self):
        a, b = ShardStats(), ShardStats()
        for stats, ops in ((a, 3), (b, 2)):
            stats.meter.start(10.0)
            for _ in range(ops):
                stats.meter.record(100)
            stats.meter.stop(20.0)
        a.op_latency.add(5.0)
        b.op_latency.add(7.0)
        a.retries, b.retries = 2, 3
        a.merge(b)
        assert a.meter.ops_total == 5
        assert a.meter.bytes_total == 500
        assert a.meter.elapsed_ns == 10.0  # shared window, not summed
        assert a.op_latency.values == [5.0, 7.0]
        assert a.retries == 5

    def test_sharded_routing_deterministic_end_to_end(self):
        cfg = dict(
            workload="B",
            distribution="uniform",
            mechanism="sabre",
            n_shards=2,
            n_objects=64,
            duration_ns=40_000.0,
            warmup_ns=8_000.0,
            readers_per_client=1,
            seed=5,
        )
        a = run_ycsb(YcsbConfig(**cfg))
        b = run_ycsb(YcsbConfig(**cfg))
        assert a.reads_completed == b.reads_completed
        assert a.writes_completed == b.writes_completed
        assert a.read_latency.values == b.read_latency.values
        assert a.shard_rows == b.shard_rows


class TestFallbackAccounting:
    """Regression pins for the fallback-read bookkeeping: attempts that
    expire mid-walk must be visible (``fallback_attempts``, retries)
    without fabricating fallback successes, and a consumed read books
    latency, meter, and audit exactly once, on the consuming shard."""

    def _kv3(self, fallback_ns=2_000.0):
        return ShardedKV(
            ShardedConfig(
                n_shards=3,
                replication=3,
                mechanism="percl_versions",
                object_size=256,
                n_objects=32,
                seed=7,
                fallback_after_ns=fallback_ns,
            )
        )

    @staticmethod
    def _wedge(kv, shard, idx):
        """Odd header version: every software check on this copy fails,
        as if a writer died mid-update."""
        store = kv.stores[shard]
        locked = store.current_version(idx) + 1
        store.phys.write(store.version_addr(idx), locked.to_bytes(8, "little"))

    def _lookup(self, kv, session, key, t_end=50_000.0):
        outcome = []

        def reader():
            ok = yield from session.lookup(key, t_end)
            outcome.append(ok)

        kv.cluster.sim.process(reader())
        kv.cluster.sim.run()
        return outcome[0]

    def test_expired_fallback_attempt_is_not_a_fallback_read(self):
        """First backup's grace period expires without a consumed read:
        it books an attempt and retries, never a fallback read — that
        lands once, on the second backup that actually served."""
        kv = self._kv3()
        key = kv.keys()[0]
        idx = kv.key_index(key)
        first, second, third = kv.replicas_of(key)
        self._wedge(kv, first, idx)
        self._wedge(kv, second, idx)

        session = kv.reader_session(0)
        assert self._lookup(kv, session, key) is True
        assert session.stats[second].fallback_attempts == 1
        assert session.stats[second].fallback_reads == 0
        assert session.stats[second].retries >= 1
        assert len(session.stats[second].op_latency) == 0
        assert session.stats[third].fallback_attempts == 1
        assert session.stats[third].fallback_reads == 1
        assert len(session.stats[third].op_latency) == 1
        # Exactly one consumed read across the whole walk.
        assert sum(len(s.op_latency) for s in session.stats) == 1

    def test_deadline_expiry_mid_walk_drops_nothing_silently(self):
        """Every replica wedged: the lookup fails, and the failure is
        fully accounted — attempts and retries everywhere it tried,
        zero fallback reads, zero latency samples, zero audits."""
        kv = self._kv3()
        key = kv.keys()[0]
        idx = kv.key_index(key)
        for shard in kv.replicas_of(key):
            self._wedge(kv, shard, idx)

        session = kv.reader_session(0)
        assert self._lookup(kv, session, key, t_end=12_000.0) is False
        walked = kv.replicas_of(key)
        assert all(session.stats[s].reads_routed == 1 for s in walked)
        assert sum(s.fallback_attempts for s in session.stats) == 2
        assert all(s.fallback_reads == 0 for s in session.stats)
        assert all(s.retries >= 1 for s in [session.stats[s] for s in walked])
        assert sum(len(s.op_latency) for s in session.stats) == 0
        assert sum(s.undetected_violations for s in session.stats) == 0


class TestPutBackoffAccounting:
    """The bounded-spin client-retry path: busy bounces and client
    re-issues stay paired per shard, re-issues back off with growing,
    deterministic, jittered gaps, and the pairing survives a mid-put
    promotion."""

    def _kv(self, **kw):
        defaults = dict(
            n_shards=2,
            replication=2,
            mechanism="sabre",
            object_size=256,
            n_objects=16,
            seed=11,
        )
        defaults.update(kw)
        return ShardedKV(ShardedConfig(**defaults))

    @staticmethod
    def _hold_lock(kv, shard, idx, until_ns):
        """Wedge the object's lock now; release it at ``until_ns`` (a
        stand-in for a transaction holding the lock across RPCs)."""
        store = kv.stores[shard]
        version = store.current_version(idx)
        store.phys.write(
            store.version_addr(idx), (version + 1).to_bytes(8, "little")
        )
        kv.cluster.sim.call_at(
            until_ns,
            lambda: store.phys.write(
                store.version_addr(idx), version.to_bytes(8, "little")
            ),
        )

    def _run_put(self, kv, key):
        done = []

        def client():
            ack = yield kv.put(0, key)
            done.append((ack, kv.cluster.sim.now))

        kv.cluster.sim.process(client())
        kv.cluster.sim.run()
        return done[0]

    def test_busy_rejects_pair_with_write_retries(self):
        kv = self._kv()
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary = kv.primary_of(key)
        self._hold_lock(kv, primary, idx, until_ns=30_000.0)
        ack, _t = self._run_put(kv, key)
        assert ack == b"\x01"
        ws = kv.write_stats[primary]
        assert ws.busy_rejects == ws.write_retries
        assert ws.busy_rejects >= 2
        assert ws.primary_updates == 1

    def test_backoff_grows_and_is_deterministic(self):
        def trace():
            kv = self._kv()
            key = kv.keys()[0]
            idx = kv.key_index(key)
            primary = kv.primary_of(key)
            self._hold_lock(kv, primary, idx, until_ns=30_000.0)
            issues = []
            endpoint = kv.client_rpc(0)
            orig = endpoint.call

            def spy(dst, name, payload, timeout_ns=None):
                if name == "shard_put":
                    issues.append(kv.cluster.sim.now)
                return orig(dst, name, payload, timeout_ns=timeout_ns)

            endpoint.call = spy
            ack, t_done = self._run_put(kv, key)
            assert ack == b"\x01"
            return issues, t_done

        issues_a, done_a = trace()
        issues_b, done_b = trace()
        assert issues_a == issues_b  # jitter is seeded, not wall-clock
        assert done_a == done_b
        assert len(issues_a) >= 4
        gaps = [b - a for a, b in zip(issues_a, issues_a[1:])]
        # Exponential growth dominates the jitter by the later gaps.
        assert gaps[-1] > gaps[0]

    def test_pairing_survives_promotion_mid_put(self):
        from repro.objstore.failover import FailoverManager

        kv = self._kv()
        fm = FailoverManager(kv)
        sim = kv.cluster.sim
        key = kv.keys()[0]
        idx = kv.key_index(key)
        primary, backup = kv.replicas_of(key)
        self._hold_lock(kv, primary, idx, until_ns=50_000.0)
        # Crash the wedged primary while the put is bouncing on it.
        sim.call_at(6_000.0, lambda: fm.crash(primary))
        ack, _t = self._run_put(kv, key)
        assert ack == b"\x01"
        old = kv.write_stats[primary]
        assert old.busy_rejects == old.write_retries >= 1
        assert old.primary_updates == 0
        # The re-issue after the crash landed on the promotee.
        assert kv.write_stats[backup].primary_updates == 1
        assert kv.stores[backup].current_version(idx) == 2

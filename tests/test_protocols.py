"""Tests for the pluggable ReadProtocol layer: registry dispatch, the
DrTM source-locking path under concurrent writers, and Zipfian-skew
behavior in full microbenchmark runs."""

import pytest

from repro.common.errors import ConfigError
from repro.workloads import protocols
from repro.workloads.generators import ZipfianPicker
from repro.workloads.microbench import (
    MECHANISMS,
    MicrobenchConfig,
    run_microbench,
)
from repro.workloads.protocols import (
    RawRemoteReadProtocol,
    ReadProtocol,
    get_protocol,
    protocol_names,
    register_protocol,
)


class TestProtocolRegistry:
    def test_builtin_names_match_legacy_mechanisms(self):
        assert protocol_names() == (
            "remote_read",
            "sabre",
            "percl_versions",
            "checksum",
            "drtm_lock",
        )
        assert MECHANISMS == protocol_names()

    def test_get_unknown_protocol(self):
        with pytest.raises(ConfigError):
            get_protocol("nope")

    def test_new_protocol_needs_no_reader_loop_edits(self):
        """Registering a strategy is enough: the reader loop and config
        validation pick it up through the registry."""

        class EchoProtocol(RawRemoteReadProtocol):
            name = "test_echo_read"

        register_protocol(EchoProtocol)
        try:
            cfg = MicrobenchConfig(
                mechanism="test_echo_read",
                object_size=256,
                n_objects=8,
                readers=1,
                duration_ns=40_000.0,
                warmup_ns=5_000.0,
            )
            cfg.validate()  # registry-backed: no MECHANISMS edit needed
            result = run_microbench(cfg)
            assert result.ops_completed > 0
            assert result.undetected_violations == 0
        finally:
            protocols._PROTOCOLS.pop("test_echo_read", None)

    def test_unnamed_protocol_rejected(self):
        with pytest.raises(ConfigError):
            register_protocol(type("Anon", (ReadProtocol,), {}))


def contended(mechanism, **kw):
    defaults = dict(
        mechanism=mechanism,
        object_size=256,
        n_objects=8,
        readers=2,
        writers=4,
        duration_ns=80_000.0,
        warmup_ns=5_000.0,
        seed=2,
    )
    defaults.update(kw)
    return run_microbench(MicrobenchConfig(**defaults))


class TestDrtmLockProtocol:
    def test_quiescent_run_completes(self):
        # One reader, no writers: nobody to contend with, so the lock
        # dance never retries.  (With >= 2 readers, reader-reader CAS
        # contention on the version word already forces retries — the
        # cost Table 1 charges to source-side locking.)
        result = contended("drtm_lock", readers=1, writers=0)
        assert result.ops_completed > 10
        assert result.retries == 0
        assert result.undetected_violations == 0

    def test_never_consumes_torn_reads_under_writers(self):
        """Source locking prevents conflicts outright: even with
        concurrent CREW writers the audit must never fire."""
        result = contended("drtm_lock")
        assert result.writer_updates > 0
        assert result.ops_completed > 0
        assert result.undetected_violations == 0

    def test_lock_contention_forces_retries(self):
        result = contended("drtm_lock", writers=6, n_objects=4)
        assert result.retries > 0
        assert result.undetected_violations == 0

    def test_slower_than_sabre(self):
        """Two extra round trips per read (CAS + unlock write)."""
        drtm = contended("drtm_lock", writers=0)
        sabre = contended("sabre", writers=0)
        assert drtm.mean_op_latency_ns > 1.5 * sabre.mean_op_latency_ns


class TestZipfianSkew:
    def test_theta_099_concentrates_accesses(self):
        """A YCSB-style theta=0.99 run concentrates accesses: the top
        10 % of keys draw far more than their uniform share, both in
        the distribution's mass and in empirical picks."""
        picker = ZipfianPicker(range(100), seed=3, theta=0.99)
        assert picker.hot_fraction(10) > 0.4  # uniform share would be 0.1
        counts = {}
        for _ in range(4000):
            obj = picker.pick()
            counts[obj] = counts.get(obj, 0) + 1
        head = sum(counts.get(i, 0) for i in range(10))
        assert head / 4000 > 0.4

    def test_skewed_run_raises_conflict_rate(self):
        uniform = contended("sabre", n_objects=64, writer_think_ns=500.0)
        skewed = contended(
            "sabre", n_objects=64, writer_think_ns=500.0, zipf_theta=0.99
        )
        uniform_rate = uniform.sabre_aborts / max(uniform.ops_completed, 1)
        skewed_rate = skewed.sabre_aborts / max(skewed.ops_completed, 1)
        assert skewed_rate > uniform_rate
        assert skewed.undetected_violations == 0

    def test_drtm_safe_under_skewed_writers(self):
        result = contended("drtm_lock", zipf_theta=0.99)
        assert result.ops_completed > 0
        assert result.undetected_violations == 0

"""Tests for the Table 1 taxonomy."""

from repro.core.design_space import (
    DESIGN_SPACE,
    CcMethod,
    CcSide,
    design_space_table,
)


def test_all_four_cells_present():
    cells = {(p.side, p.method) for p in DESIGN_SPACE}
    assert cells == {
        (CcSide.SOURCE, CcMethod.LOCKING),
        (CcSide.SOURCE, CcMethod.OCC),
        (CcSide.DESTINATION, CcMethod.LOCKING),
        (CcSide.DESTINATION, CcMethod.OCC),
    }


def test_sabres_own_the_destination_column():
    for point in DESIGN_SPACE:
        if point.side is CcSide.DESTINATION:
            assert "SABRes" in point.systems


def test_source_side_systems_match_paper():
    by_cell = {(p.side, p.method): p.systems for p in DESIGN_SPACE}
    assert by_cell[(CcSide.SOURCE, CcMethod.LOCKING)] == ("DrTM",)
    assert set(by_cell[(CcSide.SOURCE, CcMethod.OCC)]) == {"FaRM", "Pilaf"}


def test_rendered_table_contains_rows_and_systems():
    table = design_space_table()
    assert "LOCKING" in table and "OCC" in table
    assert "DrTM" in table and "FaRM, Pilaf" in table
    assert table.count("SABRes") == 2

"""Tests for one-sided remote writes and remote CAS."""

import pytest

from repro.sonuma.node import Cluster
from repro.sonuma.transfer import OpKind
from repro.workloads.microbench import MicrobenchConfig, run_microbench


@pytest.fixture
def cluster():
    return Cluster()


def run_proc(cluster, gen):
    results = []

    def wrapper():
        value = yield from gen
        results.append(value)

    cluster.sim.process(wrapper())
    cluster.run()
    return results[0] if results else None


class TestRemoteWrite:
    def test_bytes_land_at_destination(self, cluster):
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(256)

        def gen():
            result = yield src.remote_write(0, addr, b"payload!" * 16)
            return result

        result = run_proc(cluster, gen())
        assert result.success
        assert result.op is OpKind.REMOTE_WRITE
        assert dst.phys.read(addr, 128) == b"payload!" * 16

    def test_multi_block_write_acked_per_block(self, cluster):
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(512)

        def gen():
            return (yield src.remote_write(0, addr, bytes(range(256)) * 2))

        result = run_proc(cluster, gen())
        assert result.success
        assert dst.counters.get("write_requests") == 8

    def test_write_invalidates_inflight_sabre(self, cluster):
        """A one-sided write races an in-flight SABRe over the same
        object: the coherence invalidation must abort the SABRe."""
        dst, src = cluster.node(0), cluster.node(1)
        from repro.objstore.layout import RawLayout, stamped_payload
        from repro.objstore.store import ObjectStore

        store = ObjectStore(dst.phys, RawLayout())
        store.create(1, stamped_payload(0, 500))
        handle = store.handle(1)
        # Warm the data blocks so they reply before the header.
        for off in range(1, handle.num_blocks):
            dst.chip.read_block(0, handle.base_addr + off * 64)
        buf = src.alloc_buffer(handle.wire_size)
        outcomes = {}

        def sabre_reader():
            result = yield src.sabre_read(
                0, handle.base_addr, handle.wire_size, buf
            )
            outcomes["sabre"] = result.success

        def remote_writer():
            # Posting at 30 ns puts the write's arrival (~95 ns: WQ +
            # unroll + fabric hop) inside the SABRe's window of
            # vulnerability (subscriptions ~65 ns, header reply ~143 ns).
            yield cluster.sim.timeout(30.0)
            yield src.remote_write(0, handle.base_addr + 64, b"X" * 64)

        cluster.sim.process(sabre_reader())
        cluster.sim.process(remote_writer())
        cluster.run()
        assert outcomes["sabre"] is False
        assert dst.counters.get("sabre_aborts") == 1


class TestRemoteCas:
    def test_successful_swap(self, cluster):
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(64)
        dst.phys.write_u64(addr, 10)

        def gen():
            return (yield src.remote_cas(0, addr, expected=10, desired=99))

        result = run_proc(cluster, gen())
        assert result.success
        assert result.cas_old_value == 10
        assert dst.phys.read_u64(addr) == 99

    def test_failed_swap_leaves_memory_untouched(self, cluster):
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(64)
        dst.phys.write_u64(addr, 10)

        def gen():
            return (yield src.remote_cas(0, addr, expected=7, desired=99))

        result = run_proc(cluster, gen())
        assert not result.success
        assert result.cas_old_value == 10
        assert dst.phys.read_u64(addr) == 10

    def test_concurrent_cas_one_winner(self, cluster):
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(64)
        outcomes = []

        def contender(desired):
            result = yield src.remote_cas(0, addr, expected=0, desired=desired)
            outcomes.append(result.success)

        for i in range(4):
            cluster.sim.process(contender(100 + i))
        cluster.run()
        assert outcomes.count(True) == 1
        assert dst.phys.read_u64(addr) in {100, 101, 102, 103}

    def test_cas_roundtrip_latency(self, cluster):
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(64)

        def gen():
            return (yield src.remote_cas(0, addr, 0, 1))

        result = run_proc(cluster, gen())
        # One network round trip + destination memory access.
        assert 150.0 <= result.timings.end_to_end_ns <= 350.0


class TestDrtmLockMechanism:
    def test_quiescent_drtm_reads_work(self):
        result = run_microbench(
            MicrobenchConfig(
                mechanism="drtm_lock",
                object_size=512,
                n_objects=16,
                readers=2,
                duration_ns=60_000.0,
                warmup_ns=8_000.0,
            )
        )
        assert result.ops_completed > 10
        assert result.undetected_violations == 0

    def test_drtm_costs_extra_roundtrips(self):
        """§2.1: remote lock acquisition adds network round trips."""
        results = {}
        for mech in ("remote_read", "drtm_lock"):
            results[mech] = run_microbench(
                MicrobenchConfig(
                    mechanism=mech,
                    object_size=512,
                    n_objects=16,
                    readers=1,
                    duration_ns=60_000.0,
                    warmup_ns=8_000.0,
                )
            )
        assert (
            results["drtm_lock"].mean_op_latency_ns
            > 2.0 * results["remote_read"].mean_op_latency_ns
        )

    def test_drtm_safe_under_contention(self):
        result = run_microbench(
            MicrobenchConfig(
                mechanism="drtm_lock",
                object_size=256,
                n_objects=8,
                readers=3,
                writers=3,
                writer_think_ns=300.0,
                duration_ns=80_000.0,
                warmup_ns=10_000.0,
            )
        )
        assert result.ops_completed > 0
        assert result.undetected_violations == 0

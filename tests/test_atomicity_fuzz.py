"""Seeded randomized atomicity fuzzing across the whole read-protocol
design space.

Each round builds a small, hot sharded deployment and lets randomized
reader, writer, and multi-object-transaction processes interleave for
a while.  The assertions audit the *audit*:

* every detecting mechanism (``sabre``, ``percl_versions``,
  ``checksum``, ``drtm_lock``) consumes zero torn payloads — the
  ground-truth word check (`undetected_violations`) and the
  transaction-side read-set audit (`torn_reads_observed`) both stay at
  zero — while conflicts demonstrably *happened* (aborts, software
  conflicts, retries, lock conflicts);
* the ``remote_read`` baseline, given forced conflicts, *does* consume
  torn snapshots — proving the audit machinery detects real tearing
  rather than vacuously passing.

The default (tier-1) parametrization stays small; the scheduled CI
lane runs the ``slow``-marked soak with more rounds per combination
(``SABRES_FUZZ_ROUNDS``, default 6).
"""

import os

import pytest

from repro.common.rng import derive_seed, make_rng
from repro.objstore.failover import FailoverManager, FailurePlan
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.workloads.protocols import protocol_names

#: Mechanisms whose consumed reads must never be torn.
DETECTING = ("sabre", "percl_versions", "checksum", "drtm_lock")

SHARD_COUNTS = (1, 4)


class FuzzOutcome:
    """Aggregated counters of one fuzz round."""

    def __init__(self, kv, manager, injector=None):
        reader_stats = kv.all_reader_stats()
        txn = manager.merged_stats()
        self.undetected_violations = sum(
            s.undetected_violations for s in reader_stats
        )
        self.torn_reads_observed = txn.torn_reads_observed
        self.reads_consumed = sum(len(s.op_latency) for s in reader_stats)
        self.commits = txn.commits
        self.detected_conflicts = (
            sum(s.sabre_aborts + s.software_conflicts + s.retries
                for s in reader_stats)
            + txn.lock_conflicts
            + txn.validation_aborts
        )
        self.writes = sum(ws.primary_updates for ws in kv.write_stats)
        self.crashes = injector.stats.crashes if injector else 0
        self.recoveries = injector.stats.recoveries if injector else 0
        self.promotions = injector.stats.promotions if injector else 0
        self.crash_aborts = txn.crash_aborts
        #: Work the crashes demonstrably interrupted: forced txn
        #: aborts, fenced try-locks, failed in-flight RPCs/transfers.
        self.crash_disruptions = self.crash_aborts + txn.fenced_locks
        if injector:
            self.crash_disruptions += (
                injector.stats.failed_rpcs + injector.stats.failed_transfers
            )
        self.fingerprint = (
            self.undetected_violations,
            self.torn_reads_observed,
            self.reads_consumed,
            self.commits,
            self.detected_conflicts,
            self.writes,
            self.crashes,
            self.promotions,
            self.crash_aborts,
            [s.retries for s in reader_stats],
            manager.txn_rows(),
            kv.shard_load(),
        )


def fuzz_round(
    mechanism: str,
    n_shards: int,
    seed: int,
    duration_ns: float = 30_000.0,
    object_size: int = 512,
    crash_cycles: int = 0,
) -> FuzzOutcome:
    """One randomized interleaving: the schedule (process counts, key
    choices, pacing, transaction shapes) all derive from ``seed``.

    With ``crash_cycles > 0`` a failover lane rides along: that many
    crash/recover cycles round-robin over the shards at seed-derived
    times, so readers, writers, and mid-flight transaction commits get
    interleaved with promotions and re-syncs."""
    rng = make_rng(seed, "fuzz-schedule", mechanism, n_shards)
    cfg = ShardedConfig(
        n_shards=n_shards,
        n_clients=2,
        replication=min(2, n_shards),
        mechanism=mechanism,
        object_size=object_size,
        n_objects=rng.randint(4, 8),  # hot: conflicts are the point
        seed=derive_seed(seed, "fuzz-deploy", mechanism, n_shards),
    )
    kv = ShardedKV(cfg)
    manager = TxnManager(kv)
    injector = None
    if crash_cycles:
        assert n_shards >= 2, "crash fuzzing needs a backup to promote"
        period = duration_ns / (crash_cycles + 1)
        downtime = period * rng.uniform(0.25, 0.5)
        injector = FailoverManager(
            kv,
            FailurePlan.cycles(
                range(n_shards),
                first_crash_ns=period * rng.uniform(0.3, 0.7),
                downtime_ns=downtime,
                uptime_ns=period - downtime,
                count=crash_cycles,
            ),
        )
    sim = kv.cluster.sim
    keys = kv.keys()
    t_end = duration_ns

    def reader_proc(session, label):
        pick = make_rng(seed, "fuzz-reader", label)
        while sim.now < t_end:
            key = keys[pick.randrange(len(keys))]
            yield from session.lookup(key, t_end)

    def writer_proc(client, label):
        pick = make_rng(seed, "fuzz-writer", label)
        while sim.now < t_end:
            key = keys[pick.randrange(len(keys))]
            yield kv.put(client, key)
            yield sim.timeout(pick.uniform(10.0, 200.0))

    def txn_proc(session, label):
        pick = make_rng(seed, "fuzz-txn", label)
        while sim.now < t_end:
            size = pick.randint(2, min(4, len(keys)))
            chosen = pick.sample(keys, size)
            writes = chosen[: pick.randint(0, size)]
            yield from session.run(chosen, writes, t_end)

    for i in range(rng.randint(1, 2)):
        sim.process(reader_proc(kv.reader_session(i % cfg.clients), i))
    for i in range(rng.randint(1, 2)):
        sim.process(writer_proc(i % cfg.clients, i))
    for i in range(rng.randint(1, 2)):
        sim.process(txn_proc(manager.session(i % cfg.clients), i))

    sim.run()
    return FuzzOutcome(kv, manager, injector)


def test_fuzz_covers_every_registered_protocol():
    assert set(DETECTING) | {"remote_read"} == set(protocol_names())


@pytest.mark.smoke
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mechanism", DETECTING)
def test_detecting_protocols_never_consume_torn_reads(mechanism, n_shards):
    outcome = fuzz_round(mechanism, n_shards, seed=101)
    assert outcome.reads_consumed > 0
    assert outcome.writes > 0
    assert outcome.undetected_violations == 0
    assert outcome.torn_reads_observed == 0
    # The run was genuinely contended: conflicts happened and every one
    # was *detected* (abort/retry), not leaked.
    assert outcome.detected_conflicts > 0


@pytest.mark.smoke
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_remote_read_observes_torn_reads_under_forced_conflicts(n_shards):
    """The audit itself is exercised: with no atomicity enforcement and
    writers tearing large objects mid-transfer, the transaction-side
    ground-truth check must catch torn snapshots."""
    torn = 0
    for seed in (7, 11, 13):
        outcome = fuzz_round(
            "remote_read",
            n_shards,
            seed=seed,
            duration_ns=40_000.0,
            object_size=2048,  # 32-block transfers: a wide tear window
        )
        assert outcome.undetected_violations == 0  # remote_read never audits
        torn += outcome.torn_reads_observed
    assert torn > 0


@pytest.mark.smoke
def test_fuzz_rounds_are_deterministic():
    a = fuzz_round("sabre", 4, seed=202)
    b = fuzz_round("sabre", 4, seed=202)
    assert a.fingerprint == b.fingerprint


def test_different_seeds_explore_different_schedules():
    a = fuzz_round("percl_versions", 1, seed=303)
    b = fuzz_round("percl_versions", 1, seed=304)
    assert a.fingerprint != b.fingerprint


@pytest.mark.smoke
@pytest.mark.parametrize("mechanism", DETECTING)
def test_detecting_protocols_survive_mid_txn_crashes(mechanism):
    """The crash lane: shards crash and recover *while* transactions
    are mid-commit and readers race writers.  Detecting protocols must
    consume zero torn reads across promotions and re-syncs, and the
    crashes must demonstrably have hit live work (forced aborts)."""
    crashed_work = 0
    for seed in (401, 402):
        outcome = fuzz_round(
            mechanism, 4, seed=seed, duration_ns=45_000.0, crash_cycles=3
        )
        assert outcome.crashes == 3, (mechanism, seed)
        assert outcome.recoveries == 3, (mechanism, seed)
        assert outcome.promotions > 0, (mechanism, seed)
        assert outcome.reads_consumed > 0, (mechanism, seed)
        assert outcome.undetected_violations == 0, (mechanism, seed)
        assert outcome.torn_reads_observed == 0, (mechanism, seed)
        crashed_work += outcome.crash_disruptions
    # Across the seeds, the crashes demonstrably interrupted live work
    # (forced aborts, fenced locks, or failed in-flight operations) —
    # the lane is not vacuously passing on an idle service.
    assert crashed_work > 0, mechanism


@pytest.mark.smoke
def test_crash_fuzz_rounds_are_deterministic():
    a = fuzz_round("sabre", 4, seed=505, duration_ns=45_000.0, crash_cycles=3)
    b = fuzz_round("sabre", 4, seed=505, duration_ns=45_000.0, crash_cycles=3)
    assert a.crashes == 3
    assert a.fingerprint == b.fingerprint


@pytest.mark.slow
@pytest.mark.parametrize("mechanism", DETECTING)
def test_soak_crash_lane(mechanism):
    """Scheduled-lane soak: many crash-cycle rounds per mechanism."""
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    for i in range(rounds):
        outcome = fuzz_round(
            mechanism,
            4,
            seed=3000 + i,
            duration_ns=60_000.0,
            object_size=1024,
            crash_cycles=4,
        )
        assert outcome.crashes == 4, (mechanism, i)
        assert outcome.undetected_violations == 0, (mechanism, i)
        assert outcome.torn_reads_observed == 0, (mechanism, i)
        assert outcome.reads_consumed > 0, (mechanism, i)


@pytest.mark.slow
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mechanism", DETECTING)
def test_soak_detecting_protocols(mechanism, n_shards):
    """Scheduled-lane soak: many independent rounds per combination."""
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    for i in range(rounds):
        outcome = fuzz_round(
            mechanism,
            n_shards,
            seed=1000 + i,
            duration_ns=60_000.0,
            object_size=1024,
        )
        assert outcome.undetected_violations == 0, (mechanism, n_shards, i)
        assert outcome.torn_reads_observed == 0, (mechanism, n_shards, i)
        assert outcome.reads_consumed > 0


@pytest.mark.slow
def test_soak_remote_read_keeps_observing_tearing():
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    torn = 0
    for i in range(rounds):
        outcome = fuzz_round(
            "remote_read", 1, seed=2000 + i,
            duration_ns=60_000.0, object_size=2048,
        )
        torn += outcome.torn_reads_observed
    assert torn > 0

"""Seeded randomized atomicity fuzzing across the whole read-protocol
design space.

The round driver itself lives in :mod:`repro.workloads.fuzz` (the perf
suite times it too); each round builds a small, hot sharded deployment
and lets randomized reader, writer, and multi-object-transaction
processes interleave for a while.  The assertions here audit the
*audit*:

* every detecting mechanism (``sabre``, ``percl_versions``,
  ``checksum``, ``drtm_lock``) consumes zero torn payloads — the
  ground-truth word check (`undetected_violations`) and the
  transaction-side read-set audit (`torn_reads_observed`) both stay at
  zero — while conflicts demonstrably *happened* (aborts, software
  conflicts, retries, lock conflicts);
* the ``remote_read`` baseline, given forced conflicts, *does* consume
  torn snapshots — proving the audit machinery detects real tearing
  rather than vacuously passing.

The default (tier-1) parametrization stays small; the scheduled CI
lane runs the ``slow``-marked soak with more rounds per combination
(``SABRES_FUZZ_ROUNDS``, default 6).
"""

import os

import pytest

from repro.workloads.fuzz import DETECTING, fuzz_round
from repro.workloads.protocols import protocol_names

SHARD_COUNTS = (1, 4)


def test_fuzz_covers_every_registered_protocol():
    assert set(DETECTING) | {"remote_read"} == set(protocol_names())


@pytest.mark.smoke
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mechanism", DETECTING)
def test_detecting_protocols_never_consume_torn_reads(mechanism, n_shards):
    outcome = fuzz_round(mechanism, n_shards, seed=101)
    assert outcome.reads_consumed > 0
    assert outcome.writes > 0
    assert outcome.undetected_violations == 0
    assert outcome.torn_reads_observed == 0
    # The run was genuinely contended: conflicts happened and every one
    # was *detected* (abort/retry), not leaked.
    assert outcome.detected_conflicts > 0


@pytest.mark.smoke
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_remote_read_observes_torn_reads_under_forced_conflicts(n_shards):
    """The audit itself is exercised: with no atomicity enforcement and
    writers tearing large objects mid-transfer, the transaction-side
    ground-truth check must catch torn snapshots."""
    torn = 0
    for seed in (7, 11, 13):
        outcome = fuzz_round(
            "remote_read",
            n_shards,
            seed=seed,
            duration_ns=40_000.0,
            object_size=2048,  # 32-block transfers: a wide tear window
        )
        assert outcome.undetected_violations == 0  # remote_read never audits
        torn += outcome.torn_reads_observed
    assert torn > 0


@pytest.mark.smoke
def test_fuzz_rounds_are_deterministic():
    a = fuzz_round("sabre", 4, seed=202)
    b = fuzz_round("sabre", 4, seed=202)
    assert a.fingerprint == b.fingerprint


def test_different_seeds_explore_different_schedules():
    a = fuzz_round("percl_versions", 1, seed=303)
    b = fuzz_round("percl_versions", 1, seed=304)
    assert a.fingerprint != b.fingerprint


@pytest.mark.smoke
@pytest.mark.parametrize("mechanism", DETECTING)
def test_detecting_protocols_survive_mid_txn_crashes(mechanism):
    """The crash lane: shards crash and recover *while* transactions
    are mid-commit and readers race writers.  Detecting protocols must
    consume zero torn reads across promotions and re-syncs, and the
    crashes must demonstrably have hit live work (forced aborts)."""
    crashed_work = 0
    for seed in (401, 402):
        outcome = fuzz_round(
            mechanism, 4, seed=seed, duration_ns=45_000.0, crash_cycles=3
        )
        assert outcome.crashes == 3, (mechanism, seed)
        assert outcome.recoveries == 3, (mechanism, seed)
        assert outcome.promotions > 0, (mechanism, seed)
        assert outcome.reads_consumed > 0, (mechanism, seed)
        assert outcome.undetected_violations == 0, (mechanism, seed)
        assert outcome.torn_reads_observed == 0, (mechanism, seed)
        crashed_work += outcome.crash_disruptions
    # Across the seeds, the crashes demonstrably interrupted live work
    # (forced aborts, fenced locks, or failed in-flight operations) —
    # the lane is not vacuously passing on an idle service.
    assert crashed_work > 0, mechanism


@pytest.mark.smoke
def test_crash_fuzz_rounds_are_deterministic():
    a = fuzz_round("sabre", 4, seed=505, duration_ns=45_000.0, crash_cycles=3)
    b = fuzz_round("sabre", 4, seed=505, duration_ns=45_000.0, crash_cycles=3)
    assert a.crashes == 3
    assert a.fingerprint == b.fingerprint


@pytest.mark.smoke
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mechanism", DETECTING)
def test_detecting_protocols_survive_gray_windows(mechanism, n_shards):
    """The gray lane: shards turn slow-but-alive (a seed-derived mix of
    full gray failures and RPC-only stragglers) while readers, writers,
    and transactions keep running.  Slowness must never become
    tearing."""
    windows = 0
    for seed in (601, 602, 603):
        outcome = fuzz_round(mechanism, n_shards, seed=seed, gray_windows=2)
        assert outcome.reads_consumed > 0, (mechanism, n_shards, seed)
        assert outcome.undetected_violations == 0, (mechanism, n_shards, seed)
        assert outcome.torn_reads_observed == 0, (mechanism, n_shards, seed)
        windows += outcome.gray_windows + outcome.straggler_windows
        assert outcome.gray_windows + outcome.straggler_windows == 2
    assert windows == 6


@pytest.mark.smoke
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mechanism", DETECTING)
def test_detecting_protocols_survive_partition_windows(mechanism, n_shards):
    """The partition lane: drop windows isolate a shard or sever one
    client->shard link mid-run.  Refused conversations must surface as
    typed failures (counted as refusals), never as torn reads."""
    refusals = 0
    for seed in (701, 702, 703):
        outcome = fuzz_round(
            mechanism, n_shards, seed=seed, partition_windows=2
        )
        assert outcome.partition_windows == 2, (mechanism, n_shards, seed)
        assert outcome.reads_consumed > 0, (mechanism, n_shards, seed)
        assert outcome.undetected_violations == 0, (mechanism, n_shards, seed)
        assert outcome.torn_reads_observed == 0, (mechanism, n_shards, seed)
        refusals += outcome.partition_refusals
    # Across the seeds the partitions demonstrably severed live
    # conversations — the lane is not vacuously passing.
    assert refusals > 0, (mechanism, n_shards)


@pytest.mark.parametrize(
    "fault_kw",
    [{"gray_windows": 2}, {"partition_windows": 2}],
    ids=["gray", "partition"],
)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_remote_read_tears_under_fault_windows(n_shards, fault_kw):
    """The fault lanes are torn-read-capable: the bare ``remote_read``
    baseline, run through the very same gray/partition schedules the
    detecting protocols survive, *does* consume torn snapshots — so the
    zero-violation results above are earned, not vacuous."""
    torn = 0
    for seed in (7, 11, 13):
        outcome = fuzz_round(
            "remote_read",
            n_shards,
            seed=seed,
            duration_ns=40_000.0,
            object_size=2048,
            **fault_kw,
        )
        assert outcome.undetected_violations == 0  # remote_read never audits
        torn += outcome.torn_reads_observed
    assert torn > 0


@pytest.mark.smoke
def test_fault_fuzz_rounds_are_deterministic():
    """Fingerprint determinism for the full fault composition: gray +
    partition + skew + crash in one round."""
    kw = dict(
        duration_ns=45_000.0,
        crash_cycles=2,
        gray_windows=1,
        partition_windows=1,
        skew_max_ns=1_000.0,
    )
    a = fuzz_round("sabre", 4, seed=808, **kw)
    b = fuzz_round("sabre", 4, seed=808, **kw)
    assert a.fingerprint == b.fingerprint
    c = fuzz_round("sabre", 4, seed=809, **kw)
    assert a.fingerprint != c.fingerprint


@pytest.mark.slow
@pytest.mark.parametrize("mechanism", DETECTING)
def test_soak_fault_composition_lane(mechanism):
    """Scheduled-lane soak: gray + partition + skew (and crash cycles)
    composed in every round, many rounds per mechanism."""
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    for i in range(rounds):
        outcome = fuzz_round(
            mechanism,
            4,
            seed=4000 + i,
            duration_ns=60_000.0,
            object_size=1024,
            crash_cycles=2,
            gray_windows=2,
            partition_windows=2,
            skew_max_ns=1_500.0,
        )
        assert outcome.crashes == 2, (mechanism, i)
        assert outcome.gray_windows + outcome.straggler_windows == 2
        assert outcome.partition_windows == 2, (mechanism, i)
        assert outcome.undetected_violations == 0, (mechanism, i)
        assert outcome.torn_reads_observed == 0, (mechanism, i)
        assert outcome.reads_consumed > 0, (mechanism, i)


@pytest.mark.slow
def test_soak_remote_read_keeps_tearing_under_faults():
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    torn = 0
    for i in range(rounds):
        outcome = fuzz_round(
            "remote_read", 1, seed=5000 + i,
            duration_ns=60_000.0, object_size=2048,
            gray_windows=1, partition_windows=1,
        )
        torn += outcome.torn_reads_observed
    assert torn > 0


@pytest.mark.slow
@pytest.mark.parametrize("mechanism", DETECTING)
def test_soak_crash_lane(mechanism):
    """Scheduled-lane soak: many crash-cycle rounds per mechanism."""
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    for i in range(rounds):
        outcome = fuzz_round(
            mechanism,
            4,
            seed=3000 + i,
            duration_ns=60_000.0,
            object_size=1024,
            crash_cycles=4,
        )
        assert outcome.crashes == 4, (mechanism, i)
        assert outcome.undetected_violations == 0, (mechanism, i)
        assert outcome.torn_reads_observed == 0, (mechanism, i)
        assert outcome.reads_consumed > 0, (mechanism, i)


@pytest.mark.slow
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
@pytest.mark.parametrize("mechanism", DETECTING)
def test_soak_detecting_protocols(mechanism, n_shards):
    """Scheduled-lane soak: many independent rounds per combination."""
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    for i in range(rounds):
        outcome = fuzz_round(
            mechanism,
            n_shards,
            seed=1000 + i,
            duration_ns=60_000.0,
            object_size=1024,
        )
        assert outcome.undetected_violations == 0, (mechanism, n_shards, i)
        assert outcome.torn_reads_observed == 0, (mechanism, n_shards, i)
        assert outcome.reads_consumed > 0


@pytest.mark.slow
def test_soak_remote_read_keeps_observing_tearing():
    rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
    torn = 0
    for i in range(rounds):
        outcome = fuzz_round(
            "remote_read", 1, seed=2000 + i,
            duration_ns=60_000.0, object_size=2048,
        )
        torn += outcome.torn_reads_observed
    assert torn > 0

"""Unit tests for the Active Transfers Table."""

import pytest

from repro.common.errors import SimulationError
from repro.core.att import ActiveTransfersTable


def make_att(entries=4, depth=8):
    return ActiveTransfersTable(entries, depth)


def test_register_and_lookup():
    att = make_att()
    entry = att.register((0, 0, 1), 0x1000, 4, 256, now=0.0)
    assert att.lookup((0, 0, 1)) is entry
    assert att.occupancy == 1
    assert entry.stream_buffer.busy


def test_duplicate_registration_rejected():
    att = make_att()
    att.register((0, 0, 1), 0x1000, 4, 256, now=0.0)
    with pytest.raises(SimulationError):
        att.register((0, 0, 1), 0x2000, 4, 256, now=0.0)


def test_capacity_enforced():
    att = make_att(entries=2)
    att.register((0, 0, 1), 0x1000, 2, 128, now=0.0)
    att.register((0, 0, 2), 0x2000, 2, 128, now=0.0)
    assert not att.has_free_entry()
    with pytest.raises(SimulationError):
        att.register((0, 0, 3), 0x3000, 2, 128, now=0.0)


def test_free_recycles_stream_buffer():
    att = make_att(entries=1)
    entry = att.register((0, 0, 1), 0x1000, 2, 128, now=0.0)
    att.free(entry)
    assert att.has_free_entry()
    entry2 = att.register((0, 0, 2), 0x2000, 2, 128, now=1.0)
    assert entry2.stream_buffer is entry.stream_buffer
    assert entry2.stream_buffer.base_block == 0x2000


def test_double_free_rejected():
    att = make_att()
    entry = att.register((0, 0, 1), 0x1000, 2, 128, now=0.0)
    att.free(entry)
    with pytest.raises(SimulationError):
        att.free(entry)


def test_peak_occupancy_tracked():
    att = make_att(entries=3)
    entries = [
        att.register((0, 0, i), 0x1000 * (i + 1), 2, 128, now=0.0)
        for i in range(3)
    ]
    for e in entries:
        att.free(e)
    assert att.peak_occupancy == 3
    assert att.occupancy == 0


def test_entry_reply_bookkeeping():
    att = make_att()
    entry = att.register((0, 0, 1), 0x1000, 3, 192, now=0.0)
    assert entry.mark_replied(0)
    assert not entry.mark_replied(0)  # duplicate guarded
    assert entry.mark_replied(1)
    assert entry.mark_replied(2)
    assert entry.all_replied


def test_entry_received_bits():
    att = make_att()
    entry = att.register((0, 0, 1), 0x1000, 3, 192, now=0.0)
    entry.mark_received(2)
    assert entry.is_received(2)
    assert not entry.is_received(0)


def test_block_addr():
    att = make_att()
    entry = att.register((0, 0, 1), 0x1000, 3, 192, now=0.0)
    assert entry.block_addr(0) == 0x1000
    assert entry.block_addr(2) == 0x1080


def test_zero_entries_rejected():
    with pytest.raises(SimulationError):
        ActiveTransfersTable(0, 8)

"""Unit + property tests for object layouts and version protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.objstore.layout import (
    DATA_PER_LINE,
    ChecksumLayout,
    PerCacheLineLayout,
    RawLayout,
    commit_version,
    fnv64,
    is_locked,
    lock_version,
    split_into_chunks,
    stamped_payload,
    torn_words,
)


class TestVersionProtocol:
    def test_even_versions_unlocked(self):
        assert not is_locked(0)
        assert not is_locked(42)
        assert is_locked(1)
        assert is_locked(43)

    def test_lock_commit_cycle(self):
        v = 0
        locked = lock_version(v)
        assert is_locked(locked)
        committed = commit_version(locked)
        assert committed == 2
        assert not is_locked(committed)

    def test_double_lock_rejected(self):
        with pytest.raises(ValueError):
            lock_version(1)

    def test_commit_unlocked_rejected(self):
        with pytest.raises(ValueError):
            commit_version(2)

    def test_version_wraps_at_64_bits(self):
        top = 2**64 - 2
        assert commit_version(lock_version(top)) == 0


class TestRawLayout:
    def test_wire_size(self):
        assert RawLayout().wire_size(0) == 8
        assert RawLayout().wire_size(120) == 128

    def test_pack_unpack_roundtrip(self):
        layout = RawLayout()
        raw = layout.pack(10, b"hello world")
        result = layout.unpack(raw, 11)
        assert result.ok
        assert result.version == 10
        assert result.data == b"hello world"

    def test_locked_version_flagged(self):
        layout = RawLayout()
        raw = layout.pack(11, b"x")
        assert not layout.unpack(raw, 1).ok

    @given(
        st.binary(max_size=2048),
        st.integers(min_value=0, max_value=2**63 - 1).map(lambda v: v * 2),
    )
    def test_roundtrip_property(self, data, version):
        layout = RawLayout()
        result = layout.unpack(layout.pack(version, data), len(data))
        assert result.ok and result.data == data and result.version == version


class TestPerCacheLineLayout:
    def test_wire_inflation(self):
        layout = PerCacheLineLayout()
        # 64/56 inflation: 8 KB of data needs 147 lines.
        assert layout.wire_size(8192) == 147 * 64
        assert layout.wire_size(1) == 64
        assert layout.wire_size(0) == 64

    def test_pack_unpack_roundtrip(self):
        layout = PerCacheLineLayout()
        data = bytes(range(200))
        result = layout.unpack(layout.pack(6, data), len(data))
        assert result.ok
        assert result.version == 6
        assert result.data == data

    def test_torn_stamp_detected(self):
        layout = PerCacheLineLayout()
        raw = bytearray(layout.pack(4, b"a" * 120))  # 3 lines
        # Corrupt the second line's stamp: simulates a line written by a
        # different (newer) committed version.
        raw[64:72] = (6 & layout.stamp_mask).to_bytes(8, "little")
        assert not layout.unpack(bytes(raw), 120).ok

    def test_locked_header_detected(self):
        layout = PerCacheLineLayout()
        raw = bytearray(layout.pack(4, b"a" * 60))
        raw[0:8] = (5).to_bytes(8, "little")
        assert not layout.unpack(bytes(raw), 60).ok

    def test_stamp_wraparound_false_negative(self):
        """FaRM's ABA hazard: with l version bits, versions 2**l apart
        produce identical stamps, so a torn read can pass the check.
        This motivates hardware SABRes."""
        layout = PerCacheLineLayout(version_bits=2)
        old = layout.pack(4, b"old!" * 30)  # stamps: 4 & 3 == 0
        new = layout.pack(8, b"new!" * 30)  # stamps: 8 & 3 == 0
        torn = bytearray(new[:64] + old[64:])
        result = layout.unpack(bytes(torn), 120)
        assert result.ok  # undetected violation (by design of the test)
        assert result.data != (b"new!" * 30)

    def test_wide_stamps_catch_the_same_race(self):
        layout = PerCacheLineLayout(version_bits=32)
        old = layout.pack(4, b"old!" * 30)
        new = layout.pack(8, b"new!" * 30)
        torn = bytearray(new[:64] + old[64:])
        assert not layout.unpack(bytes(torn), 120).ok

    def test_bad_version_bits_rejected(self):
        with pytest.raises(ValueError):
            PerCacheLineLayout(version_bits=0)
        with pytest.raises(ValueError):
            PerCacheLineLayout(version_bits=65)

    def test_oversized_chunk_rejected(self):
        with pytest.raises(ValueError):
            PerCacheLineLayout().make_line(1, 2, b"x" * 57)

    @given(
        st.binary(max_size=1024),
        st.integers(min_value=0, max_value=2**40).map(lambda v: v * 2),
    )
    def test_roundtrip_property(self, data, version):
        layout = PerCacheLineLayout()
        result = layout.unpack(layout.pack(version, data), len(data))
        assert result.ok and result.data == data

    @given(st.integers(min_value=0, max_value=8192))
    def test_wire_size_is_block_multiple(self, data_len):
        layout = PerCacheLineLayout()
        wire = layout.wire_size(data_len)
        assert wire % 64 == 0
        assert wire >= data_len  # stamps only add bytes
        lines = wire // 64
        assert (lines - 1) * DATA_PER_LINE < max(1, data_len) <= lines * DATA_PER_LINE


class TestChecksumLayout:
    def test_roundtrip(self):
        layout = ChecksumLayout()
        result = layout.unpack(layout.pack(2, b"payload"), 7)
        assert result.ok and result.data == b"payload"

    def test_corruption_detected(self):
        layout = ChecksumLayout()
        raw = bytearray(layout.pack(2, b"payload"))
        raw[-1] ^= 0xFF
        assert not layout.unpack(bytes(raw), 7).ok

    def test_fnv64_deterministic_and_sensitive(self):
        assert fnv64(b"abc") == fnv64(b"abc")
        assert fnv64(b"abc") != fnv64(b"abd")

    @given(st.binary(max_size=512))
    def test_checksum_roundtrip(self, data):
        layout = ChecksumLayout()
        assert layout.unpack(layout.pack(0, data), len(data)).ok


class TestGroundTruth:
    def test_stamped_payload_word_pattern(self):
        payload = stamped_payload(7, 24)
        torn, words = torn_words(payload)
        assert not torn
        assert words == {7}

    def test_mixed_words_are_torn(self):
        payload = stamped_payload(2, 16) + stamped_payload(4, 16)
        torn, words = torn_words(payload)
        assert torn
        assert words == {2, 4}

    def test_empty_payload_not_torn(self):
        assert torn_words(b"")[0] is False

    def test_partial_tail_consistent(self):
        payload = stamped_payload(3, 20)  # 2 words + 4-byte tail
        assert torn_words(payload)[0] is False

    def test_partial_tail_mismatch_detected(self):
        payload = bytearray(stamped_payload(3, 20))
        payload[-1] ^= 0x5A
        assert torn_words(bytes(payload))[0] is True

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.integers(min_value=0, max_value=300))
    def test_stamped_payload_never_torn(self, version, length):
        assert torn_words(stamped_payload(version, length))[0] is False

    def test_split_into_chunks(self):
        assert split_into_chunks(b"abcdef", 4) == [b"abcd", b"ef"]
        assert split_into_chunks(b"", 4) == [b""]
        with pytest.raises(ValueError):
            split_into_chunks(b"a", 0)

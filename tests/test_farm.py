"""Tests for the FaRM framework layer (Fig. 9 machinery)."""

import pytest

from repro.common.errors import ConfigError
from repro.objstore.farm import FarmConfig, FarmKV, run_farm


def small_cfg(**kw):
    defaults = dict(
        object_size=512,
        n_objects=64,
        readers=1,
        duration_ns=60_000.0,
        warmup_ns=8_000.0,
        seed=4,
    )
    defaults.update(kw)
    return FarmConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FarmConfig(object_size=8).validate()
        with pytest.raises(ConfigError):
            FarmConfig(readers=0).validate()
        with pytest.raises(ConfigError):
            FarmConfig(n_objects=0).validate()

    def test_payload_len(self):
        assert FarmConfig(object_size=128).payload_len == 120


class TestReadPath:
    def test_baseline_breaks_down_into_components(self):
        result = run_farm(small_cfg(use_sabre=False))
        means = result.breakdown.means()
        assert means["transfer"] > 0
        assert means["framework"] > 0
        assert means["stripping"] > 0
        assert means["application"] > 0
        assert result.ops_completed > 10
        assert result.undetected_violations == 0

    def test_sabre_build_has_no_stripping(self):
        result = run_farm(small_cfg(use_sabre=True))
        means = result.breakdown.means()
        assert means["stripping"] == 0.0
        assert result.undetected_violations == 0

    def test_sabre_build_is_faster(self):
        base = run_farm(small_cfg(use_sabre=False))
        sabre = run_farm(small_cfg(use_sabre=True))
        assert sabre.mean_latency_ns < base.mean_latency_ns

    def test_sabre_framework_component_smaller(self):
        """Zero-copy + smaller instruction footprint shrink the
        framework component (§7.3)."""
        base = run_farm(small_cfg(use_sabre=False))
        sabre = run_farm(small_cfg(use_sabre=True))
        assert (
            sabre.breakdown.mean("framework")
            < base.breakdown.mean("framework")
        )

    def test_sabre_application_component_larger(self):
        """§7.3: the SABRe build's application phase reads the object
        from the LLC (no strip pulled it into the L1d first)."""
        base = run_farm(small_cfg(use_sabre=False, object_size=4096))
        sabre = run_farm(small_cfg(use_sabre=True, object_size=4096))
        assert (
            sabre.breakdown.mean("application")
            > base.breakdown.mean("application")
        )

    def test_improvement_grows_with_object_size(self):
        gains = []
        for size in (128, 8192):
            base = run_farm(small_cfg(use_sabre=False, object_size=size))
            sabre = run_farm(small_cfg(use_sabre=True, object_size=size))
            gains.append(base.mean_latency_ns / sabre.mean_latency_ns)
        assert gains[1] > gains[0]

    def test_128b_improvement_near_paper(self):
        """§7.3 reports a 35 % latency improvement for 128 B objects."""
        base = run_farm(small_cfg(use_sabre=False, object_size=128, n_objects=2048))
        sabre = run_farm(small_cfg(use_sabre=True, object_size=128, n_objects=2048))
        improvement = base.mean_latency_ns / sabre.mean_latency_ns - 1.0
        assert 0.20 <= improvement <= 0.50


class TestWritePath:
    def test_put_updates_remote_object(self):
        kv = FarmKV(small_cfg(use_sabre=True))
        sim = kv.cluster.sim
        outcome = []

        def client():
            reply = yield kv.put("key-3", b"z" * kv.cfg.payload_len)
            outcome.append(reply)

        sim.process(client())
        sim.run()
        assert outcome == [b"\x01"]
        assert kv.store.read(3).data == b"z" * kv.cfg.payload_len
        assert kv.store.current_version(3) == 2

    def test_put_takes_rpc_time(self):
        kv = FarmKV(small_cfg(use_sabre=True))
        sim = kv.cluster.sim
        times = []

        def client():
            yield kv.put("key-0", b"a" * kv.cfg.payload_len)
            times.append(sim.now)

        sim.process(client())
        sim.run()
        # RPC dispatch + fabric round trip + update service time.
        assert times[0] > 250.0

    def test_keys_enumerates_store(self):
        kv = FarmKV(small_cfg(n_objects=5))
        assert sorted(kv.keys()) == [f"key-{i}" for i in range(5)]
